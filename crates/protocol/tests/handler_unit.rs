//! Per-handler unit tests of the PP-assembly protocol: each handler is
//! executed on the emulator against a crafted directory state and its
//! exact directory mutation and message output are checked. (The
//! differential suite checks native/emulated agreement; these tests pin
//! the *intended* behaviour itself.)

use flash_engine::{Addr, NodeId};
use flash_pp::emu::DEFAULT_PAIR_BUDGET;
use flash_pp::CodegenOptions;
use flash_protocol::dir::{dir_addr, DirHeader, Directory, PtrEntry, DEFAULT_PS_CAPACITY};
use flash_protocol::fields::aux;
use flash_protocol::handlers::{compile, effect_to_outgoing, MemEnv};
use flash_protocol::msg::{InMsg, MsgType};
use flash_protocol::native::Outgoing;
use flash_protocol::ProtoMem;

const ADDR: u64 = 0x6000;

struct Rig {
    program: flash_pp::Program,
    mem: ProtoMem,
}

impl Rig {
    fn new() -> Self {
        let mut mem = ProtoMem::new();
        Directory::init_free_list(&mut mem, DEFAULT_PS_CAPACITY);
        Rig {
            program: compile(CodegenOptions::magic()).expect("compiles"),
            mem,
        }
    }

    fn header(&self) -> DirHeader {
        DirHeader(self.mem.load64(dir_addr(Addr::new(ADDR))))
    }

    fn set_header(&mut self, h: DirHeader) {
        self.mem.store64(dir_addr(Addr::new(ADDR)), h.0);
    }

    fn add_sharers(&mut self, nodes: &[u16]) {
        let mut d = Directory::new(&mut self.mem);
        let da = dir_addr(Addr::new(ADDR));
        let mut h = d.header(da);
        for &n in nodes {
            let idx = d.alloc_entry().unwrap();
            d.set_entry(idx, PtrEntry::new(NodeId(n), h.head()));
            h = h.with_head(idx);
        }
        d.set_header(da, h);
    }

    fn sharers(&mut self) -> Vec<u16> {
        let d = Directory::new(&mut self.mem);
        d.sharers(dir_addr(Addr::new(ADDR)))
            .iter()
            .map(|n| n.0)
            .collect()
    }

    /// Runs `handler` for `msg`, returning its outgoing actions.
    fn run(&mut self, handler: &str, msg: &InMsg) -> Vec<Outgoing> {
        let entry = self
            .program
            .entry(handler)
            .unwrap_or_else(|| panic!("no {handler}"));
        let run = {
            let mut env = MemEnv::new(&mut self.mem, msg);
            flash_pp::emu::run(&self.program, entry, &mut env, DEFAULT_PAIR_BUDGET)
                .unwrap_or_else(|e| panic!("{handler}: {e}"))
        };
        run.effects
            .iter()
            .filter_map(|t| effect_to_outgoing(&t.kind, msg.self_node))
            .collect()
    }
}

fn msg(mtype: MsgType, me: u16, home: u16, src: u16, req: u16, orig: MsgType, spec: bool) -> InMsg {
    InMsg {
        mtype,
        src: NodeId(src),
        addr: Addr::new(ADDR),
        aux: aux::pack(NodeId(req), orig, NodeId(home)),
        spec,
        self_node: NodeId(me),
        home: NodeId(home),
        diraddr: dir_addr(Addr::new(ADDR)),
        with_data: mtype.carries_data(),
    }
}

fn net(out: &[Outgoing], mtype: MsgType) -> Vec<&flash_protocol::Msg> {
    out.iter()
        .filter_map(|o| match o {
            Outgoing::Net(m) if m.mtype == mtype => Some(m),
            _ => None,
        })
        .collect()
}

fn procs(out: &[Outgoing], mtype: MsgType) -> Vec<&flash_protocol::ProcMsg> {
    out.iter()
        .filter_map(|o| match o {
            Outgoing::Proc(m) if m.mtype == mtype => Some(m),
            _ => None,
        })
        .collect()
}

#[test]
fn ni_get_clean_records_sharer_and_replies() {
    let mut r = Rig::new();
    let out = r.run(
        "ni_get",
        &msg(MsgType::NGet, 0, 0, 3, 3, MsgType::NGet, true),
    );
    assert_eq!(net(&out, MsgType::NPut).len(), 1);
    assert_eq!(net(&out, MsgType::NPut)[0].dst, NodeId(3));
    assert!(net(&out, MsgType::NPut)[0].with_data);
    assert_eq!(r.sharers(), vec![3]);
    assert!(!r.header().dirty());
}

#[test]
fn ni_get_without_spec_reads_memory() {
    let mut r = Rig::new();
    let out = r.run(
        "ni_get",
        &msg(MsgType::NGet, 0, 0, 3, 3, MsgType::NGet, false),
    );
    assert!(out.iter().any(|o| matches!(o, Outgoing::MemRead(_))));
    let out2 = r.run(
        "ni_get",
        &msg(MsgType::NGet, 0, 0, 5, 5, MsgType::NGet, true),
    );
    assert!(!out2.iter().any(|o| matches!(o, Outgoing::MemRead(_))));
}

#[test]
fn ni_get_dirty_remote_sets_pending_and_forwards() {
    let mut r = Rig::new();
    r.set_header(DirHeader::default().with_dirty(true).with_owner(NodeId(7)));
    let out = r.run(
        "ni_get",
        &msg(MsgType::NGet, 0, 0, 3, 3, MsgType::NGet, true),
    );
    let fwd = net(&out, MsgType::NFwdGet);
    assert_eq!(fwd.len(), 1);
    assert_eq!(fwd[0].dst, NodeId(7));
    assert_eq!(aux::requester(fwd[0].aux), NodeId(3));
    assert_eq!(aux::home(fwd[0].aux), NodeId(0));
    assert!(r.header().pending());
    assert!(
        out.iter()
            .all(|o| !matches!(o, Outgoing::MemRead(_) | Outgoing::MemWrite(_))),
        "no reply data while forwarded"
    );
}

#[test]
fn ni_get_dirty_local_intervenes() {
    let mut r = Rig::new();
    r.set_header(
        DirHeader::default()
            .with_dirty(true)
            .with_owner(NodeId(0))
            .with_local(true),
    );
    let out = r.run(
        "ni_get",
        &msg(MsgType::NGet, 0, 0, 3, 3, MsgType::NGet, true),
    );
    assert_eq!(procs(&out, MsgType::PIntervGet).len(), 1);
    assert!(r.header().pending());
}

#[test]
fn ni_get_owner_rerequest_self_repairs() {
    let mut r = Rig::new();
    r.set_header(DirHeader::default().with_dirty(true).with_owner(NodeId(3)));
    let out = r.run(
        "ni_get",
        &msg(MsgType::NGet, 0, 0, 3, 3, MsgType::NGet, true),
    );
    // Served from memory, not forwarded to itself.
    assert_eq!(net(&out, MsgType::NPut).len(), 1);
    assert!(net(&out, MsgType::NFwdGet).is_empty());
    assert!(!r.header().dirty());
    assert_eq!(r.sharers(), vec![3]);
}

#[test]
fn ni_get_pending_nacks() {
    let mut r = Rig::new();
    r.set_header(DirHeader::default().with_pending(true));
    let out = r.run(
        "ni_get",
        &msg(MsgType::NGet, 0, 0, 3, 3, MsgType::NGet, true),
    );
    assert_eq!(net(&out, MsgType::NNack).len(), 1);
    assert_eq!(net(&out, MsgType::NNack)[0].dst, NodeId(3));
}

#[test]
fn ni_getx_invalidates_all_other_sharers() {
    let mut r = Rig::new();
    r.add_sharers(&[1, 2, 4]);
    let out = r.run(
        "ni_getx",
        &msg(MsgType::NGetX, 0, 0, 2, 2, MsgType::NGetX, true),
    );
    let invals: Vec<NodeId> = net(&out, MsgType::NInval).iter().map(|m| m.dst).collect();
    assert_eq!(invals.len(), 2);
    assert!(invals.contains(&NodeId(1)) && invals.contains(&NodeId(4)));
    let h = r.header();
    assert!(h.dirty() && h.pending());
    assert_eq!(h.owner(), NodeId(2));
    assert_eq!(h.acks(), 2);
    assert!(r.sharers().is_empty());
    // All entries returned to the free list.
    let d = Directory::new(&mut r.mem);
    assert_eq!(d.free_entries(), DEFAULT_PS_CAPACITY as usize);
}

#[test]
fn ni_getx_with_local_copy_invalidates_processor() {
    let mut r = Rig::new();
    r.set_header(DirHeader::default().with_local(true));
    let out = r.run(
        "ni_getx",
        &msg(MsgType::NGetX, 0, 0, 2, 2, MsgType::NGetX, true),
    );
    assert_eq!(procs(&out, MsgType::PInval).len(), 1);
    assert!(!r.header().local());
}

#[test]
fn ni_upgrade_with_listed_requester_acks_without_data() {
    let mut r = Rig::new();
    r.add_sharers(&[2, 5]);
    let out = r.run(
        "ni_upgrade",
        &msg(MsgType::NUpgrade, 0, 0, 5, 5, MsgType::NUpgrade, false),
    );
    assert_eq!(net(&out, MsgType::NUpgAck).len(), 1);
    assert!(net(&out, MsgType::NPutX).is_empty());
    assert_eq!(net(&out, MsgType::NInval).len(), 1);
    assert_eq!(net(&out, MsgType::NInval)[0].dst, NodeId(2));
    assert_eq!(r.header().owner(), NodeId(5));
}

#[test]
fn ni_upgrade_with_lost_copy_sends_data() {
    let mut r = Rig::new();
    let out = r.run(
        "ni_upgrade",
        &msg(MsgType::NUpgrade, 0, 0, 5, 5, MsgType::NUpgrade, false),
    );
    assert_eq!(net(&out, MsgType::NPutX).len(), 1);
    assert!(out.iter().any(|o| matches!(o, Outgoing::MemRead(_))));
}

#[test]
fn ni_inval_ack_drains_pending() {
    let mut r = Rig::new();
    r.set_header(DirHeader::default().with_pending(true).with_acks(2));
    r.run(
        "ni_inval_ack",
        &msg(MsgType::NInvalAck, 0, 0, 1, 1, MsgType::NGetX, false),
    );
    assert!(r.header().pending());
    assert_eq!(r.header().acks(), 1);
    r.run(
        "ni_inval_ack",
        &msg(MsgType::NInvalAck, 0, 0, 2, 2, MsgType::NGetX, false),
    );
    assert!(!r.header().pending());
    assert_eq!(r.header().acks(), 0);
}

#[test]
fn ni_inval_ack_ignores_strays() {
    let mut r = Rig::new();
    r.set_header(DirHeader::default().with_acks(0));
    r.run(
        "ni_inval_ack",
        &msg(MsgType::NInvalAck, 0, 0, 1, 1, MsgType::NGetX, false),
    );
    assert_eq!(r.header().acks(), 0, "stray ack must not underflow");
}

#[test]
fn ni_wb_accepts_only_current_owner() {
    let mut r = Rig::new();
    r.set_header(
        DirHeader::default()
            .with_dirty(true)
            .with_owner(NodeId(4))
            .with_pending(true),
    );
    // Stale writeback from node 2: dropped, no memory write.
    let out = r.run(
        "ni_wb",
        &msg(MsgType::NWriteback, 0, 0, 2, 2, MsgType::NGetX, false),
    );
    assert!(out.is_empty());
    assert!(r.header().dirty());
    // Real writeback from the owner clears dirty and pending.
    let out = r.run(
        "ni_wb",
        &msg(MsgType::NWriteback, 0, 0, 4, 4, MsgType::NGetX, false),
    );
    assert!(out.iter().any(|o| matches!(o, Outgoing::MemWrite(_))));
    assert!(!r.header().dirty());
    assert!(!r.header().pending());
}

#[test]
fn ni_swb_live_transaction_records_both_sharers() {
    let mut r = Rig::new();
    r.set_header(
        DirHeader::default()
            .with_dirty(true)
            .with_owner(NodeId(7))
            .with_pending(true),
    );
    let out = r.run(
        "ni_swb",
        &msg(MsgType::NSwb, 0, 0, 7, 3, MsgType::NGet, false),
    );
    assert!(out.iter().any(|o| matches!(o, Outgoing::MemWrite(_))));
    let h = r.header();
    assert!(!h.dirty() && !h.pending());
    let s = r.sharers();
    assert!(s.contains(&3) && s.contains(&7));
}

#[test]
fn ni_swb_stale_invalidates_rogue_copies() {
    let mut r = Rig::new();
    // Not pending: the transaction was abandoned.
    r.set_header(DirHeader::default());
    let out = r.run(
        "ni_swb",
        &msg(MsgType::NSwb, 0, 0, 7, 3, MsgType::NGet, false),
    );
    assert!(
        !out.iter().any(|o| matches!(o, Outgoing::MemWrite(_))),
        "stale data not written"
    );
    let invals: Vec<NodeId> = net(&out, MsgType::NInval).iter().map(|m| m.dst).collect();
    assert!(invals.contains(&NodeId(3)) && invals.contains(&NodeId(7)));
    assert!(r.sharers().is_empty());
}

#[test]
fn ni_ownx_live_transfers_ownership() {
    let mut r = Rig::new();
    r.set_header(
        DirHeader::default()
            .with_dirty(true)
            .with_owner(NodeId(7))
            .with_pending(true),
    );
    r.run(
        "ni_ownx",
        &msg(MsgType::NOwnx, 0, 0, 7, 3, MsgType::NGetX, false),
    );
    let h = r.header();
    assert!(h.dirty() && !h.pending());
    assert_eq!(h.owner(), NodeId(3));
}

#[test]
fn ni_ownx_stale_invalidates_rogue_exclusive() {
    let mut r = Rig::new();
    r.set_header(
        DirHeader::default()
            .with_dirty(true)
            .with_owner(NodeId(5))
            .with_pending(true),
    );
    // Transfer claims to come from node 7, but the live owner is node 5.
    let out = r.run(
        "ni_ownx",
        &msg(MsgType::NOwnx, 0, 0, 7, 3, MsgType::NGetX, false),
    );
    assert_eq!(net(&out, MsgType::NInval).len(), 1);
    assert_eq!(net(&out, MsgType::NInval)[0].dst, NodeId(3));
    assert_eq!(r.header().owner(), NodeId(5), "live ownership untouched");
}

#[test]
fn ni_interv_miss_abandons_matching_transaction() {
    let mut r = Rig::new();
    r.set_header(
        DirHeader::default()
            .with_dirty(true)
            .with_owner(NodeId(7))
            .with_pending(true),
    );
    r.run(
        "ni_interv_miss",
        &msg(MsgType::NIntervMiss, 0, 0, 7, 3, MsgType::NGetX, false),
    );
    let h = r.header();
    assert!(!h.pending() && !h.dirty());
    // A notice from the wrong node changes nothing.
    r.set_header(
        DirHeader::default()
            .with_dirty(true)
            .with_owner(NodeId(7))
            .with_pending(true),
    );
    r.run(
        "ni_interv_miss",
        &msg(MsgType::NIntervMiss, 0, 0, 2, 3, MsgType::NGetX, false),
    );
    assert!(r.header().pending());
}

#[test]
fn ni_hint_unlinks_middle_of_list() {
    let mut r = Rig::new();
    r.add_sharers(&[1, 2, 3]); // head: 3 -> 2 -> 1
    r.run(
        "ni_hint",
        &msg(MsgType::NRplHint, 0, 0, 2, 2, MsgType::NRplHint, false),
    );
    assert_eq!(r.sharers(), vec![3, 1]);
    let d = Directory::new(&mut r.mem);
    assert_eq!(d.free_entries(), DEFAULT_PS_CAPACITY as usize - 2);
}

#[test]
fn ni_hint_for_absent_node_is_a_no_op() {
    let mut r = Rig::new();
    r.add_sharers(&[1, 3]);
    r.run(
        "ni_hint",
        &msg(MsgType::NRplHint, 0, 0, 9, 9, MsgType::NRplHint, false),
    );
    assert_eq!(r.sharers(), vec![3, 1]);
}

#[test]
fn pi_wb_local_clears_everything() {
    let mut r = Rig::new();
    r.set_header(
        DirHeader::default()
            .with_dirty(true)
            .with_owner(NodeId(0))
            .with_local(true)
            .with_pending(true),
    );
    let out = r.run(
        "pi_wb_local",
        &msg(MsgType::PiWriteback, 0, 0, 0, 0, MsgType::NGetX, false),
    );
    assert!(out.iter().any(|o| matches!(o, Outgoing::MemWrite(_))));
    let h = r.header();
    assert!(!h.dirty() && !h.local() && !h.pending());
}

#[test]
fn pi_interv_reply_read_at_home_shares() {
    let mut r = Rig::new();
    r.set_header(
        DirHeader::default()
            .with_dirty(true)
            .with_owner(NodeId(0))
            .with_local(true)
            .with_pending(true),
    );
    let out = r.run(
        "pi_interv_reply",
        &msg(MsgType::PiIntervReply, 0, 0, 0, 4, MsgType::NGet, false),
    );
    assert!(
        out.iter().any(|o| matches!(o, Outgoing::MemWrite(_))),
        "sharing writeback to memory"
    );
    assert_eq!(net(&out, MsgType::NPut).len(), 1);
    let h = r.header();
    assert!(!h.dirty() && !h.pending() && h.local());
    assert_eq!(r.sharers(), vec![4]);
}

#[test]
fn pi_interv_reply_stale_local_read_nacks() {
    // A local writeback raced the deferred local intervention and already
    // resolved the transaction (pi_wb_local cleared PENDING); the
    // processor then re-fetched the line shared, so the header is
    // LOCAL-only when the late reply lands. The reply must not rewrite
    // the header or grant — it NACKs the requester, which retries
    // against the current directory state.
    let mut r = Rig::new();
    let stale = DirHeader::default().with_local(true);
    r.set_header(stale);
    let out = r.run(
        "pi_interv_reply",
        &msg(MsgType::PiIntervReply, 0, 0, 0, 4, MsgType::NGet, false),
    );
    let nacks = net(&out, MsgType::NNack);
    assert_eq!(nacks.len(), 1, "{out:?}");
    assert_eq!(nacks[0].dst, NodeId(4));
    assert!(net(&out, MsgType::NPut).is_empty());
    assert!(!out.iter().any(|o| matches!(o, Outgoing::MemWrite(_))));
    assert_eq!(r.header(), stale, "header untouched");
    assert_eq!(r.sharers(), Vec::<u16>::new());
}

#[test]
fn pi_interv_reply_stale_local_write_nacks() {
    // Worse variant: by the time the stale local reply lands, another
    // node has legitimately taken exclusive ownership. The unguarded
    // handler would clobber that owner and hand out a second exclusive
    // copy.
    let mut r = Rig::new();
    let stale = DirHeader::default().with_dirty(true).with_owner(NodeId(2));
    r.set_header(stale);
    let out = r.run(
        "pi_interv_reply",
        &msg(MsgType::PiIntervReply, 0, 0, 0, 4, MsgType::NGetX, false),
    );
    let nacks = net(&out, MsgType::NNack);
    assert_eq!(nacks.len(), 1, "{out:?}");
    assert_eq!(nacks[0].dst, NodeId(4));
    assert!(net(&out, MsgType::NPutX).is_empty());
    assert_eq!(r.header(), stale, "owner n2 preserved");
}

#[test]
fn pi_interv_reply_write_at_home_transfers_ownership() {
    // The legitimate pending local-dirty transfer still grants.
    let mut r = Rig::new();
    r.set_header(
        DirHeader::default()
            .with_dirty(true)
            .with_local(true)
            .with_pending(true),
    );
    let out = r.run(
        "pi_interv_reply",
        &msg(MsgType::PiIntervReply, 0, 0, 0, 4, MsgType::NGetX, false),
    );
    assert_eq!(net(&out, MsgType::NPutX).len(), 1);
    assert_eq!(net(&out, MsgType::NPutX)[0].dst, NodeId(4));
    let h = r.header();
    assert!(h.dirty() && !h.pending() && !h.local());
    assert_eq!(h.owner(), NodeId(4));
}

#[test]
fn pi_interv_reply_completes_despite_racing_hint() {
    // A replacement hint from the home's own cache raced the deferred
    // local intervention and cleared LOCAL, but PENDING still marks the
    // live transaction and this reply is its only possible resolution
    // (the home NAKs new requests while pending). The guard must accept
    // it — NACKing here livelocks the requester against a
    // forever-pending line (observed as an unbounded NGet/NNack ping-pong
    // in the checked stress sweep).
    let mut r = Rig::new();
    r.set_header(DirHeader::default().with_dirty(true).with_pending(true));
    let out = r.run(
        "pi_interv_reply",
        &msg(MsgType::PiIntervReply, 0, 0, 0, 4, MsgType::NGet, false),
    );
    assert!(net(&out, MsgType::NNack).is_empty(), "{out:?}");
    let puts = net(&out, MsgType::NPut);
    assert_eq!(puts.len(), 1);
    assert_eq!(puts[0].dst, NodeId(4));
    assert!(out.iter().any(|o| matches!(o, Outgoing::MemWrite(_))));
    let h = r.header();
    assert!(!h.dirty() && !h.pending(), "transaction resolved");
    assert_eq!(r.sharers(), vec![4]);
}

#[test]
fn pi_interv_reply_write_at_third_node_forwards_ownership() {
    let mut r = Rig::new();
    let out = r.run(
        "pi_interv_reply",
        &msg(MsgType::PiIntervReply, 7, 2, 7, 4, MsgType::NGetX, false),
    );
    assert_eq!(net(&out, MsgType::NPutX).len(), 1);
    assert_eq!(net(&out, MsgType::NPutX)[0].dst, NodeId(4));
    let ownx = net(&out, MsgType::NOwnx);
    assert_eq!(ownx.len(), 1);
    assert_eq!(ownx[0].dst, NodeId(2));
}

#[test]
fn io_dma_write_invalidates_and_writes_memory() {
    let mut r = Rig::new();
    r.add_sharers(&[1, 2]);
    let mut h = r.header();
    h = h.with_local(true);
    r.set_header(h);
    let out = r.run(
        "io_dma_write",
        &msg(MsgType::IoDmaWrite, 0, 0, 0, 0, MsgType::NGetX, false),
    );
    assert_eq!(net(&out, MsgType::NInval).len(), 2);
    assert_eq!(procs(&out, MsgType::PInval).len(), 1);
    assert!(out.iter().any(|o| matches!(o, Outgoing::MemWrite(_))));
    let h = r.header();
    assert!(!h.local() && h.pending());
    assert_eq!(h.acks(), 2);
}

#[test]
fn remote_request_forwarding_carries_context() {
    let mut r = Rig::new();
    for (handler, mt, nt) in [
        ("pi_get_remote", MsgType::PiGet, MsgType::NGet),
        ("pi_getx_remote", MsgType::PiGetX, MsgType::NGetX),
        ("pi_upgrade_remote", MsgType::PiUpgrade, MsgType::NUpgrade),
        ("pi_hint_remote", MsgType::PiRplHint, MsgType::NRplHint),
    ] {
        let out = r.run(handler, &msg(mt, 2, 6, 2, 2, nt, false));
        let sent = net(&out, nt);
        assert_eq!(sent.len(), 1, "{handler}");
        assert_eq!(sent[0].dst, NodeId(6), "{handler}");
        assert_eq!(aux::requester(sent[0].aux), NodeId(2), "{handler}");
        assert_eq!(aux::orig_type(sent[0].aux), nt, "{handler}");
        assert_eq!(aux::home(sent[0].aux), NodeId(6), "{handler}");
    }
}

#[test]
fn replies_forward_to_the_processor() {
    let mut r = Rig::new();
    for (handler, mt, pt, data) in [
        ("ni_put", MsgType::NPut, MsgType::PPut, true),
        ("ni_putx", MsgType::NPutX, MsgType::PPutX, true),
        ("ni_upgack", MsgType::NUpgAck, MsgType::PUpgAck, false),
    ] {
        let out = r.run(handler, &msg(mt, 2, 6, 6, 2, MsgType::NGetX, false));
        let p = procs(&out, pt);
        assert_eq!(p.len(), 1, "{handler}");
        assert_eq!(p[0].with_data, data, "{handler}");
    }
}

#[test]
fn nack_retries_the_original_request_type() {
    let mut r = Rig::new();
    for orig in [MsgType::NGet, MsgType::NGetX, MsgType::NUpgrade] {
        let out = r.run("ni_nack", &msg(MsgType::NNack, 2, 6, 6, 2, orig, false));
        let sent = net(&out, orig);
        assert_eq!(sent.len(), 1, "{orig:?}");
        assert_eq!(sent[0].dst, NodeId(6));
    }
}

#[test]
fn pointer_exhaustion_grants_exclusive_with_reclamation() {
    let mut mem = ProtoMem::new();
    Directory::init_free_list(&mut mem, 2);
    let mut r = Rig {
        program: compile(CodegenOptions::magic()).unwrap(),
        mem,
    };
    r.add_sharers(&[1, 2]); // consumes both entries
    let out = r.run(
        "ni_get",
        &msg(MsgType::NGet, 0, 0, 5, 5, MsgType::NGet, true),
    );
    // The line's own list is reclaimed: sharers invalidated, requester
    // granted exclusive.
    assert_eq!(net(&out, MsgType::NInval).len(), 2);
    assert_eq!(net(&out, MsgType::NPutX).len(), 1);
    let h = r.header();
    assert!(h.dirty());
    assert_eq!(h.owner(), NodeId(5));
    let d = Directory::new(&mut r.mem);
    assert_eq!(d.free_entries(), 2, "reclaimed entries returned");
}
