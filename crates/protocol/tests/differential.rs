//! Differential testing: the PP-assembly protocol against the native
//! oracle.
//!
//! For every incoming message type and a randomized directory state, both
//! implementations must produce (a) the same final directory header, (b)
//! the same sharer list, (c) the same number of free pointer-store
//! entries, and (d) the same multiset of outgoing messages / memory
//! operations. This is the property that lets the ideal machine (native)
//! and the detailed FLASH machine (emulated) be compared fairly: they run
//! the *same protocol*.

use flash_engine::{Addr, NodeId};
use flash_pp::emu::DEFAULT_PAIR_BUDGET;
use flash_pp::CodegenOptions;
use flash_protocol::dir::{dir_addr, DirHeader, Directory, PtrEntry};
use flash_protocol::fields::aux;
use flash_protocol::handlers::{self, MemEnv};
use flash_protocol::msg::{InMsg, MsgType};
use flash_protocol::native::{self, Outgoing};
use flash_protocol::{CostTable, ProtoMem};
use proptest::prelude::*;

/// Builds a protocol memory with a directory state derived from the seeds.
fn build_state(addr: Addr, capacity: u16, hdr_seed: u8, sharers: &[u16]) -> ProtoMem {
    let mut mem = ProtoMem::new();
    Directory::init_free_list(&mut mem, capacity);
    let mut d = Directory::new(&mut mem);
    let mut h = DirHeader::default();
    if hdr_seed & 1 != 0 {
        h = h
            .with_dirty(true)
            .with_owner(NodeId((hdr_seed >> 4) as u16 % 8));
    }
    if hdr_seed & 2 != 0 {
        h = h.with_pending(true).with_acks((hdr_seed >> 5) as u16 % 4);
    }
    if hdr_seed & 4 != 0 {
        h = h.with_local(true);
    }
    if hdr_seed & 1 == 0 {
        for &s in sharers {
            if let Some(idx) = d.alloc_entry() {
                d.set_entry(idx, PtrEntry::new(NodeId(s), h.head()));
                h = h.with_head(idx);
            }
        }
    }
    d.set_header(dir_addr(addr), h);
    mem
}

/// Normalized encoding of an outgoing action for multiset comparison.
fn encode(o: &Outgoing) -> String {
    match o {
        Outgoing::Net(m) => format!(
            "net:{:?}:{}:{}:{:#x}:{:#x}:{}",
            m.mtype,
            m.src,
            m.dst,
            m.addr.raw(),
            m.aux,
            m.with_data
        ),
        Outgoing::Proc(p) => format!(
            "proc:{:?}:{:#x}:{:#x}:{}",
            p.mtype,
            p.addr.raw(),
            p.aux,
            p.with_data
        ),
        Outgoing::MemRead(a) => format!("memrd:{:#x}", a.raw()),
        Outgoing::MemWrite(a) => format!("memwr:{:#x}", a.raw()),
    }
}

/// Directory observation: header word, sharer list, free-entry count.
type Snapshot = (u64, Vec<NodeId>, usize);
/// Native vs emulated run: (native out, emulated out, native snap, emulated snap).
type BothResult = (Vec<String>, Vec<String>, Snapshot, Snapshot);

fn snapshot(mem: &mut ProtoMem, addr: Addr) -> Snapshot {
    let d = Directory::new(mem);
    let da = dir_addr(addr);
    (d.header(da).0, d.sharers(da), d.free_entries())
}

fn run_both(msg: &InMsg, mem: &ProtoMem) -> BothResult {
    run_with(msg, mem, CodegenOptions::magic())
}

fn run_both_deopt(msg: &InMsg, mem: &ProtoMem) -> BothResult {
    run_with(msg, mem, CodegenOptions::deoptimized())
}

fn compiled(opts: CodegenOptions) -> &'static flash_pp::Program {
    use std::sync::OnceLock;
    static MAGIC: OnceLock<flash_pp::Program> = OnceLock::new();
    static DEOPT: OnceLock<flash_pp::Program> = OnceLock::new();
    let cell = if opts == CodegenOptions::magic() {
        &MAGIC
    } else {
        &DEOPT
    };
    cell.get_or_init(|| handlers::compile(opts).expect("protocol compiles"))
}

fn run_with(msg: &InMsg, mem: &ProtoMem, opts: CodegenOptions) -> BothResult {
    let program = compiled(opts);
    let table = flash_protocol::JumpTable::dpa_protocol();
    let entry_name = table.lookup(msg.mtype, msg.home == msg.self_node).handler;
    // Native.
    let mut mem_n = mem.clone();
    let mut out_n = Vec::new();
    let costs = CostTable::paper();
    let res = native::handle(msg, &mut mem_n, &costs, &mut out_n);
    assert_eq!(
        res.handler, entry_name,
        "jump table and native dispatch must agree"
    );
    // Emulated.
    let mut mem_e = mem.clone();
    let run = {
        let mut env = MemEnv::new(&mut mem_e, msg);
        flash_pp::emu::run(
            program,
            program
                .entry(entry_name)
                .unwrap_or_else(|| panic!("no handler {entry_name}")),
            &mut env,
            DEFAULT_PAIR_BUDGET,
        )
        .unwrap_or_else(|e| panic!("{entry_name} failed: {e}"))
    };
    let out_e: Vec<Outgoing> = run
        .effects
        .iter()
        .filter_map(|te| handlers::effect_to_outgoing(&te.kind, msg.self_node))
        .collect();
    let mut enc_n: Vec<String> = out_n.iter().map(encode).collect();
    let mut enc_e: Vec<String> = out_e.iter().map(encode).collect();
    enc_n.sort();
    enc_e.sort();
    (
        enc_n,
        enc_e,
        snapshot(&mut mem_n, msg.addr),
        snapshot(&mut mem_e, msg.addr),
    )
}

fn check_equiv(msg: &InMsg, mem: &ProtoMem) {
    let (n, e, sn, se) = run_both(msg, mem);
    assert_eq!(n, e, "outgoing actions diverge for {:?}", msg.mtype);
    assert_eq!(sn.0, se.0, "directory header diverges for {:?}", msg.mtype);
    assert_eq!(sn.1, se.1, "sharer list diverges for {:?}", msg.mtype);
    assert_eq!(sn.2, se.2, "free-entry count diverges for {:?}", msg.mtype);
    // The DLX-substituted single-issue handlers must implement the same
    // protocol (paper §5.3 runs them for real).
    let (n, e, sn, se) = run_both_deopt(msg, mem);
    assert_eq!(n, e, "deopt: outgoing actions diverge for {:?}", msg.mtype);
    assert_eq!(sn.0, se.0, "deopt: header diverges for {:?}", msg.mtype);
    assert_eq!(
        sn.1, se.1,
        "deopt: sharer list diverges for {:?}",
        msg.mtype
    );
    assert_eq!(sn.2, se.2, "deopt: free count diverges for {:?}", msg.mtype);
}

fn mk_msg(mtype: MsgType, me: u16, home: u16, src: u16, req: u16, spec: bool, addr: u64) -> InMsg {
    let orig = match mtype {
        MsgType::NGet | MsgType::NFwdGet => MsgType::NGet,
        MsgType::NUpgrade => MsgType::NUpgrade,
        MsgType::NNack => MsgType::NGetX,
        _ => MsgType::NGetX,
    };
    InMsg {
        mtype,
        src: NodeId(src),
        addr: Addr::new(addr),
        aux: aux::pack(NodeId(req), orig, NodeId(home)),
        spec,
        self_node: NodeId(me),
        home: NodeId(home),
        diraddr: dir_addr(Addr::new(addr)),
        with_data: mtype.carries_data(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn emulated_matches_native_for_all_message_types(
        type_idx in 0usize..MsgType::INCOMING.len(),
        hdr_seed in 0u8..=255,
        sharers in proptest::collection::vec(0u16..8, 0..5),
        me in 0u16..8,
        home in 0u16..8,
        src in 0u16..8,
        req in 0u16..8,
        spec in any::<bool>(),
        capacity in prop_oneof![Just(3u16), Just(64u16)],
    ) {
        let mtype = MsgType::INCOMING[type_idx];
        let addr = 0x4000u64;
        // Interventions at a non-home node only make sense when the aux
        // home differs; keep the generated case but fix up degenerate
        // combinations that the machine model can never produce:
        // a PI message always has src == me, and NI requests carry
        // requester info in aux.
        let src = if mtype.is_processor() { me } else { src };
        // Speculation only ever happens at the home node for request types.
        let spec = spec
            && matches!(mtype, MsgType::PiGet | MsgType::PiGetX | MsgType::NGet | MsgType::NGetX)
            && home == me;
        let msg = mk_msg(mtype, me, home, src, req, spec, addr);
        let mem = build_state(Addr::new(addr), capacity, hdr_seed, &sharers);
        check_equiv(&msg, &mem);
    }
}

#[test]
fn exhaustive_read_write_paths() {
    // Deterministic sweep of the main request handlers over all header
    // shapes with a small sharer set.
    let addr = 0x8000u64;
    for mtype in [
        MsgType::PiGet,
        MsgType::PiGetX,
        MsgType::PiUpgrade,
        MsgType::NGet,
        MsgType::NGetX,
        MsgType::NUpgrade,
    ] {
        for hdr_seed in 0u8..32 {
            for spec in [false, true] {
                let local = !matches!(mtype, MsgType::NGet | MsgType::NGetX | MsgType::NUpgrade);
                // Requester node 2; the home is node 2 as well so both the
                // PI (local) and NI (network) handler families are reachable
                // at one directory state.
                let (me, home) = (2, 2);
                let spec = spec
                    && matches!(
                        mtype,
                        MsgType::PiGet | MsgType::PiGetX | MsgType::NGet | MsgType::NGetX
                    );
                let msg = mk_msg(mtype, me, home, if local { me } else { 5 }, 5, spec, addr);
                let mem = build_state(Addr::new(addr), 16, hdr_seed, &[1, 3, 5]);
                check_equiv(&msg, &mem);
            }
        }
    }
}

#[test]
fn exhaustion_paths_match() {
    let addr = 0x8000u64;
    // Capacity 0: every alloc fails.
    for mtype in [MsgType::NGet, MsgType::NSwb] {
        let msg = mk_msg(mtype, 2, 2, 7, 5, false, addr);
        let mem = build_state(Addr::new(addr), 0, 0, &[]);
        check_equiv(&msg, &mem);
    }
}

#[test]
fn intervention_paths_match() {
    let addr = 0x8000u64;
    for orig in [MsgType::NGet, MsgType::NGetX] {
        for (me, home) in [(2u16, 2u16), (2, 6)] {
            for mtype in [MsgType::PiIntervReply, MsgType::PiIntervMiss] {
                let mut msg = mk_msg(mtype, me, home, me, 5, false, addr);
                msg.aux = aux::pack(NodeId(5), orig, NodeId(home));
                // Header state: dirty at self with pending (the state the
                // home set when it issued the intervention).
                let mem = build_state(Addr::new(addr), 16, 0b11, &[]);
                check_equiv(&msg, &mem);
            }
        }
    }
}

#[test]
fn sequence_of_messages_stays_equivalent() {
    // Drive both implementations through a realistic transaction sequence
    // on the same line and require equivalence after every step.
    let addr = Addr::new(0x4000);
    let home = 2u16;
    let mut mem = build_state(addr, 64, 0, &[]);
    let steps = [
        mk_msg(MsgType::NGet, home, home, 1, 1, true, addr.raw()),
        mk_msg(MsgType::NGet, home, home, 3, 3, true, addr.raw()),
        mk_msg(MsgType::NGetX, home, home, 4, 4, true, addr.raw()),
        mk_msg(MsgType::NInvalAck, home, home, 1, 1, false, addr.raw()),
        mk_msg(MsgType::NInvalAck, home, home, 3, 3, false, addr.raw()),
        mk_msg(MsgType::NGet, home, home, 5, 5, true, addr.raw()),
        mk_msg(MsgType::NSwb, home, home, 4, 5, false, addr.raw()),
        mk_msg(MsgType::NRplHint, home, home, 5, 5, false, addr.raw()),
        mk_msg(MsgType::NWriteback, home, home, 4, 4, false, addr.raw()),
    ];
    let costs = CostTable::paper();
    for msg in &steps {
        check_equiv(msg, &mem);
        // Advance the canonical state with the native implementation.
        let mut out = Vec::new();
        native::handle(msg, &mut mem, &costs, &mut out);
    }
}
