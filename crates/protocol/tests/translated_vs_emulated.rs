//! Per-handler differential suite: for **every** assembled protocol
//! handler, under randomized environments — random message header fields,
//! random protocol-memory contents (structured and corrupted), and random
//! MDC hit/miss responses — the translated backend must reproduce the
//! emulator's result exactly: identical cycles, `RunStats`, effect
//! timeline (offsets included), environment call sequence, and final
//! protocol memory. This is obligation (a) of the translation
//! architecture (see DESIGN.md); the machine-level sweeps in
//! `tests/checked_stress.rs` are obligation (b).

use flash_engine::{Addr, NodeId};
use flash_pp::emu::{self, EffectSink, Env, MdcMiss, Regs};
use flash_pp::isa::MemSize;
use flash_pp::translate::translate_shared;
use flash_pp::CodegenOptions;
use flash_protocol::dir::{dir_addr, Directory, PtrEntry, DEFAULT_PS_CAPACITY};
use flash_protocol::fields::aux;
use flash_protocol::handlers::{compile_shared, fields_of, HANDLER_NAMES};
use flash_protocol::msg::{InMsg, MsgType};
use flash_protocol::ProtoMem;
use proptest::prelude::*;
use std::sync::Arc;

const ADDR: u64 = 0x6000;

/// A deterministic, seedable environment over a private [`ProtoMem`]:
/// message fields come from the incoming message, MDC misses are injected
/// pseudo-randomly from the seed, and every call is logged. Two instances
/// built from the same seed and memory respond identically, so each
/// backend gets its own copy and the call logs are compared afterwards.
struct ChaosEnv {
    mem: ProtoMem,
    fields: [u64; 16],
    rng: u64,
    /// Probability (out of 256) that an access reports an MDC miss.
    miss_num: u64,
    log: Vec<String>,
}

impl ChaosEnv {
    fn new(mem: ProtoMem, fields: [u64; 16], seed: u64, miss_num: u64) -> Self {
        ChaosEnv {
            mem,
            fields,
            rng: seed | 1,
            miss_num,
            log: Vec::new(),
        }
    }

    fn next(&mut self) -> u64 {
        // xorshift64*: deterministic, state advances per draw.
        let mut x = self.rng;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn maybe_miss(&mut self, addr: u64, write: bool) -> Option<MdcMiss> {
        let r = self.next();
        if r % 256 < self.miss_num {
            Some(MdcMiss {
                line: addr & !127,
                write,
                victim_writeback: (r >> 8).is_multiple_of(3).then_some((r >> 16) & !127),
            })
        } else {
            None
        }
    }
}

impl Env for ChaosEnv {
    fn load(&mut self, addr: u64, size: MemSize) -> (u64, Option<MdcMiss>) {
        let v = match size {
            MemSize::Double => self.mem.load64(addr),
            MemSize::Word => self.mem.load32(addr & !3) as u64,
        };
        let miss = self.maybe_miss(addr, false);
        self.log
            .push(format!("load {addr:#x} {size:?} -> {v:#x} {miss:?}"));
        (v, miss)
    }

    fn store(&mut self, addr: u64, val: u64, size: MemSize) -> Option<MdcMiss> {
        match size {
            MemSize::Double => self.mem.store64(addr, val),
            MemSize::Word => self.mem.store32(addr & !3, val as u32),
        }
        let miss = self.maybe_miss(addr, true);
        self.log
            .push(format!("store {addr:#x} {val:#x} {size:?} -> {miss:?}"));
        miss
    }

    fn msg_field(&mut self, field: u8) -> u64 {
        let v = self.fields[field as usize];
        self.log.push(format!("mfmsg {field} -> {v:#x}"));
        v
    }
}

/// A protocol memory with a valid free list, a directory header drawn
/// from the seed, and `sharers` pointer-store entries threaded onto it —
/// plus a few seeded corruptions when `corrupt` is set, to push handlers
/// down error/NACK/retry paths.
fn seeded_mem(seed: u64, sharers: u16, corrupt: bool) -> ProtoMem {
    let mut mem = ProtoMem::new();
    Directory::init_free_list(&mut mem, DEFAULT_PS_CAPACITY);
    let da = dir_addr(Addr::new(ADDR));
    let mut x = seed | 1;
    let mut next = move || {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        x
    };
    mem.store64(da, next());
    {
        let mut d = Directory::new(&mut mem);
        let mut h = d.header(da);
        for s in 0..sharers {
            if let Some(idx) = d.alloc_entry() {
                d.set_entry(idx, PtrEntry::new(NodeId(s % 16), h.head()));
                h = h.with_head(idx);
            }
        }
        d.set_header(da, h);
    }
    if corrupt {
        for _ in 0..4 {
            let a = (next() % 0x4000) & !7;
            mem.store64(a, next());
        }
    }
    mem
}

fn rand_msg(seed: u64, mtype: MsgType) -> InMsg {
    let mut x = seed | 1;
    let mut next = move || {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        x
    };
    let me = (next() % 16) as u16;
    let home = if next() % 2 == 0 {
        me
    } else {
        (next() % 16) as u16
    };
    InMsg {
        mtype,
        src: NodeId((next() % 16) as u16),
        addr: Addr::new(ADDR),
        aux: aux::pack(NodeId((next() % 16) as u16), mtype, NodeId(home)),
        spec: next() % 2 == 0,
        self_node: NodeId(me),
        home: NodeId(home),
        diraddr: dir_addr(Addr::new(ADDR)),
        with_data: mtype.carries_data(),
    }
}

const MSG_TYPES: [MsgType; 8] = [
    MsgType::PiGet,
    MsgType::PiGetX,
    MsgType::NGet,
    MsgType::NGetX,
    MsgType::NInvalAck,
    MsgType::NPut,
    MsgType::NFwdGet,
    MsgType::PiWriteback,
];

/// A generous-but-bounded budget: big enough for any legitimate handler
/// run, small enough that a corruption-induced infinite sharer walk ends
/// quickly (both backends must agree on the `RanAway`).
const BUDGET: u64 = 20_000;

/// Runs `handler` of `program` under both backends with identical
/// environments and asserts total agreement.
fn assert_handler_agrees(
    program: &Arc<flash_pp::Program>,
    handler: &str,
    mem: &ProtoMem,
    msg: &InMsg,
    seed: u64,
    miss_num: u64,
) {
    let translated = translate_shared(program);
    assert!(translated.fully_translated());
    let entry = program
        .entry(handler)
        .unwrap_or_else(|| panic!("program lacks {handler}"));
    let fields = fields_of(msg);

    let mut env_e = ChaosEnv::new(mem.clone(), fields, seed, miss_num);
    let mut regs_e = Regs::new();
    let mut sink_e = EffectSink::new();
    let res_e = emu::run_into(program, entry, &mut env_e, BUDGET, &mut regs_e, &mut sink_e);

    let mut env_t = ChaosEnv::new(mem.clone(), fields, seed, miss_num);
    let mut regs_t = Regs::new();
    let mut sink_t = EffectSink::new();
    let res_t = translated.run_into(entry, &mut env_t, BUDGET, &mut regs_t, &mut sink_t);

    assert_eq!(res_e, res_t, "{handler}: result diverged (seed {seed})");
    assert_eq!(
        env_e.log, env_t.log,
        "{handler}: env call sequence diverged (seed {seed})"
    );
    assert_eq!(
        env_e.mem.first_difference(&env_t.mem),
        None,
        "{handler}: protocol memory diverged (seed {seed})"
    );
    if res_e.is_ok() {
        assert_eq!(
            sink_e.effects(),
            sink_t.effects(),
            "{handler}: effect timeline diverged (seed {seed})"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every handler × random directory state, message, and MDC
    /// responses, on the production codegen.
    #[test]
    fn every_handler_agrees_under_random_envs(
        seed in any::<u64>(),
        sharers in 0u16..12,
        corrupt in any::<bool>(),
        miss_num in 0u64..96,
        mt_idx in 0usize..MSG_TYPES.len(),
    ) {
        let program = compile_shared(CodegenOptions::magic());
        let mem = seeded_mem(seed, sharers, corrupt);
        let msg = rand_msg(seed ^ 0x5eed, MSG_TYPES[mt_idx]);
        for handler in HANDLER_NAMES {
            assert_handler_agrees(&program, handler, &mem, &msg, seed, miss_num);
        }
    }

    /// The §5.3 de-optimized codegen (no specials, single-issue) takes
    /// different block shapes; spot-check every handler there too.
    #[test]
    fn deoptimized_codegen_agrees(
        seed in any::<u64>(),
        sharers in 0u16..8,
    ) {
        let program = compile_shared(CodegenOptions::deoptimized());
        let mem = seeded_mem(seed, sharers, false);
        let msg = rand_msg(seed ^ 0xdeaf, MsgType::NGetX);
        for handler in HANDLER_NAMES {
            assert_handler_agrees(&program, handler, &mem, &msg, seed, 32);
        }
    }
}

/// Deterministic smoke: every handler, clean state, no MDC misses — the
/// path the machine model exercises most.
#[test]
fn every_handler_agrees_on_clean_state() {
    let program = compile_shared(CodegenOptions::magic());
    for (i, handler) in HANDLER_NAMES.iter().enumerate() {
        let mem = seeded_mem(0x1000 + i as u64, (i % 6) as u16, false);
        let msg = rand_msg(0x2000 + i as u64, MSG_TYPES[i % MSG_TYPES.len()]);
        assert_handler_agrees(&program, handler, &mem, &msg, i as u64, 0);
    }
}
