//! Table-driven PP occupancy cost model.
//!
//! The `FlashCostTable` controller mode charges PP occupancy from this
//! table instead of emulating handler code. The base values come straight
//! from paper Table 3.4 ("PP Occupancies for Common Operations"), with the
//! variable components (per-invalidation, per-list-node) applied by the
//! native handlers as they discover list lengths. This mode serves two
//! purposes: fast large-configuration runs (§4.5's 64-processor
//! experiments) and an independent cross-check on the emulated handlers.

/// Paper Table 3.4 occupancies, in 10 ns cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostTable {
    /// Service read miss from main memory.
    pub read_from_memory: u64,
    /// Service write miss from main memory (base, plus per-invalidation).
    pub write_from_memory: u64,
    /// Additional cycles per invalidation sent.
    pub per_inval: u64,
    /// Forward request to home node (requester side of a remote miss).
    pub forward_to_home: u64,
    /// Forward request from home to dirty node.
    pub forward_to_dirty: u64,
    /// Retrieve data from processor cache (intervention handler chain).
    pub retrieve_from_cache: u64,
    /// Forward reply from network to processor.
    pub reply_to_processor: u64,
    /// Local writeback.
    pub local_writeback: u64,
    /// Local replacement hint.
    pub local_hint: u64,
    /// Writeback from a remote processor.
    pub remote_writeback: u64,
    /// Replacement hint from a remote processor, sole sharer.
    pub remote_hint_only: u64,
    /// Replacement hint base when the processor is the Nth sharer...
    pub remote_hint_base: u64,
    /// ...plus this many cycles per node walked.
    pub remote_hint_per_node: u64,
    /// Invalidation receipt at a sharer (inval + ack send).
    pub inval_receive: u64,
    /// Invalidation-ack receipt at the home.
    pub inval_ack: u64,
    /// NACK receipt / retry issue.
    pub nack_retry: u64,
    /// Sharing-writeback or ownership-transfer receipt at the home.
    pub swb_receive: u64,
}

impl Default for CostTable {
    fn default() -> Self {
        Self::paper()
    }
}

impl CostTable {
    /// The values published in paper Table 3.4 (with small estimates for
    /// the handlers the table does not list individually).
    pub const fn paper() -> Self {
        CostTable {
            read_from_memory: 11,
            write_from_memory: 14,
            per_inval: 12, // paper: 10 to 15 per invalidation
            forward_to_home: 3,
            forward_to_dirty: 18,
            retrieve_from_cache: 38,
            reply_to_processor: 2,
            local_writeback: 10,
            local_hint: 7,
            remote_writeback: 8,
            remote_hint_only: 17,
            remote_hint_base: 23,
            remote_hint_per_node: 14,
            inval_receive: 7,
            inval_ack: 4,
            nack_retry: 4,
            swb_receive: 10,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_values() {
        let t = CostTable::paper();
        assert_eq!(t.read_from_memory, 11);
        assert_eq!(t.write_from_memory, 14);
        assert_eq!(t.forward_to_home, 3);
        assert_eq!(t.forward_to_dirty, 18);
        assert_eq!(t.retrieve_from_cache, 38);
        assert_eq!(t.reply_to_processor, 2);
        assert_eq!(t.local_writeback, 10);
        assert_eq!(t.local_hint, 7);
        assert_eq!(t.remote_writeback, 8);
        assert_eq!(t.remote_hint_only, 17);
        assert_eq!(t.remote_hint_base + t.remote_hint_per_node, 37);
        assert!((10..=15).contains(&t.per_inval));
        assert_eq!(t, CostTable::default());
    }
}
