//! The FLASH dynamic-pointer-allocation cache-coherence protocol.
//!
//! This crate contains everything MAGIC needs to run coherence: the message
//! type space ([`msg`]), the byte-level directory structures ([`dir`],
//! [`mem`]), the inbox [`jump`] table, and *two interchangeable
//! implementations of the same protocol*:
//!
//! * [`native`] — the Rust oracle used by the ideal machine (zero-time
//!   controller) and by the fast table-driven FLASH mode (occupancies from
//!   [`cost`]);
//! * [`handlers`] — the protocol written in PP assembly, executed on the
//!   `flash-pp` emulator by the detailed FLASH model, exactly as the real
//!   machine runs handler code on MAGIC.
//!
//! The two implementations operate on identical directory memory and are
//! differentially tested against each other (same message, same state ⇒
//! same directory mutation and same outgoing messages).
pub mod cost;
pub mod dir;
pub mod fields;
pub mod handlers;
pub mod jump;
pub mod mem;
pub mod msg;
pub mod native;

pub use cost::CostTable;
pub use dir::{dir_addr, DirHeader, Directory, PtrEntry};
pub use jump::{JumpEntry, JumpTable};
pub use mem::ProtoMem;
pub use msg::{InMsg, Msg, MsgType, ProcMsg};
pub use native::{handle, NativeResult, Outgoing};
