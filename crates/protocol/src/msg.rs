//! Message types and header formats.
//!
//! "We refer to any inter- or intra-node communication as a *message*"
//! (paper §2). A single type space covers messages arriving from the
//! processor interface (PI), the network interface (NI) and the I/O
//! subsystem, as well as messages MAGIC sends to the local processor. The
//! raw discriminants are stable because PP handler code composes them as
//! immediates (via the generated `.equ` prologue, see
//! [`crate::fields::asm_prologue`]).

use flash_engine::{Addr, NodeId};

/// Every message type in the system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum MsgType {
    // ---- processor → MAGIC (PI incoming) ----
    /// Read miss from the local processor.
    PiGet = 0,
    /// Write miss from the local processor (needs data).
    PiGetX = 1,
    /// Write hit on a Shared line: exclusivity without data.
    PiUpgrade = 2,
    /// Eviction of a Dirty line, with data.
    PiWriteback = 3,
    /// Eviction of a Shared line (replacement hint).
    PiRplHint = 4,
    /// Intervention reply: the processor cache had the line; data attached.
    PiIntervReply = 5,
    /// Intervention reply: the processor cache no longer holds the line.
    PiIntervMiss = 6,

    // ---- I/O subsystem → MAGIC ----
    /// DMA write of a full line into this node's memory.
    IoDmaWrite = 7,
    /// DMA read of a line from this node's memory.
    IoDmaRead = 8,

    // ---- network → MAGIC (NI incoming) ----
    /// Read request arriving at the home node.
    NGet = 9,
    /// Write request arriving at the home node.
    NGetX = 10,
    /// Upgrade request arriving at the home node.
    NUpgrade = 11,
    /// Home forwarded a read request to the owning (dirty) node.
    NFwdGet = 12,
    /// Home forwarded a write request to the owning (dirty) node.
    NFwdGetX = 13,
    /// Invalidate a shared copy.
    NInval = 14,
    /// Invalidation acknowledgement (collected at the home node).
    NInvalAck = 15,
    /// Data reply, shared.
    NPut = 16,
    /// Data reply, exclusive.
    NPutX = 17,
    /// Upgrade acknowledgement (exclusivity granted, no data).
    NUpgAck = 18,
    /// Negative acknowledgement: retry the request.
    NNack = 19,
    /// Sharing writeback: owner → home after a forwarded read, with data.
    NSwb = 20,
    /// Ownership transfer: old owner → home after a forwarded write.
    NOwnx = 21,
    /// Dirty eviction arriving at the home node, with data.
    NWriteback = 22,
    /// Replacement hint arriving at the home node.
    NRplHint = 23,
    /// An intervention found nothing at the recorded owner: the home
    /// abandons the pending transaction (the requester was NACKed).
    NIntervMiss = 24,

    // ---- MAGIC → processor (PI outgoing; never jump-table dispatched) ----
    /// Data reply to the processor (read).
    PPut = 32,
    /// Data reply to the processor (write, exclusive).
    PPutX = 33,
    /// Upgrade acknowledgement to the processor.
    PUpgAck = 34,
    /// Invalidate a line in the processor cache.
    PInval = 35,
    /// Intervention: read the line from the processor cache, downgrading
    /// Dirty → Shared.
    PIntervGet = 36,
    /// Intervention: read and invalidate the line in the processor cache.
    PIntervGetX = 37,
    /// The request was NACKed at dispatch; the processor bus retries.
    PNackRetry = 38,
    /// Data reply to the I/O subsystem (DMA read completion).
    PIoData = 39,
}

impl MsgType {
    /// All jump-table-dispatched (incoming) message types.
    pub const INCOMING: [MsgType; 25] = [
        MsgType::PiGet,
        MsgType::PiGetX,
        MsgType::PiUpgrade,
        MsgType::PiWriteback,
        MsgType::PiRplHint,
        MsgType::PiIntervReply,
        MsgType::PiIntervMiss,
        MsgType::IoDmaWrite,
        MsgType::IoDmaRead,
        MsgType::NGet,
        MsgType::NGetX,
        MsgType::NUpgrade,
        MsgType::NFwdGet,
        MsgType::NFwdGetX,
        MsgType::NInval,
        MsgType::NInvalAck,
        MsgType::NPut,
        MsgType::NPutX,
        MsgType::NUpgAck,
        MsgType::NNack,
        MsgType::NSwb,
        MsgType::NOwnx,
        MsgType::NWriteback,
        MsgType::NRplHint,
        MsgType::NIntervMiss,
    ];

    /// Raw discriminant, as seen by PP handler code.
    #[inline]
    pub fn raw(self) -> u64 {
        self as u64
    }

    /// The variant name, for diagnostics (wedge reports, trace rings).
    pub fn name(self) -> &'static str {
        use MsgType::*;
        match self {
            PiGet => "PiGet",
            PiGetX => "PiGetX",
            PiUpgrade => "PiUpgrade",
            PiWriteback => "PiWriteback",
            PiRplHint => "PiRplHint",
            PiIntervReply => "PiIntervReply",
            PiIntervMiss => "PiIntervMiss",
            IoDmaWrite => "IoDmaWrite",
            IoDmaRead => "IoDmaRead",
            NGet => "NGet",
            NGetX => "NGetX",
            NUpgrade => "NUpgrade",
            NFwdGet => "NFwdGet",
            NFwdGetX => "NFwdGetX",
            NInval => "NInval",
            NInvalAck => "NInvalAck",
            NPut => "NPut",
            NPutX => "NPutX",
            NUpgAck => "NUpgAck",
            NNack => "NNack",
            NSwb => "NSwb",
            NOwnx => "NOwnx",
            NWriteback => "NWriteback",
            NRplHint => "NRplHint",
            NIntervMiss => "NIntervMiss",
            PPut => "PPut",
            PPutX => "PPutX",
            PUpgAck => "PUpgAck",
            PInval => "PInval",
            PIntervGet => "PIntervGet",
            PIntervGetX => "PIntervGetX",
            PNackRetry => "PNackRetry",
            PIoData => "PIoData",
        }
    }

    /// Decodes a raw discriminant.
    pub fn from_raw(raw: u64) -> Option<MsgType> {
        use MsgType::*;
        Some(match raw {
            0 => PiGet,
            1 => PiGetX,
            2 => PiUpgrade,
            3 => PiWriteback,
            4 => PiRplHint,
            5 => PiIntervReply,
            6 => PiIntervMiss,
            7 => IoDmaWrite,
            8 => IoDmaRead,
            9 => NGet,
            10 => NGetX,
            11 => NUpgrade,
            12 => NFwdGet,
            13 => NFwdGetX,
            14 => NInval,
            15 => NInvalAck,
            16 => NPut,
            17 => NPutX,
            18 => NUpgAck,
            19 => NNack,
            20 => NSwb,
            21 => NOwnx,
            22 => NWriteback,
            23 => NRplHint,
            24 => NIntervMiss,
            32 => PPut,
            33 => PPutX,
            34 => PUpgAck,
            35 => PInval,
            36 => PIntervGet,
            37 => PIntervGetX,
            38 => PNackRetry,
            39 => PIoData,
            _ => return None,
        })
    }

    /// Whether a data buffer travels with this message type.
    pub fn carries_data(self) -> bool {
        use MsgType::*;
        matches!(
            self,
            PiWriteback
                | PiIntervReply
                | IoDmaWrite
                | NPut
                | NPutX
                | NSwb
                | NWriteback
                | PPut
                | PPutX
                | PIoData
        )
    }

    /// Whether this type arrives from the network (an NI message).
    pub fn is_network(self) -> bool {
        (9..=24).contains(&(self as u8))
    }

    /// Whether this type arrives from the local processor (a PI message).
    pub fn is_processor(self) -> bool {
        (0..=6).contains(&(self as u8))
    }

    /// Whether this is a *reply*-class network message. MAGIC drains reply
    /// queues with priority to preserve deadlock freedom (request/reply
    /// virtual channels).
    pub fn is_reply_class(self) -> bool {
        use MsgType::*;
        matches!(
            self,
            NPut | NPutX | NUpgAck | NNack | NInvalAck | NSwb | NOwnx
        )
    }
}

/// A message travelling between nodes (or looped back to the local node).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Msg {
    /// Message type.
    pub mtype: MsgType,
    /// Node that sent this hop of the transaction.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Line address the transaction concerns.
    pub addr: Addr,
    /// Packed auxiliary field (see [`crate::fields::aux`]).
    pub aux: u64,
    /// Whether a 128-byte data buffer travels with the header.
    pub with_data: bool,
}

/// A message from MAGIC to its local compute processor (or I/O).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProcMsg {
    /// One of the `P*` message types.
    pub mtype: MsgType,
    /// Line address.
    pub addr: Addr,
    /// Packed auxiliary field (carried back on intervention replies).
    pub aux: u64,
    /// Whether data accompanies the message.
    pub with_data: bool,
}

/// An incoming message as preprocessed by the inbox: the raw header plus
/// the fields the inbox derives for the PP (directory address, home node,
/// whether a speculative memory operation was issued).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InMsg {
    /// Message type.
    pub mtype: MsgType,
    /// Sending node (for PI/IO messages, the local node).
    pub src: NodeId,
    /// Line address.
    pub addr: Addr,
    /// Packed auxiliary field.
    pub aux: u64,
    /// Whether the inbox issued a speculative memory read for `addr`.
    pub spec: bool,
    /// The node this MAGIC chip lives in.
    pub self_node: NodeId,
    /// Home node of `addr`.
    pub home: NodeId,
    /// Local protocol-memory address of the directory header for `addr`
    /// (only meaningful when `home == self_node`).
    pub diraddr: u64,
    /// Whether the incoming message carried data.
    pub with_data: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn network_classification_and_names() {
        assert!(MsgType::NGet.is_network());
        assert!(MsgType::NIntervMiss.is_network());
        assert!(!MsgType::PiGet.is_network());
        assert!(!MsgType::IoDmaRead.is_network());
        assert!(!MsgType::PPut.is_network());
        for t in MsgType::INCOMING {
            assert_eq!(t.name().starts_with('N'), t.is_network());
            assert_eq!(format!("{t:?}"), t.name());
        }
    }

    #[test]
    fn raw_round_trip() {
        for t in MsgType::INCOMING {
            assert_eq!(MsgType::from_raw(t.raw()), Some(t));
        }
        for t in [
            MsgType::PPut,
            MsgType::PPutX,
            MsgType::PUpgAck,
            MsgType::PInval,
            MsgType::PIntervGet,
            MsgType::PIntervGetX,
            MsgType::PNackRetry,
            MsgType::PIoData,
        ] {
            assert_eq!(MsgType::from_raw(t.raw()), Some(t));
        }
        assert_eq!(MsgType::from_raw(99), None);
        assert_eq!(MsgType::from_raw(25), None);
    }

    #[test]
    fn data_carriage() {
        assert!(MsgType::NPut.carries_data());
        assert!(MsgType::NWriteback.carries_data());
        assert!(!MsgType::NGet.carries_data());
        assert!(!MsgType::NInval.carries_data());
        assert!(MsgType::PPut.carries_data());
        assert!(!MsgType::PInval.carries_data());
    }

    #[test]
    fn interface_classification() {
        assert!(MsgType::PiGet.is_processor());
        assert!(!MsgType::PiGet.is_network());
        assert!(MsgType::NGet.is_network());
        assert!(MsgType::NNack.is_reply_class());
        assert!(!MsgType::NGet.is_reply_class());
    }
}
