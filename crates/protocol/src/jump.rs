//! The inbox jump table.
//!
//! "The inbox uses parts of the message header to index into a small
//! associative memory array called the *jump table*. The output of the
//! jump table specifies the starting program counter value for the PP code
//! sequence (or *handler*) appropriate for the message, as well as whether
//! to initiate a speculative memory operation for the address contained in
//! the message header" (paper §2). The table is programmable — disabling
//! the speculation bits reproduces paper Table 5.1's experiment.

use crate::msg::MsgType;
use flash_engine::FastMap;

/// One jump-table entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JumpEntry {
    /// Entry symbol of the handler to dispatch.
    pub handler: &'static str,
    /// Whether the inbox should issue a speculative memory read for the
    /// message's address (only honoured when this node is the home).
    pub speculative: bool,
}

/// The programmable dispatch table: (message type, is-local-home) →
/// handler + speculation decision.
#[derive(Debug, Clone)]
pub struct JumpTable {
    entries: FastMap<(MsgType, bool), JumpEntry>,
}

impl JumpTable {
    /// The production programming for the dynamic-pointer-allocation
    /// protocol, with speculative reads enabled for the request types that
    /// may be satisfied from home memory.
    pub fn dpa_protocol() -> Self {
        let mut entries = FastMap::default();
        fn both(
            entries: &mut FastMap<(MsgType, bool), JumpEntry>,
            t: MsgType,
            handler: &'static str,
            spec: bool,
        ) {
            entries.insert(
                (t, true),
                JumpEntry {
                    handler,
                    speculative: spec,
                },
            );
            entries.insert(
                (t, false),
                JumpEntry {
                    handler,
                    speculative: false,
                },
            );
        }
        use MsgType::*;
        // PI requests split on home locality.
        entries.insert(
            (PiGet, true),
            JumpEntry {
                handler: "pi_get_local",
                speculative: true,
            },
        );
        entries.insert(
            (PiGet, false),
            JumpEntry {
                handler: "pi_get_remote",
                speculative: false,
            },
        );
        entries.insert(
            (PiGetX, true),
            JumpEntry {
                handler: "pi_getx_local",
                speculative: true,
            },
        );
        entries.insert(
            (PiGetX, false),
            JumpEntry {
                handler: "pi_getx_remote",
                speculative: false,
            },
        );
        entries.insert(
            (PiUpgrade, true),
            JumpEntry {
                handler: "pi_upgrade_local",
                speculative: false,
            },
        );
        entries.insert(
            (PiUpgrade, false),
            JumpEntry {
                handler: "pi_upgrade_remote",
                speculative: false,
            },
        );
        entries.insert(
            (PiWriteback, true),
            JumpEntry {
                handler: "pi_wb_local",
                speculative: false,
            },
        );
        entries.insert(
            (PiWriteback, false),
            JumpEntry {
                handler: "pi_wb_remote",
                speculative: false,
            },
        );
        entries.insert(
            (PiRplHint, true),
            JumpEntry {
                handler: "pi_hint_local",
                speculative: false,
            },
        );
        entries.insert(
            (PiRplHint, false),
            JumpEntry {
                handler: "pi_hint_remote",
                speculative: false,
            },
        );
        both(&mut entries, PiIntervReply, "pi_interv_reply", false);
        both(&mut entries, PiIntervMiss, "pi_interv_miss", false);
        both(&mut entries, IoDmaWrite, "io_dma_write", false);
        both(&mut entries, IoDmaRead, "io_dma_read", false);
        // NI messages: requests at the home may speculate.
        both(&mut entries, NGet, "ni_get", true);
        both(&mut entries, NGetX, "ni_getx", true);
        both(&mut entries, NUpgrade, "ni_upgrade", false);
        both(&mut entries, NFwdGet, "ni_fwd_get", false);
        both(&mut entries, NFwdGetX, "ni_fwd_getx", false);
        both(&mut entries, NInval, "ni_inval", false);
        both(&mut entries, NInvalAck, "ni_inval_ack", false);
        both(&mut entries, NPut, "ni_put", false);
        both(&mut entries, NPutX, "ni_putx", false);
        both(&mut entries, NUpgAck, "ni_upgack", false);
        both(&mut entries, NNack, "ni_nack", false);
        both(&mut entries, NSwb, "ni_swb", false);
        both(&mut entries, NOwnx, "ni_ownx", false);
        both(&mut entries, NWriteback, "ni_wb", false);
        both(&mut entries, NRplHint, "ni_hint", false);
        both(&mut entries, NIntervMiss, "ni_interv_miss", false);
        JumpTable { entries }
    }

    /// Looks up the dispatch entry for a message.
    ///
    /// # Panics
    ///
    /// Panics if the table has no entry for `(mtype, local_home)` — every
    /// incoming type must be programmed.
    pub fn lookup(&self, mtype: MsgType, local_home: bool) -> JumpEntry {
        *self
            .entries
            .get(&(mtype, local_home))
            .unwrap_or_else(|| panic!("jump table hole for {mtype:?}/local={local_home}"))
    }

    /// The production table with the four home-request slots redirected
    /// to counting wrappers (use with
    /// [`crate::handlers::compile_monitoring`]).
    pub fn dpa_with_monitoring() -> Self {
        let mut t = Self::dpa_protocol();
        t.reprogram(
            MsgType::NGet,
            true,
            JumpEntry {
                handler: "mon_ni_get",
                speculative: true,
            },
        );
        t.reprogram(
            MsgType::NGet,
            false,
            JumpEntry {
                handler: "mon_ni_get",
                speculative: false,
            },
        );
        t.reprogram(
            MsgType::NGetX,
            true,
            JumpEntry {
                handler: "mon_ni_getx",
                speculative: true,
            },
        );
        t.reprogram(
            MsgType::NGetX,
            false,
            JumpEntry {
                handler: "mon_ni_getx",
                speculative: false,
            },
        );
        t.reprogram(
            MsgType::PiGet,
            true,
            JumpEntry {
                handler: "mon_pi_get_local",
                speculative: true,
            },
        );
        t.reprogram(
            MsgType::PiGetX,
            true,
            JumpEntry {
                handler: "mon_pi_getx_local",
                speculative: true,
            },
        );
        t
    }

    /// Reprograms the table with all speculative reads disabled (the
    /// paper's Table 5.1 counterfactual: "the PP is responsible for
    /// initiating the memory access after reading the directory state").
    pub fn without_speculation(mut self) -> Self {
        for e in self.entries.values_mut() {
            e.speculative = false;
        }
        self
    }

    /// Replaces the handler for one (type, locality) slot — the
    /// flexibility hook that lets users drop in custom protocol code.
    pub fn reprogram(&mut self, mtype: MsgType, local_home: bool, entry: JumpEntry) {
        self.entries.insert((mtype, local_home), entry);
    }

    /// Iterates over all programmed entries.
    pub fn iter(&self) -> impl Iterator<Item = (&(MsgType, bool), &JumpEntry)> {
        self.entries.iter()
    }

    /// The sorted, deduplicated set of handler names this table can
    /// dispatch to. The observability layer uses it to give every
    /// per-handler row in an `ObserveReport` a stable name even when the
    /// handler was never invoked in a run.
    pub fn handler_names(&self) -> Vec<&'static str> {
        let mut names: Vec<&'static str> = self.entries.values().map(|e| e.handler).collect();
        names.sort_unstable();
        names.dedup();
        names
    }
}

impl Default for JumpTable {
    fn default() -> Self {
        Self::dpa_protocol()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_incoming_type_is_programmed() {
        let t = JumpTable::dpa_protocol();
        for mt in MsgType::INCOMING {
            for local in [true, false] {
                let _ = t.lookup(mt, local);
            }
        }
    }

    #[test]
    fn speculation_policy_matches_paper() {
        let t = JumpTable::dpa_protocol();
        assert!(t.lookup(MsgType::PiGet, true).speculative);
        assert!(
            !t.lookup(MsgType::PiGet, false).speculative,
            "no spec for remote homes"
        );
        assert!(t.lookup(MsgType::NGet, true).speculative);
        assert!(t.lookup(MsgType::NGetX, true).speculative);
        assert!(
            !t.lookup(MsgType::NFwdGet, true).speculative,
            "data comes from a cache"
        );
        assert!(
            !t.lookup(MsgType::PiUpgrade, true).speculative,
            "no data needed"
        );
        assert!(!t.lookup(MsgType::NWriteback, true).speculative);
    }

    #[test]
    fn without_speculation_clears_everything() {
        let t = JumpTable::dpa_protocol().without_speculation();
        for (_, e) in t.iter() {
            assert!(!e.speculative);
        }
    }

    #[test]
    fn reprogramming_swaps_handlers() {
        let mut t = JumpTable::dpa_protocol();
        t.reprogram(
            MsgType::NGet,
            true,
            JumpEntry {
                handler: "my_custom_get",
                speculative: false,
            },
        );
        assert_eq!(t.lookup(MsgType::NGet, true).handler, "my_custom_get");
        // The remote-home slot is untouched.
        assert_eq!(t.lookup(MsgType::NGet, false).handler, "ni_get");
    }
}
