//! The coherence protocol in PP assembly.
//!
//! These are the handler code sequences the detailed FLASH model executes
//! on the `flash-pp` emulator, mirroring [`crate::native`] in effect: for
//! any message and directory state, the emulated handler and the native
//! oracle produce the same directory mutation and the same outgoing
//! messages (enforced by the differential tests in `tests/differential.rs`).
//!
//! Register conventions: `r1`/`r2` scratch, `r10` message type being
//! composed, `r11` directory-header address, `r12` header value, `r13`
//! line address, `r14` aux word, `r15` self node, `r16` home node, `r17`
//! source node, `r18`-`r28` handler locals. `r29`/`r30` are assembler
//! temporaries.

use crate::fields::asm_prologue;
use crate::mem::ProtoMem;
use flash_pp::emu::{Env as PpEnv, MdcMiss};
use flash_pp::isa::MemSize;
use flash_pp::{AsmError, CodegenOptions, Program};
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

/// Every handler entry symbol, in dispatch order.
pub const HANDLER_NAMES: [&str; 28] = [
    "pi_get_local",
    "pi_get_remote",
    "pi_getx_local",
    "pi_getx_remote",
    "pi_upgrade_local",
    "pi_upgrade_remote",
    "pi_wb_local",
    "pi_wb_remote",
    "pi_hint_local",
    "pi_hint_remote",
    "pi_interv_reply",
    "pi_interv_miss",
    "io_dma_write",
    "io_dma_read",
    "ni_get",
    "ni_getx",
    "ni_upgrade",
    "ni_fwd_get",
    "ni_fwd_getx",
    "ni_inval",
    "ni_inval_ack",
    "ni_put",
    "ni_putx",
    "ni_upgack",
    "ni_nack",
    "ni_swb",
    "ni_hint",
    "ni_interv_miss",
];

/// The protocol handler source (assembled together with the generated
/// constant prologue).
pub const SOURCE: &str = include_str!("handlers.s");

/// Displacement from a directory header to its monitoring counter
/// (`1 << MON_SHIFT` bytes above the header; far beyond any header
/// address, so the two regions never collide).
pub const MON_SHIFT: u32 = 35;

/// Monitoring wrappers: count every request at the home, then fall
/// through to the stock handler — the paper's "extensive and accurate
/// performance monitoring" benefit of a programmable controller, paid for
/// with real PP cycles and MDC pressure.
pub const MONITORING_SOURCE: &str = "
mon_ni_get:
    mfmsg  r3, F_DIRADDR
    addi   r4, r0, 1
    slli   r4, r4, MON_SHIFT
    add    r3, r3, r4
    ld     r5, 0(r3)
    addi   r5, r5, 1
    sd     r5, 0(r3)
    j      ni_get

mon_ni_getx:
    mfmsg  r3, F_DIRADDR
    addi   r4, r0, 1
    slli   r4, r4, MON_SHIFT
    add    r3, r3, r4
    ld     r5, 0(r3)
    addi   r5, r5, 1
    sd     r5, 0(r3)
    j      ni_getx

mon_pi_get_local:
    mfmsg  r3, F_DIRADDR
    addi   r4, r0, 1
    slli   r4, r4, MON_SHIFT
    add    r3, r3, r4
    ld     r5, 0(r3)
    addi   r5, r5, 1
    sd     r5, 0(r3)
    j      pi_get_local

mon_pi_getx_local:
    mfmsg  r3, F_DIRADDR
    addi   r4, r0, 1
    slli   r4, r4, MON_SHIFT
    add    r3, r3, r4
    ld     r5, 0(r3)
    addi   r5, r5, 1
    sd     r5, 0(r3)
    j      pi_getx_local
";

/// Assembles and schedules the full protocol under `options`.
///
/// # Errors
///
/// Returns an [`AsmError`] if the handler source fails to assemble (a
/// build-time bug, covered by tests).
///
/// # Examples
///
/// ```
/// let p = flash_protocol::handlers::compile(flash_pp::CodegenOptions::magic())?;
/// assert!(p.entry("ni_get").is_some());
/// # Ok::<(), flash_pp::AsmError>(())
/// ```
pub fn compile(options: CodegenOptions) -> Result<Program, AsmError> {
    let src = format!(
        "{}\n.equ MON_SHIFT, {}\n{}",
        asm_prologue(),
        MON_SHIFT,
        SOURCE
    );
    flash_pp::build(&src, options)
}

/// Assembles the protocol together with the request-monitoring wrappers
/// (dispatch them with [`crate::JumpTable::dpa_with_monitoring`]).
///
/// # Errors
///
/// Returns an [`AsmError`] if the combined source fails to assemble.
pub fn compile_monitoring(options: CodegenOptions) -> Result<Program, AsmError> {
    let src = format!(
        "{}\n.equ MON_SHIFT, {}\n{}\n{}",
        asm_prologue(),
        MON_SHIFT,
        SOURCE,
        MONITORING_SOURCE
    );
    flash_pp::build(&src, options)
}

/// Process-wide cache of compiled handler modules, keyed by
/// `(CodegenOptions, monitoring?)`.
///
/// Assembling and dual-issue-scheduling the protocol costs milliseconds —
/// invisible for one simulation, but the evaluation matrix builds
/// hundreds of `Machine`s, most sharing a handful of codegen variants.
/// The scheduled [`Program`] is immutable, so every machine (and every
/// worker thread of the run-matrix driver) can share one `Arc`.
type ProgramCache = Mutex<HashMap<(CodegenOptions, bool), Arc<Program>>>;

fn program_cache() -> &'static ProgramCache {
    static CACHE: OnceLock<ProgramCache> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

fn compile_cached(options: CodegenOptions, monitoring: bool) -> Arc<Program> {
    let mut cache = program_cache().lock().expect("program cache poisoned");
    if let Some(p) = cache.get(&(options, monitoring)) {
        return Arc::clone(p);
    }
    let compiled = if monitoring {
        compile_monitoring(options)
    } else {
        compile(options)
    };
    let p = Arc::new(compiled.expect("protocol handlers assemble"));
    cache.insert((options, monitoring), Arc::clone(&p));
    p
}

/// Shared, process-wide compilation of the protocol: compiles on first
/// use per `options`, then hands out the same immutable program.
///
/// # Examples
///
/// ```
/// let a = flash_protocol::handlers::compile_shared(flash_pp::CodegenOptions::magic());
/// let b = flash_protocol::handlers::compile_shared(flash_pp::CodegenOptions::magic());
/// assert!(std::sync::Arc::ptr_eq(&a, &b));
/// ```
pub fn compile_shared(options: CodegenOptions) -> Arc<Program> {
    compile_cached(options, false)
}

/// Shared compilation of the protocol plus the monitoring wrappers (see
/// [`compile_monitoring`]).
pub fn compile_monitoring_shared(options: CodegenOptions) -> Arc<Program> {
    compile_cached(options, true)
}

/// A PP execution environment over a node's protocol memory with no MDC
/// model (every access hits). Used for differential tests and for pure
/// handler-occupancy measurements (paper Table 3.4); the machine model
/// wraps this with MDC tags.
#[derive(Debug)]
pub struct MemEnv<'a> {
    /// The node's protocol memory.
    pub mem: &'a mut ProtoMem,
    /// Message-register contents.
    pub fields: [u64; 16],
}

impl<'a> MemEnv<'a> {
    /// Creates an environment presenting `msg` to the handler.
    pub fn new(mem: &'a mut ProtoMem, msg: &crate::msg::InMsg) -> Self {
        MemEnv {
            mem,
            fields: fields_of(msg),
        }
    }
}

/// Message-register contents the inbox would present for `msg`.
pub fn fields_of(msg: &crate::msg::InMsg) -> [u64; 16] {
    use crate::fields::field;
    let mut f = [0u64; 16];
    f[field::TYPE as usize] = msg.mtype.raw();
    f[field::SRC as usize] = msg.src.0 as u64;
    f[field::ADDR as usize] = msg.addr.raw();
    f[field::DIRADDR as usize] = msg.diraddr;
    f[field::AUX as usize] = msg.aux;
    f[field::SPEC as usize] = msg.spec as u64;
    f[field::SELF as usize] = msg.self_node.0 as u64;
    f[field::HOME as usize] = msg.home.0 as u64;
    f
}

impl PpEnv for MemEnv<'_> {
    fn load(&mut self, addr: u64, size: MemSize) -> (u64, Option<MdcMiss>) {
        let v = match size {
            MemSize::Double => self.mem.load64(addr),
            MemSize::Word => self.mem.load32(addr) as u64,
        };
        (v, None)
    }

    fn store(&mut self, addr: u64, val: u64, size: MemSize) -> Option<MdcMiss> {
        match size {
            MemSize::Double => self.mem.store64(addr, val),
            MemSize::Word => self.mem.store32(addr, val as u32),
        }
        None
    }

    fn msg_field(&mut self, field: u8) -> u64 {
        self.fields[field as usize]
    }
}

/// Decodes a raw emulator effect into a protocol [`crate::native::Outgoing`]
/// (`None` for MDC timing effects, which have no protocol meaning).
pub fn effect_to_outgoing(
    kind: &flash_pp::emu::EffectKind,
    self_node: flash_engine::NodeId,
) -> Option<crate::native::Outgoing> {
    use crate::msg::{Msg, MsgType, ProcMsg};
    use crate::native::Outgoing;
    use flash_engine::Addr;
    use flash_pp::emu::EffectKind;
    use flash_pp::isa::{MemOpKind, SendTarget};
    match *kind {
        EffectKind::Send(m) => {
            let mtype = MsgType::from_raw(m.mtype).expect("handler composed a valid message type");
            Some(match m.target {
                SendTarget::Network => Outgoing::Net(Msg {
                    mtype,
                    src: self_node,
                    dst: flash_engine::NodeId(m.dest as u16),
                    addr: Addr::new(m.addr),
                    aux: m.aux,
                    with_data: m.with_data,
                }),
                SendTarget::Processor => Outgoing::Proc(ProcMsg {
                    mtype,
                    addr: Addr::new(m.addr),
                    aux: m.aux,
                    with_data: m.with_data,
                }),
            })
        }
        EffectKind::MemOp { kind, addr } => Some(match kind {
            MemOpKind::ReadLine => Outgoing::MemRead(Addr::new(addr)),
            MemOpKind::WriteLine => Outgoing::MemWrite(Addr::new(addr)),
        }),
        EffectKind::Mdc(_) => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dir::{dir_addr, Directory, DEFAULT_PS_CAPACITY};
    use crate::msg::{InMsg, MsgType};
    use flash_engine::{Addr, NodeId};
    use flash_pp::emu::DEFAULT_PAIR_BUDGET;

    #[test]
    fn protocol_compiles_in_all_modes() {
        let p = compile(CodegenOptions::magic()).expect("magic build");
        for name in HANDLER_NAMES {
            assert!(p.entry(name).is_some(), "missing handler {name}");
        }
        let d = compile(CodegenOptions::deoptimized()).expect("deoptimized build");
        assert!(d.pairs.len() > p.pairs.len());
    }

    #[test]
    fn static_code_size_in_paper_ballpark() {
        // Paper Table 5.2: 14.8 KB of fully scheduled handlers. Our handler
        // set is the same order of magnitude.
        let p = compile(CodegenOptions::magic()).unwrap();
        let kb = p.static_bytes() as f64 / 1024.0;
        assert!(kb > 2.0 && kb < 32.0, "static size {kb:.1} KB out of range");
    }

    #[test]
    fn simple_handler_runs() {
        let p = compile(CodegenOptions::magic()).unwrap();
        let mut mem = ProtoMem::new();
        Directory::init_free_list(&mut mem, DEFAULT_PS_CAPACITY);
        let addr = Addr::new(0x1000);
        let msg = InMsg {
            mtype: MsgType::PiGet,
            src: NodeId(0),
            addr,
            aux: 0,
            spec: true,
            self_node: NodeId(0),
            home: NodeId(0),
            diraddr: dir_addr(addr),
            with_data: false,
        };
        let mut env = MemEnv::new(&mut mem, &msg);
        let run = flash_pp::emu::run(
            &p,
            p.entry("pi_get_local").unwrap(),
            &mut env,
            DEFAULT_PAIR_BUDGET,
        )
        .expect("handler runs");
        // A speculative local clean read: one PPut send, no memrd.
        assert_eq!(run.effects.len(), 1);
        let out = effect_to_outgoing(&run.effects[0].kind, NodeId(0)).unwrap();
        match out {
            crate::native::Outgoing::Proc(pm) => {
                assert_eq!(pm.mtype, MsgType::PPut);
                assert!(pm.with_data);
            }
            other => panic!("unexpected {other:?}"),
        }
        // Directory LOCAL bit was set through the emulated store.
        let d = Directory::new(&mut mem);
        assert!(d.header(dir_addr(addr)).local());
        // Read-from-memory occupancy lands near the paper's 11 cycles.
        assert!(
            (5..=16).contains(&run.exec_cycles),
            "pi_get_local took {} cycles",
            run.exec_cycles
        );
    }
}
