//! The dynamic pointer allocation directory.
//!
//! "Each main memory line has an associated *directory header* which
//! contains some status bits and a link to a linked list of sharing nodes"
//! (paper §3.3, citing Simoni92). Headers are 8 bytes — so one 128-byte
//! MDC line holds the headers for 16 contiguous memory lines (2 KB of
//! data), exactly the geometry analysed in paper §5.2 — and live in
//! protocol memory at `DIR_BASE + line_index * 8`. Sharers beyond the
//! `LOCAL` bit are kept in a linked *pointer store* with a free list.
//!
//! The bit layout here is the single source of truth: PP assembly handlers
//! receive the same constants through [`crate::fields::asm_prologue`].

use crate::mem::ProtoMem;
use flash_engine::{Addr, NodeId};

/// Protocol-memory address of the pointer-store free-list head (stores the
/// index of the first free entry; 0 = exhausted).
pub const FREE_HEAD_ADDR: u64 = 0x100;

/// Base of the pointer store in protocol memory.
pub const PS_BASE: u64 = 0x0200_0000;

/// Base of the directory headers in protocol memory.
pub const DIR_BASE: u64 = 0x1_0000_0000;

/// Default pointer-store capacity per node (entry index 0 is reserved as
/// the null link, so usable indices are `1..=capacity`).
pub const DEFAULT_PS_CAPACITY: u16 = 0xfffe;

/// Bit positions inside a directory header / pointer-store entry.
pub mod bits {
    /// Header bit: the line is held exclusively (dirty) by `OWNER`.
    pub const DIRTY: u8 = 0;
    /// Header bit: a transaction is in progress; requests are NACKed.
    pub const PENDING: u8 = 1;
    /// Header bit: the local processor holds a (shared or dirty) copy.
    pub const LOCAL: u8 = 2;
    /// Header field: owning node when `DIRTY` (16 bits).
    pub const OWNER_POS: u8 = 16;
    /// Header field: head index of the sharer list, 0 = empty (16 bits).
    pub const HEAD_POS: u8 = 32;
    /// Header field: outstanding invalidation acks (16 bits).
    pub const ACKS_POS: u8 = 48;
    /// Entry field: sharer node id (16 bits).
    pub const ENODE_POS: u8 = 16;
    /// Entry field: next entry index, 0 = end of list (16 bits).
    pub const ENEXT_POS: u8 = 32;
    /// Width of all multi-bit fields.
    pub const FIELD_W: u8 = 16;
}

/// Protocol-memory address of the directory header for a global line.
#[inline]
pub fn dir_addr(addr: Addr) -> u64 {
    DIR_BASE + addr.line_index() * 8
}

/// Protocol-memory address of pointer-store entry `idx`.
#[inline]
pub fn entry_addr(idx: u16) -> u64 {
    PS_BASE + idx as u64 * 8
}

/// A decoded directory header.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DirHeader(pub u64);

impl DirHeader {
    /// Whether the line is dirty in some cache.
    pub fn dirty(self) -> bool {
        self.0 >> bits::DIRTY & 1 == 1
    }

    /// Whether a transaction is pending on the line.
    pub fn pending(self) -> bool {
        self.0 >> bits::PENDING & 1 == 1
    }

    /// Whether the local processor holds a copy.
    pub fn local(self) -> bool {
        self.0 >> bits::LOCAL & 1 == 1
    }

    /// Owning node (meaningful when [`DirHeader::dirty`]).
    pub fn owner(self) -> NodeId {
        NodeId((self.0 >> bits::OWNER_POS) as u16)
    }

    /// Head index of the sharer list (0 = empty).
    pub fn head(self) -> u16 {
        (self.0 >> bits::HEAD_POS) as u16
    }

    /// Outstanding invalidation acknowledgements.
    pub fn acks(self) -> u16 {
        (self.0 >> bits::ACKS_POS) as u16
    }

    /// Sets or clears the dirty bit.
    pub fn with_dirty(self, v: bool) -> Self {
        DirHeader(self.0 & !(1 << bits::DIRTY) | (v as u64) << bits::DIRTY)
    }

    /// Sets or clears the pending bit.
    pub fn with_pending(self, v: bool) -> Self {
        DirHeader(self.0 & !(1 << bits::PENDING) | (v as u64) << bits::PENDING)
    }

    /// Sets or clears the local bit.
    pub fn with_local(self, v: bool) -> Self {
        DirHeader(self.0 & !(1 << bits::LOCAL) | (v as u64) << bits::LOCAL)
    }

    /// Replaces the owner field.
    pub fn with_owner(self, n: NodeId) -> Self {
        DirHeader(self.0 & !(0xffffu64 << bits::OWNER_POS) | (n.0 as u64) << bits::OWNER_POS)
    }

    /// Replaces the list-head field.
    pub fn with_head(self, idx: u16) -> Self {
        DirHeader(self.0 & !(0xffffu64 << bits::HEAD_POS) | (idx as u64) << bits::HEAD_POS)
    }

    /// Replaces the ack-count field.
    pub fn with_acks(self, n: u16) -> Self {
        DirHeader(self.0 & !(0xffffu64 << bits::ACKS_POS) | (n as u64) << bits::ACKS_POS)
    }
}

/// A decoded pointer-store entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PtrEntry(pub u64);

impl PtrEntry {
    /// Creates an entry for `node` linking to `next`.
    pub fn new(node: NodeId, next: u16) -> Self {
        PtrEntry(((node.0 as u64) << bits::ENODE_POS) | ((next as u64) << bits::ENEXT_POS))
    }

    /// The sharer this entry records.
    pub fn node(self) -> NodeId {
        NodeId((self.0 >> bits::ENODE_POS) as u16)
    }

    /// Next entry index (0 = end).
    pub fn next(self) -> u16 {
        (self.0 >> bits::ENEXT_POS) as u16
    }

    /// Replaces the next link.
    pub fn with_next(self, next: u16) -> Self {
        PtrEntry(self.0 & !(0xffffu64 << bits::ENEXT_POS) | (next as u64) << bits::ENEXT_POS)
    }
}

/// Directory accessor over a node's protocol memory. All state lives in the
/// byte-level [`ProtoMem`], so the native (oracle) protocol and the
/// PP-emulated protocol observe and mutate identical structures.
#[derive(Debug)]
pub struct Directory<'m> {
    mem: &'m mut ProtoMem,
}

impl<'m> Directory<'m> {
    /// Wraps a node's protocol memory.
    pub fn new(mem: &'m mut ProtoMem) -> Self {
        Directory { mem }
    }

    /// Initializes the pointer-store free list with `capacity` entries
    /// (indices `1..=capacity`). Call once per node at machine build time.
    pub fn init_free_list(mem: &mut ProtoMem, capacity: u16) {
        for idx in 1..capacity {
            mem.store64(entry_addr(idx), PtrEntry::new(NodeId(0), idx + 1).0);
        }
        if capacity >= 1 {
            mem.store64(entry_addr(capacity), PtrEntry::new(NodeId(0), 0).0);
            mem.store64(FREE_HEAD_ADDR, 1);
        } else {
            mem.store64(FREE_HEAD_ADDR, 0);
        }
    }

    /// Loads the header at protocol-memory address `diraddr`.
    pub fn header(&self, diraddr: u64) -> DirHeader {
        DirHeader(self.mem.load64(diraddr))
    }

    /// Stores the header at protocol-memory address `diraddr`.
    pub fn set_header(&mut self, diraddr: u64, h: DirHeader) {
        self.mem.store64(diraddr, h.0);
    }

    /// Loads pointer-store entry `idx`.
    pub fn entry(&self, idx: u16) -> PtrEntry {
        PtrEntry(self.mem.load64(entry_addr(idx)))
    }

    /// Stores pointer-store entry `idx`.
    pub fn set_entry(&mut self, idx: u16, e: PtrEntry) {
        self.mem.store64(entry_addr(idx), e.0);
    }

    /// Pops a free entry, or `None` if the store is exhausted.
    pub fn alloc_entry(&mut self) -> Option<u16> {
        let head = self.mem.load64(FREE_HEAD_ADDR) as u16;
        if head == 0 {
            return None;
        }
        let e = self.entry(head);
        self.mem.store64(FREE_HEAD_ADDR, e.next() as u64);
        Some(head)
    }

    /// Returns an entry to the free list.
    pub fn free_entry(&mut self, idx: u16) {
        let head = self.mem.load64(FREE_HEAD_ADDR) as u16;
        self.set_entry(idx, PtrEntry::new(NodeId(0), head));
        self.mem.store64(FREE_HEAD_ADDR, idx as u64);
    }

    /// Collects the sharer list of a header (for tests and the oracle).
    pub fn sharers(&self, diraddr: u64) -> Vec<NodeId> {
        let mut out = Vec::new();
        let mut idx = self.header(diraddr).head();
        let mut guard = 0u32;
        while idx != 0 {
            let e = self.entry(idx);
            out.push(e.node());
            idx = e.next();
            guard += 1;
            assert!(guard <= 0x1_0000, "sharer list cycle at {diraddr:#x}");
        }
        out
    }

    /// Number of free pointer-store entries (walks the free list; tests).
    pub fn free_entries(&self) -> usize {
        let mut n = 0;
        let mut idx = self.mem.load64(FREE_HEAD_ADDR) as u16;
        while idx != 0 {
            n += 1;
            idx = self.entry(idx).next();
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_fields_round_trip() {
        let h = DirHeader::default()
            .with_dirty(true)
            .with_pending(true)
            .with_local(true)
            .with_owner(NodeId(513))
            .with_head(77)
            .with_acks(9);
        assert!(h.dirty() && h.pending() && h.local());
        assert_eq!(h.owner(), NodeId(513));
        assert_eq!(h.head(), 77);
        assert_eq!(h.acks(), 9);
        let h = h.with_dirty(false).with_acks(0);
        assert!(!h.dirty());
        assert_eq!(h.acks(), 0);
        assert_eq!(
            h.owner(),
            NodeId(513),
            "clearing bits must not clobber fields"
        );
    }

    #[test]
    fn entry_fields_round_trip() {
        let e = PtrEntry::new(NodeId(42), 999);
        assert_eq!(e.node(), NodeId(42));
        assert_eq!(e.next(), 999);
        assert_eq!(e.with_next(0).next(), 0);
        assert_eq!(e.with_next(0).node(), NodeId(42));
    }

    #[test]
    fn free_list_alloc_and_free() {
        let mut mem = ProtoMem::new();
        Directory::init_free_list(&mut mem, 4);
        let mut d = Directory::new(&mut mem);
        assert_eq!(d.free_entries(), 4);
        let a = d.alloc_entry().unwrap();
        let b = d.alloc_entry().unwrap();
        assert_ne!(a, b);
        assert_eq!(d.free_entries(), 2);
        d.free_entry(a);
        assert_eq!(d.free_entries(), 3);
        let c = d.alloc_entry().unwrap();
        assert_eq!(c, a, "free list is LIFO");
        // Exhaust.
        assert!(d.alloc_entry().is_some());
        assert!(d.alloc_entry().is_some());
        assert!(d.alloc_entry().is_none());
    }

    #[test]
    fn sharer_list_walk() {
        let mut mem = ProtoMem::new();
        Directory::init_free_list(&mut mem, 8);
        let mut d = Directory::new(&mut mem);
        let da = dir_addr(Addr::new(0x8000));
        let e1 = d.alloc_entry().unwrap();
        let e2 = d.alloc_entry().unwrap();
        d.set_entry(e2, PtrEntry::new(NodeId(5), 0));
        d.set_entry(e1, PtrEntry::new(NodeId(3), e2));
        d.set_header(da, DirHeader::default().with_head(e1));
        assert_eq!(d.sharers(da), vec![NodeId(3), NodeId(5)]);
    }

    #[test]
    fn dir_addr_distinct_per_line() {
        let a = dir_addr(Addr::new(0));
        let b = dir_addr(Addr::new(128));
        assert_eq!(b - a, 8);
        assert!(a >= DIR_BASE);
    }

    #[test]
    fn mdc_geometry_headers_per_line() {
        // One 128-byte MDC line of headers covers 16 headers = 2 KB of data
        // (paper §5.2).
        let first = dir_addr(Addr::new(0));
        let last_same_mdc_line = dir_addr(Addr::new(15 * 128));
        assert_eq!(first / 128, last_same_mdc_line / 128);
        let next = dir_addr(Addr::new(16 * 128));
        assert_ne!(first / 128, next / 128);
    }
}
