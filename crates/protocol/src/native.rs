//! The native (oracle) protocol implementation.
//!
//! This is the dynamic-pointer-allocation coherence protocol expressed
//! directly in Rust over the same byte-level directory structures the PP
//! handlers use. It serves three roles:
//!
//! 1. the "instantaneous oracle" directory of the **ideal machine**
//!    (paper §3.1) — protocol operations in zero time;
//! 2. the protocol engine of the fast **table-driven FLASH** mode, which
//!    charges occupancy from [`crate::cost::CostTable`];
//! 3. the reference against which the **emulated PP handlers** are
//!    differentially tested (same inputs ⇒ same directory mutations and
//!    same outgoing messages).
//!
//! Invalidation acknowledgements are collected at the home node, which
//! keeps the line `PENDING` (NACKing conflicting requests) until the count
//! drains; see DESIGN.md for the list of protocol simplifications.

use crate::cost::CostTable;
use crate::dir::{DirHeader, Directory, PtrEntry};
use crate::fields::aux;
use crate::mem::ProtoMem;
use crate::msg::{InMsg, Msg, MsgType, ProcMsg};
use flash_engine::{Addr, NodeId};

/// An externally visible action of a protocol handler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outgoing {
    /// A message to another node (or a loopback to this node).
    Net(Msg),
    /// A message to the local processor or I/O subsystem.
    Proc(ProcMsg),
    /// Read a 128-byte line from local memory into a data buffer.
    MemRead(Addr),
    /// Write the transaction's data buffer to local memory.
    MemWrite(Addr),
}

/// What [`handle`] did, for statistics and the table-driven cost mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NativeResult {
    /// Name of the PP handler the jump table would have dispatched
    /// (matching the assembly entry symbol).
    pub handler: &'static str,
    /// Estimated FLASH PP occupancy in cycles (from [`CostTable`]).
    pub cost: u64,
    /// Number of invalidations this handler sent.
    pub invals: u32,
}

/// Executes the protocol handler for `msg` against the node's protocol
/// memory, appending actions to `out`.
///
/// The function is deterministic and synchronous: timing is entirely the
/// caller's concern.
pub fn handle(
    msg: &InMsg,
    mem: &mut ProtoMem,
    costs: &CostTable,
    out: &mut Vec<Outgoing>,
) -> NativeResult {
    let mut ctx = Ctx {
        dir: Directory::new(mem),
        costs,
        out,
        msg,
    };
    ctx.dispatch()
}

struct Ctx<'a> {
    dir: Directory<'a>,
    costs: &'a CostTable,
    out: &'a mut Vec<Outgoing>,
    msg: &'a InMsg,
}

impl Ctx<'_> {
    fn dispatch(&mut self) -> NativeResult {
        let local = self.msg.home == self.msg.self_node;
        match (self.msg.mtype, local) {
            (MsgType::PiGet, true) => self.pi_get_local(),
            (MsgType::PiGet, false) => self.forward_request(MsgType::NGet, "pi_get_remote"),
            (MsgType::PiGetX, true) => self.pi_getx_local(),
            (MsgType::PiGetX, false) => self.forward_request(MsgType::NGetX, "pi_getx_remote"),
            (MsgType::PiUpgrade, true) => self.pi_upgrade_local(),
            (MsgType::PiUpgrade, false) => {
                self.forward_request(MsgType::NUpgrade, "pi_upgrade_remote")
            }
            (MsgType::PiWriteback, true) => self.pi_wb_local(),
            (MsgType::PiWriteback, false) => self.forward_data(MsgType::NWriteback, "pi_wb_remote"),
            (MsgType::PiRplHint, true) => self.pi_hint_local(),
            (MsgType::PiRplHint, false) => self.forward_nodata(MsgType::NRplHint, "pi_hint_remote"),
            (MsgType::PiIntervReply, _) => self.pi_interv_reply(),
            (MsgType::PiIntervMiss, _) => self.pi_interv_miss(),
            (MsgType::IoDmaWrite, _) => self.io_dma_write(),
            (MsgType::IoDmaRead, _) => self.io_dma_read(),
            (MsgType::NGet, _) => self.ni_get(),
            (MsgType::NGetX, _) => self.ni_getx(),
            (MsgType::NUpgrade, _) => self.ni_upgrade(),
            (MsgType::NFwdGet, _) => self.ni_fwd(MsgType::PIntervGet, "ni_fwd_get"),
            (MsgType::NFwdGetX, _) => self.ni_fwd(MsgType::PIntervGetX, "ni_fwd_getx"),
            (MsgType::NInval, _) => self.ni_inval(),
            (MsgType::NInvalAck, _) => self.ni_inval_ack(),
            (MsgType::NPut, _) => self.ni_reply(MsgType::PPut, true, "ni_put"),
            (MsgType::NPutX, _) => self.ni_reply(MsgType::PPutX, true, "ni_putx"),
            (MsgType::NUpgAck, _) => self.ni_reply(MsgType::PUpgAck, false, "ni_upgack"),
            (MsgType::NNack, _) => self.ni_nack(),
            (MsgType::NSwb, _) => self.ni_swb(),
            (MsgType::NOwnx, _) => self.ni_ownx(),
            (MsgType::NWriteback, _) => self.ni_wb(),
            (MsgType::NRplHint, _) => self.ni_hint(),
            (MsgType::NIntervMiss, _) => self.ni_interv_miss(),
            (t, _) => unreachable!("outgoing-only message type {t:?} dispatched"),
        }
    }

    // ---- small helpers -------------------------------------------------

    fn me(&self) -> NodeId {
        self.msg.self_node
    }

    fn diraddr(&self) -> u64 {
        self.msg.diraddr
    }

    fn send(&mut self, mtype: MsgType, dst: NodeId, aux: u64, with_data: bool) {
        self.out.push(Outgoing::Net(Msg {
            mtype,
            src: self.me(),
            dst,
            addr: self.msg.addr,
            aux,
            with_data,
        }));
    }

    fn send_proc(&mut self, mtype: MsgType, aux: u64, with_data: bool) {
        self.out.push(Outgoing::Proc(ProcMsg {
            mtype,
            addr: self.msg.addr,
            aux,
            with_data,
        }));
    }

    /// Issues the memory read for a data reply unless the inbox already
    /// issued it speculatively.
    fn read_memory_unless_spec(&mut self) {
        if !self.msg.spec {
            self.out.push(Outgoing::MemRead(self.msg.addr));
        }
    }

    fn result(&self, handler: &'static str, cost: u64, invals: u32) -> NativeResult {
        NativeResult {
            handler,
            cost: cost + self.costs.per_inval * invals as u64,
            invals,
        }
    }

    /// Requester-side forwarding of a processor request to the home node.
    fn forward_request(&mut self, nt: MsgType, handler: &'static str) -> NativeResult {
        let a = aux::pack(self.me(), nt, self.msg.home);
        self.send(nt, self.msg.home, a, false);
        self.result(handler, self.costs.forward_to_home, 0)
    }

    fn forward_data(&mut self, nt: MsgType, handler: &'static str) -> NativeResult {
        let a = aux::pack(self.me(), nt, self.msg.home);
        self.send(nt, self.msg.home, a, true);
        self.result(handler, self.costs.forward_to_home, 0)
    }

    fn forward_nodata(&mut self, nt: MsgType, handler: &'static str) -> NativeResult {
        let a = aux::pack(self.me(), nt, self.msg.home);
        self.send(nt, self.msg.home, a, false);
        self.result(handler, self.costs.forward_to_home, 0)
    }

    /// Invalidates every listed sharer except `skip`, freeing the list.
    /// Returns the number of network invalidations sent.
    fn inval_sharers(&mut self, h: DirHeader, skip: Option<NodeId>, ack_home: NodeId) -> u32 {
        let mut count = 0u32;
        let mut idx = h.head();
        let a = aux::pack(ack_home, MsgType::NInval, ack_home);
        while idx != 0 {
            let e = self.dir.entry(idx);
            let next = e.next();
            if Some(e.node()) != skip {
                self.out.push(Outgoing::Net(Msg {
                    mtype: MsgType::NInval,
                    src: self.me(),
                    dst: e.node(),
                    addr: self.msg.addr,
                    aux: a,
                    with_data: false,
                }));
                count += 1;
            }
            self.dir.free_entry(idx);
            idx = next;
        }
        count
    }

    /// Adds `node` to the sharer list. On pointer-store exhaustion the
    /// caller falls back to an exclusive grant (`false` return).
    fn add_sharer(&mut self, h: &mut DirHeader, node: NodeId) -> bool {
        match self.dir.alloc_entry() {
            Some(idx) => {
                self.dir.set_entry(idx, PtrEntry::new(node, h.head()));
                *h = h.with_head(idx);
                true
            }
            None => false,
        }
    }

    /// Removes `node` from the sharer list if present. Returns
    /// `(found, nodes_walked)`.
    fn remove_sharer(&mut self, h: &mut DirHeader, node: NodeId) -> (bool, u32) {
        let mut walked = 0;
        let mut prev: Option<u16> = None;
        let mut idx = h.head();
        while idx != 0 {
            let e = self.dir.entry(idx);
            walked += 1;
            if e.node() == node {
                match prev {
                    None => *h = h.with_head(e.next()),
                    Some(p) => {
                        let pe = self.dir.entry(p);
                        self.dir.set_entry(p, pe.with_next(e.next()));
                    }
                }
                self.dir.free_entry(idx);
                return (true, walked);
            }
            prev = Some(idx);
            idx = e.next();
        }
        (false, walked)
    }

    // ---- PI handlers (home == self unless noted) ------------------------

    fn pi_get_local(&mut self) -> NativeResult {
        let da = self.diraddr();
        let h = self.dir.header(da);
        if h.pending() {
            self.send_proc(MsgType::PNackRetry, 0, false);
            return self.result("pi_get_local", self.costs.nack_retry, 0);
        }
        let mut h = h;
        if h.dirty() {
            if h.owner() == self.me() {
                // The local processor is re-requesting a line recorded as
                // dirty here: its copy is gone; self-repair.
                h = h.with_dirty(false);
            } else {
                self.dir.set_header(da, h.with_pending(true));
                let a = aux::pack(self.me(), MsgType::NGet, self.me());
                self.send(MsgType::NFwdGet, h.owner(), a, false);
                return self.result("pi_get_local", self.costs.forward_to_dirty, 0);
            }
        }
        // Clean: serve from memory.
        self.dir.set_header(da, h.with_local(true));
        self.read_memory_unless_spec();
        self.send_proc(MsgType::PPut, 0, true);
        self.result("pi_get_local", self.costs.read_from_memory, 0)
    }

    fn pi_getx_local(&mut self) -> NativeResult {
        let da = self.diraddr();
        let h = self.dir.header(da);
        if h.pending() {
            self.send_proc(MsgType::PNackRetry, 0, false);
            return self.result("pi_getx_local", self.costs.nack_retry, 0);
        }
        let mut h = h;
        if h.dirty() {
            if h.owner() == self.me() {
                h = h.with_dirty(false); // self-repair, as in pi_get_local
            } else {
                self.dir.set_header(da, h.with_pending(true));
                let a = aux::pack(self.me(), MsgType::NGetX, self.me());
                self.send(MsgType::NFwdGetX, h.owner(), a, false);
                return self.result("pi_getx_local", self.costs.forward_to_dirty, 0);
            }
        }
        let invals = self.inval_sharers(h, Some(self.me()), self.me());
        h = h
            .with_head(0)
            .with_dirty(true)
            .with_owner(self.me())
            .with_local(true)
            .with_acks(invals as u16)
            .with_pending(invals > 0);
        self.dir.set_header(da, h);
        self.read_memory_unless_spec();
        self.send_proc(MsgType::PPutX, 0, true);
        self.result("pi_getx_local", self.costs.write_from_memory, invals)
    }

    fn pi_upgrade_local(&mut self) -> NativeResult {
        let da = self.diraddr();
        let h = self.dir.header(da);
        if h.pending() {
            self.send_proc(MsgType::PNackRetry, 0, false);
            return self.result("pi_upgrade_local", self.costs.nack_retry, 0);
        }
        let mut h = h;
        if h.dirty() {
            if h.owner() == self.me() {
                // Self-repair, as in pi_get_local: the local processor is
                // upgrading a line recorded dirty here, so its exclusive
                // copy is gone; fall through to the data-grant path.
                h = h.with_dirty(false);
                self.dir.set_header(da, h);
            } else {
                // Our shared copy was stolen and the line went dirty
                // elsewhere: the upgrade now needs data; treat as a write
                // miss.
                self.dir.set_header(da, h.with_pending(true));
                let a = aux::pack(self.me(), MsgType::NGetX, self.me());
                self.send(MsgType::NFwdGetX, h.owner(), a, false);
                return self.result("pi_upgrade_local", self.costs.forward_to_dirty, 0);
            }
        }
        if !h.local() {
            // Copy invalidated while the upgrade was in flight: needs data.
            let invals = self.inval_sharers(h, Some(self.me()), self.me());
            h = h
                .with_head(0)
                .with_dirty(true)
                .with_owner(self.me())
                .with_local(true)
                .with_acks(invals as u16)
                .with_pending(invals > 0);
            self.dir.set_header(da, h);
            self.out.push(Outgoing::MemRead(self.msg.addr));
            self.send_proc(MsgType::PPutX, 0, true);
            return self.result("pi_upgrade_local", self.costs.write_from_memory, invals);
        }
        let invals = self.inval_sharers(h, Some(self.me()), self.me());
        h = h
            .with_head(0)
            .with_dirty(true)
            .with_owner(self.me())
            .with_local(true)
            .with_acks(invals as u16)
            .with_pending(invals > 0);
        self.dir.set_header(da, h);
        self.send_proc(MsgType::PUpgAck, 0, false);
        self.result("pi_upgrade_local", self.costs.write_from_memory, invals)
    }

    fn pi_wb_local(&mut self) -> NativeResult {
        let da = self.diraddr();
        let h = self.dir.header(da);
        self.out.push(Outgoing::MemWrite(self.msg.addr));
        // A pending forward racing with this writeback resolves via the
        // intervention-miss NACK; clearing pending here lets the retry win.
        self.dir.set_header(
            da,
            h.with_dirty(false).with_local(false).with_pending(false),
        );
        self.result("pi_wb_local", self.costs.local_writeback, 0)
    }

    fn pi_hint_local(&mut self) -> NativeResult {
        let da = self.diraddr();
        let h = self.dir.header(da);
        self.dir.set_header(da, h.with_local(false));
        self.result("pi_hint_local", self.costs.local_hint, 0)
    }

    fn pi_interv_reply(&mut self) -> NativeResult {
        let a = self.msg.aux;
        let req = aux::requester(a);
        let orig = aux::orig_type(a);
        let home = aux::home(a);
        if orig == MsgType::NGet {
            if home == self.me() {
                // Dirty in the home's own cache: share it.
                let da = self.diraddr();
                let h0 = self.dir.header(da);
                // Planted bug (`planted-bugs`, test-only): drop the
                // stale-local-reply NACK guard, re-introducing the
                // historical race where a stale intervention reply
                // rewrites an already-resolved header. The translated PP
                // backend keeps the guard, so the oracle flags the
                // divergence.
                if !h0.pending() && !cfg!(feature = "planted-bugs") {
                    // Stale local intervention reply: a local writeback
                    // raced the deferred intervention and already
                    // resolved this transaction (clearing PENDING and
                    // writing memory), so the copy the intervention
                    // consumed was a clean re-fetch. Granting now would
                    // rewrite a header that may already record a newer
                    // owner. NACK the requester so it retries against
                    // the current directory state. PENDING is the only
                    // sound discriminator: while it is set no new request
                    // is admitted and proc->MAGIC delivery is FIFO, so a
                    // still-pending header can only belong to this very
                    // intervention. DIRTY/LOCAL may legitimately be stale
                    // (a racing replacement hint clears LOCAL without
                    // resolving the transaction); gating on them livelocks
                    // the requester against a forever-pending line.
                    self.send(MsgType::NNack, req, a, false);
                    return self.result("pi_interv_reply", self.costs.nack_retry, 0);
                }
                let mut h = h0.with_dirty(false).with_pending(false).with_local(true);
                self.out.push(Outgoing::MemWrite(self.msg.addr));
                if self.add_sharer(&mut h, req) {
                    self.dir.set_header(da, h);
                    self.send(MsgType::NPut, req, a, true);
                } else {
                    // Pointer store exhausted: grant exclusive instead.
                    let h = h.with_dirty(true).with_owner(req).with_local(false);
                    self.dir.set_header(da, h);
                    self.send_proc(MsgType::PInval, 0, false);
                    self.send(MsgType::NPutX, req, a, true);
                }
            } else {
                self.send(MsgType::NPut, req, a, true);
                self.send(MsgType::NSwb, home, a, true);
            }
        } else {
            // NGetX: ownership moves to the requester.
            if home == self.me() {
                let da = self.diraddr();
                let h0 = self.dir.header(da);
                if !h0.pending() && !cfg!(feature = "planted-bugs") {
                    // Same stale-local-reply race as the NGet branch
                    // (and the same planted-bug gate as above).
                    self.send(MsgType::NNack, req, a, false);
                    return self.result("pi_interv_reply", self.costs.nack_retry, 0);
                }
                let h = h0.with_owner(req).with_local(false).with_pending(false);
                self.dir.set_header(da, h);
                self.send(MsgType::NPutX, req, a, true);
            } else {
                self.send(MsgType::NPutX, req, a, true);
                self.send(MsgType::NOwnx, home, a, false);
            }
        }
        self.result("pi_interv_reply", self.costs.retrieve_from_cache, 0)
    }

    fn pi_interv_miss(&mut self) -> NativeResult {
        // The owner no longer holds the line (its writeback is in flight,
        // or a stale intervention consumed the copy). NACK the requester
        // and tell the home to abandon the pending transaction.
        let a = self.msg.aux;
        self.send(MsgType::NNack, aux::requester(a), a, false);
        self.send(MsgType::NIntervMiss, aux::home(a), a, false);
        self.result("pi_interv_miss", self.costs.nack_retry, 0)
    }

    fn ni_interv_miss(&mut self) -> NativeResult {
        let da = self.diraddr();
        let h = self.dir.header(da);
        if h.pending() && h.dirty() && h.owner() == self.msg.src {
            // Abandon: the recorded owner has no copy; serve future
            // retries from memory.
            self.dir
                .set_header(da, h.with_pending(false).with_dirty(false));
        }
        self.result("ni_interv_miss", self.costs.nack_retry, 0)
    }

    fn io_dma_write(&mut self) -> NativeResult {
        let da = self.diraddr();
        let mut h = self.dir.header(da);
        let mut invals = self.inval_sharers(h, None, self.me());
        h = h.with_head(0);
        if h.dirty() && h.owner() != self.me() {
            // Drop the stale exclusive copy; DMA data supersedes it.
            let a = aux::pack(self.me(), MsgType::NInval, self.me());
            self.send(MsgType::NInval, h.owner(), a, false);
            invals += 1;
        }
        if h.local() {
            self.send_proc(MsgType::PInval, 0, false);
        }
        h = h
            .with_dirty(false)
            .with_local(false)
            .with_acks(invals as u16)
            .with_pending(invals > 0);
        self.dir.set_header(da, h);
        self.out.push(Outgoing::MemWrite(self.msg.addr));
        self.result("io_dma_write", self.costs.write_from_memory, invals)
    }

    fn io_dma_read(&mut self) -> NativeResult {
        self.out.push(Outgoing::MemRead(self.msg.addr));
        self.send_proc(MsgType::PIoData, 0, true);
        self.result("io_dma_read", self.costs.read_from_memory, 0)
    }

    // ---- NI handlers -----------------------------------------------------

    fn ni_get(&mut self) -> NativeResult {
        let da = self.diraddr();
        let h = self.dir.header(da);
        let a = self.msg.aux;
        let req = aux::requester(a);
        if h.pending() {
            self.send(MsgType::NNack, req, a, false);
            return self.result("ni_get", self.costs.nack_retry, 0);
        }
        let mut h = h;
        if h.dirty() {
            if h.owner() == req {
                // The requester is the recorded owner yet is requesting the
                // line: it no longer holds a copy (its writeback is in
                // flight, or a raced intervention consumed it). Self-repair
                // by serving from memory; a late writeback is dropped by
                // the owner check in ni_wb.
                h = h.with_dirty(false);
                self.dir.set_header(da, h);
            } else {
                self.dir.set_header(da, h.with_pending(true));
                if h.owner() == self.me() {
                    self.send_proc(
                        MsgType::PIntervGet,
                        aux::pack(req, MsgType::NGet, self.me()),
                        false,
                    );
                } else {
                    self.send(
                        MsgType::NFwdGet,
                        h.owner(),
                        aux::pack(req, MsgType::NGet, self.me()),
                        false,
                    );
                }
                return self.result("ni_get", self.costs.forward_to_dirty, 0);
            }
        }
        if req == self.me() {
            // Loopback retry of a local miss.
            h = h.with_local(true);
            self.dir.set_header(da, h);
            self.read_memory_unless_spec();
            self.send(MsgType::NPut, req, a, true);
            return self.result("ni_get", self.costs.read_from_memory, 0);
        }
        if self.add_sharer(&mut h, req) {
            self.dir.set_header(da, h);
            self.read_memory_unless_spec();
            self.send(MsgType::NPut, req, a, true);
            self.result("ni_get", self.costs.read_from_memory, 0)
        } else {
            // Pointer store exhausted: reclaim this line's own list by
            // invalidating its sharers and granting the requester an
            // exclusive copy.
            let invals = self.inval_sharers(h, Some(req), self.me());
            let mut h = h
                .with_head(0)
                .with_dirty(true)
                .with_owner(req)
                .with_acks(invals as u16);
            if h.local() {
                self.send_proc(MsgType::PInval, 0, false);
                h = h.with_local(false);
            }
            h = h.with_pending(invals > 0);
            self.dir.set_header(da, h);
            self.read_memory_unless_spec();
            self.send(MsgType::NPutX, req, a, true);
            self.result("ni_get", self.costs.read_from_memory, invals)
        }
    }

    fn ni_getx(&mut self) -> NativeResult {
        let da = self.diraddr();
        let h = self.dir.header(da);
        let a = self.msg.aux;
        let req = aux::requester(a);
        if h.pending() {
            self.send(MsgType::NNack, req, a, false);
            return self.result("ni_getx", self.costs.nack_retry, 0);
        }
        let mut h = h;
        if h.dirty() {
            if h.owner() == req {
                // Self-repair: the recorded owner is re-requesting.
                h = h.with_dirty(false);
                self.dir.set_header(da, h);
            } else {
                self.dir.set_header(da, h.with_pending(true));
                if h.owner() == self.me() {
                    self.send_proc(
                        MsgType::PIntervGetX,
                        aux::pack(req, MsgType::NGetX, self.me()),
                        false,
                    );
                } else {
                    self.send(
                        MsgType::NFwdGetX,
                        h.owner(),
                        aux::pack(req, MsgType::NGetX, self.me()),
                        false,
                    );
                }
                return self.result("ni_getx", self.costs.forward_to_dirty, 0);
            }
        }
        let invals = self.inval_sharers(h, Some(req), self.me());
        if h.local() && req != self.me() {
            self.send_proc(MsgType::PInval, 0, false);
        }
        h = h
            .with_head(0)
            .with_dirty(true)
            .with_owner(req)
            .with_local(req == self.me())
            .with_acks(invals as u16)
            .with_pending(invals > 0);
        self.dir.set_header(da, h);
        self.read_memory_unless_spec();
        self.send(MsgType::NPutX, req, a, true);
        self.result("ni_getx", self.costs.write_from_memory, invals)
    }

    fn ni_upgrade(&mut self) -> NativeResult {
        let da = self.diraddr();
        let h = self.dir.header(da);
        let a = self.msg.aux;
        let req = aux::requester(a);
        if h.pending() {
            self.send(MsgType::NNack, req, a, false);
            return self.result("ni_upgrade", self.costs.nack_retry, 0);
        }
        let mut h = h;
        if h.dirty() {
            if h.owner() == req {
                // Self-repair: the recorded owner is re-requesting.
                h = h.with_dirty(false);
                self.dir.set_header(da, h);
            } else {
                self.dir.set_header(da, h.with_pending(true));
                if h.owner() == self.me() {
                    self.send_proc(
                        MsgType::PIntervGetX,
                        aux::pack(req, MsgType::NGetX, self.me()),
                        false,
                    );
                } else {
                    self.send(
                        MsgType::NFwdGetX,
                        h.owner(),
                        aux::pack(req, MsgType::NGetX, self.me()),
                        false,
                    );
                }
                return self.result("ni_upgrade", self.costs.forward_to_dirty, 0);
            }
        }
        // One walk, as the PP handler does it: free every entry, count
        // invalidations for everyone but the requester (whose possible
        // duplicate entries must not be invalidated under its own feet).
        let found = self.dir.sharers(da).contains(&req);
        let invals = self.inval_sharers(h, Some(req), self.me());
        if h.local() {
            self.send_proc(MsgType::PInval, 0, false);
        }
        h = h
            .with_head(0)
            .with_dirty(true)
            .with_owner(req)
            .with_local(false)
            .with_acks(invals as u16)
            .with_pending(invals > 0);
        self.dir.set_header(da, h);
        if found {
            self.send(MsgType::NUpgAck, req, a, false);
        } else {
            // The requester's copy was already invalidated: send data.
            self.out.push(Outgoing::MemRead(self.msg.addr));
            self.send(MsgType::NPutX, req, a, true);
        }
        self.result("ni_upgrade", self.costs.write_from_memory, invals)
    }

    fn ni_fwd(&mut self, interv: MsgType, handler: &'static str) -> NativeResult {
        self.send_proc(interv, self.msg.aux, false);
        self.result(handler, self.costs.reply_to_processor, 0)
    }

    fn ni_inval(&mut self) -> NativeResult {
        let a = self.msg.aux;
        self.send_proc(MsgType::PInval, 0, false);
        self.send(MsgType::NInvalAck, aux::home(a), a, false);
        self.result("ni_inval", self.costs.inval_receive, 0)
    }

    fn ni_inval_ack(&mut self) -> NativeResult {
        let da = self.diraddr();
        let h = self.dir.header(da);
        if h.acks() > 0 {
            let n = h.acks() - 1;
            let h = h.with_acks(n).with_pending(n > 0);
            self.dir.set_header(da, h);
        }
        self.result("ni_inval_ack", self.costs.inval_ack, 0)
    }

    fn ni_reply(&mut self, ptype: MsgType, with_data: bool, handler: &'static str) -> NativeResult {
        self.send_proc(ptype, self.msg.aux, with_data);
        self.result(handler, self.costs.reply_to_processor, 0)
    }

    fn ni_nack(&mut self) -> NativeResult {
        // Retry the original request against the home node.
        let a = self.msg.aux;
        let orig = aux::orig_type(a);
        let home = aux::home(a);
        self.send(orig, home, a, false);
        self.result("ni_nack", self.costs.nack_retry, 0)
    }

    fn ni_swb(&mut self) -> NativeResult {
        let da = self.diraddr();
        let a = self.msg.aux;
        let req = aux::requester(a);
        let old_owner = self.msg.src;
        let h0 = self.dir.header(da);
        if !(h0.pending() && h0.dirty() && h0.owner() == old_owner) {
            // Stale sharing writeback (the transaction was abandoned or
            // superseded): drop the data and invalidate the rogue copies.
            let ia = aux::pack(self.me(), MsgType::NInval, self.me());
            for n in [req, old_owner] {
                if n == self.me() {
                    self.send_proc(MsgType::PInval, 0, false);
                } else {
                    self.send(MsgType::NInval, n, ia, false);
                }
            }
            return self.result("ni_swb", self.costs.swb_receive, 0);
        }
        let mut h = h0.with_dirty(false).with_pending(false);
        self.out.push(Outgoing::MemWrite(self.msg.addr));
        for n in [req, old_owner] {
            if n == self.me() {
                h = h.with_local(true);
            } else if !self.add_sharer(&mut h, n) {
                // Exhausted: drop this copy with a fire-and-forget inval.
                let ia = aux::pack(self.me(), MsgType::NInval, self.me());
                self.send(MsgType::NInval, n, ia, false);
            }
        }
        self.dir.set_header(da, h);
        self.result("ni_swb", self.costs.swb_receive, 0)
    }

    fn ni_ownx(&mut self) -> NativeResult {
        let da = self.diraddr();
        let a = self.msg.aux;
        let req = aux::requester(a);
        let h0 = self.dir.header(da);
        if !(h0.pending() && h0.dirty() && h0.owner() == self.msg.src) {
            // Stale ownership transfer: invalidate the rogue exclusive
            // copy the old owner handed out.
            if req == self.me() {
                self.send_proc(MsgType::PInval, 0, false);
            } else {
                let ia = aux::pack(self.me(), MsgType::NInval, self.me());
                self.send(MsgType::NInval, req, ia, false);
            }
            return self.result("ni_ownx", self.costs.swb_receive, 0);
        }
        let h = h0
            .with_dirty(true)
            .with_owner(req)
            .with_local(req == self.me())
            .with_pending(false);
        self.dir.set_header(da, h);
        self.result("ni_ownx", self.costs.swb_receive, 0)
    }

    fn ni_wb(&mut self) -> NativeResult {
        let da = self.diraddr();
        let h = self.dir.header(da);
        if h.dirty() && h.owner() == self.msg.src {
            self.out.push(Outgoing::MemWrite(self.msg.addr));
            self.dir
                .set_header(da, h.with_dirty(false).with_pending(false));
        }
        // Otherwise ownership already moved on: the data is stale; drop it.
        self.result("ni_wb", self.costs.remote_writeback, 0)
    }

    fn ni_hint(&mut self) -> NativeResult {
        let da = self.diraddr();
        let mut h = self.dir.header(da);
        let (found, walked) = self.remove_sharer(&mut h, self.msg.src);
        if found {
            self.dir.set_header(da, h);
        }
        let cost = if walked <= 1 {
            self.costs.remote_hint_only
        } else {
            self.costs.remote_hint_base + self.costs.remote_hint_per_node * walked as u64
        };
        self.result("ni_hint", cost, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dir::{dir_addr, DEFAULT_PS_CAPACITY};

    fn mk_mem() -> ProtoMem {
        let mut mem = ProtoMem::new();
        Directory::init_free_list(&mut mem, DEFAULT_PS_CAPACITY);
        mem
    }

    fn msg(mtype: MsgType, me: u16, home: u16, addr: u64) -> InMsg {
        InMsg {
            mtype,
            src: NodeId(me),
            addr: Addr::new(addr),
            aux: 0,
            spec: false,
            self_node: NodeId(me),
            home: NodeId(home),
            diraddr: dir_addr(Addr::new(addr)),
            with_data: mtype.carries_data(),
        }
    }

    fn run(m: &InMsg, mem: &mut ProtoMem) -> (Vec<Outgoing>, NativeResult) {
        let mut out = Vec::new();
        let costs = CostTable::paper();
        let r = handle(m, mem, &costs, &mut out);
        (out, r)
    }

    #[test]
    fn local_read_miss_clean() {
        let mut mem = mk_mem();
        let m = msg(MsgType::PiGet, 0, 0, 0x1000);
        let (out, r) = run(&m, &mut mem);
        assert_eq!(r.handler, "pi_get_local");
        assert_eq!(r.cost, 11);
        assert!(matches!(out[0], Outgoing::MemRead(a) if a == Addr::new(0x1000)));
        assert!(matches!(
            out[1],
            Outgoing::Proc(p) if p.mtype == MsgType::PPut && p.with_data
        ));
        let mut mem2 = mem.clone();
        let d = Directory::new(&mut mem2);
        assert!(d.header(dir_addr(Addr::new(0x1000))).local());
    }

    #[test]
    fn local_read_miss_spec_skips_memread() {
        let mut mem = mk_mem();
        let mut m = msg(MsgType::PiGet, 0, 0, 0x1000);
        m.spec = true;
        let (out, _) = run(&m, &mut mem);
        assert!(out.iter().all(|o| !matches!(o, Outgoing::MemRead(_))));
    }

    #[test]
    fn remote_read_forwards_to_home() {
        let mut mem = mk_mem();
        let m = msg(MsgType::PiGet, 1, 3, 0x2000);
        let (out, r) = run(&m, &mut mem);
        assert_eq!(r.cost, 3);
        match out[0] {
            Outgoing::Net(n) => {
                assert_eq!(n.mtype, MsgType::NGet);
                assert_eq!(n.dst, NodeId(3));
                assert_eq!(aux::requester(n.aux), NodeId(1));
                assert_eq!(aux::home(n.aux), NodeId(3));
            }
            ref o => panic!("unexpected {o:?}"),
        }
    }

    #[test]
    fn home_get_clean_adds_sharer_and_replies() {
        let mut mem = mk_mem();
        let mut m = msg(MsgType::NGet, 3, 3, 0x2000);
        m.src = NodeId(1);
        m.aux = aux::pack(NodeId(1), MsgType::NGet, NodeId(3));
        let (out, r) = run(&m, &mut mem);
        assert_eq!(r.handler, "ni_get");
        assert!(out
            .iter()
            .any(|o| matches!(o, Outgoing::Net(n) if n.mtype == MsgType::NPut && n.dst == NodeId(1) && n.with_data)));
        let d = Directory::new(&mut mem);
        assert_eq!(d.sharers(dir_addr(Addr::new(0x2000))), vec![NodeId(1)]);
    }

    #[test]
    fn home_get_dirty_remote_forwards() {
        let mut mem = mk_mem();
        {
            let mut d = Directory::new(&mut mem);
            let da = dir_addr(Addr::new(0x2000));
            d.set_header(
                da,
                DirHeader::default().with_dirty(true).with_owner(NodeId(7)),
            );
        }
        let mut m = msg(MsgType::NGet, 3, 3, 0x2000);
        m.aux = aux::pack(NodeId(1), MsgType::NGet, NodeId(3));
        let (out, r) = run(&m, &mut mem);
        assert_eq!(r.cost, 18);
        match out[0] {
            Outgoing::Net(n) => {
                assert_eq!(n.mtype, MsgType::NFwdGet);
                assert_eq!(n.dst, NodeId(7));
                assert_eq!(aux::requester(n.aux), NodeId(1));
            }
            ref o => panic!("unexpected {o:?}"),
        }
        let d = Directory::new(&mut mem);
        assert!(d.header(dir_addr(Addr::new(0x2000))).pending());
    }

    #[test]
    fn pending_line_nacks() {
        let mut mem = mk_mem();
        {
            let mut d = Directory::new(&mut mem);
            d.set_header(
                dir_addr(Addr::new(0x2000)),
                DirHeader::default().with_pending(true),
            );
        }
        let mut m = msg(MsgType::NGet, 3, 3, 0x2000);
        m.aux = aux::pack(NodeId(1), MsgType::NGet, NodeId(3));
        let (out, _) = run(&m, &mut mem);
        assert!(matches!(
            out[0],
            Outgoing::Net(n) if n.mtype == MsgType::NNack && n.dst == NodeId(1)
        ));
    }

    #[test]
    fn getx_invalidates_sharers_and_collects_acks() {
        let mut mem = mk_mem();
        let da = dir_addr(Addr::new(0x4000));
        // Sharers 1, 2, 4; requester 2 must be skipped.
        {
            let mut d = Directory::new(&mut mem);
            let mut h = DirHeader::default();
            for n in [1u16, 2, 4] {
                let idx = d.alloc_entry().unwrap();
                d.set_entry(idx, PtrEntry::new(NodeId(n), h.head()));
                h = h.with_head(idx);
            }
            d.set_header(da, h);
        }
        let mut m = msg(MsgType::NGetX, 3, 3, 0x4000);
        m.aux = aux::pack(NodeId(2), MsgType::NGetX, NodeId(3));
        let (out, r) = run(&m, &mut mem);
        assert_eq!(r.invals, 2);
        let invals: Vec<NodeId> = out
            .iter()
            .filter_map(|o| match o {
                Outgoing::Net(n) if n.mtype == MsgType::NInval => Some(n.dst),
                _ => None,
            })
            .collect();
        assert_eq!(invals.len(), 2);
        assert!(invals.contains(&NodeId(1)) && invals.contains(&NodeId(4)));
        let d = Directory::new(&mut mem);
        let h = d.header(da);
        assert!(h.dirty() && h.pending());
        assert_eq!(h.owner(), NodeId(2));
        assert_eq!(h.acks(), 2);
        assert_eq!(h.head(), 0);
        // Entries were returned to the free list.
        assert_eq!(d.free_entries(), DEFAULT_PS_CAPACITY as usize);
    }

    #[test]
    fn inval_acks_drain_pending() {
        let mut mem = mk_mem();
        let da = dir_addr(Addr::new(0x4000));
        {
            let mut d = Directory::new(&mut mem);
            d.set_header(da, DirHeader::default().with_pending(true).with_acks(2));
        }
        let m = msg(MsgType::NInvalAck, 3, 3, 0x4000);
        run(&m, &mut mem);
        {
            let d = Directory::new(&mut mem);
            let h = d.header(da);
            assert!(h.pending());
            assert_eq!(h.acks(), 1);
        }
        run(&m, &mut mem);
        let d = Directory::new(&mut mem);
        let h = d.header(da);
        assert!(!h.pending());
        assert_eq!(h.acks(), 0);
    }

    #[test]
    fn writeback_clears_dirty_only_for_current_owner() {
        let mut mem = mk_mem();
        let da = dir_addr(Addr::new(0x5000));
        {
            let mut d = Directory::new(&mut mem);
            d.set_header(
                da,
                DirHeader::default().with_dirty(true).with_owner(NodeId(5)),
            );
        }
        // Stale writeback from node 4: ignored.
        let mut m = msg(MsgType::NWriteback, 3, 3, 0x5000);
        m.src = NodeId(4);
        let (out, _) = run(&m, &mut mem);
        assert!(out.is_empty());
        // Real writeback from node 5.
        m.src = NodeId(5);
        let (out, _) = run(&m, &mut mem);
        assert!(matches!(out[0], Outgoing::MemWrite(_)));
        let d = Directory::new(&mut mem);
        assert!(!d.header(da).dirty());
    }

    #[test]
    fn sharing_writeback_records_both_sharers() {
        let mut mem = mk_mem();
        let da = dir_addr(Addr::new(0x6000));
        {
            let mut d = Directory::new(&mut mem);
            d.set_header(
                da,
                DirHeader::default()
                    .with_dirty(true)
                    .with_owner(NodeId(7))
                    .with_pending(true),
            );
        }
        let mut m = msg(MsgType::NSwb, 3, 3, 0x6000);
        m.src = NodeId(7);
        m.aux = aux::pack(NodeId(1), MsgType::NGet, NodeId(3));
        let (out, _) = run(&m, &mut mem);
        assert!(matches!(out[0], Outgoing::MemWrite(_)));
        let d = Directory::new(&mut mem);
        let h = d.header(da);
        assert!(!h.dirty() && !h.pending());
        let sharers = d.sharers(da);
        assert!(sharers.contains(&NodeId(1)) && sharers.contains(&NodeId(7)));
    }

    #[test]
    fn hint_removes_nth_sharer_with_walk_cost() {
        let mut mem = mk_mem();
        let da = dir_addr(Addr::new(0x7000));
        {
            let mut d = Directory::new(&mut mem);
            let mut h = DirHeader::default();
            for n in [1u16, 2, 4, 5] {
                let idx = d.alloc_entry().unwrap();
                d.set_entry(idx, PtrEntry::new(NodeId(n), h.head()));
                h = h.with_head(idx);
            }
            d.set_header(da, h);
        }
        // List head is 5 (LIFO); removing node 1 walks the full list.
        let mut m = msg(MsgType::NRplHint, 3, 3, 0x7000);
        m.src = NodeId(1);
        let (_, r) = run(&m, &mut mem);
        assert_eq!(r.cost, 23 + 14 * 4);
        let d = Directory::new(&mut mem);
        assert_eq!(d.sharers(da), vec![NodeId(5), NodeId(4), NodeId(2)]);
    }

    #[test]
    fn upgrade_with_valid_copy_gets_ack_without_data() {
        let mut mem = mk_mem();
        let da = dir_addr(Addr::new(0x8000));
        {
            let mut d = Directory::new(&mut mem);
            let mut h = DirHeader::default();
            let idx = d.alloc_entry().unwrap();
            d.set_entry(idx, PtrEntry::new(NodeId(2), 0));
            h = h.with_head(idx);
            d.set_header(da, h);
        }
        let mut m = msg(MsgType::NUpgrade, 3, 3, 0x8000);
        m.aux = aux::pack(NodeId(2), MsgType::NUpgrade, NodeId(3));
        let (out, _) = run(&m, &mut mem);
        assert!(out
            .iter()
            .any(|o| matches!(o, Outgoing::Net(n) if n.mtype == MsgType::NUpgAck && !n.with_data)));
        let d = Directory::new(&mut mem);
        let h = d.header(da);
        assert!(h.dirty());
        assert_eq!(h.owner(), NodeId(2));
    }

    #[test]
    fn upgrade_with_lost_copy_gets_data() {
        let mut mem = mk_mem();
        let mut m = msg(MsgType::NUpgrade, 3, 3, 0x8000);
        m.aux = aux::pack(NodeId(2), MsgType::NUpgrade, NodeId(3));
        let (out, _) = run(&m, &mut mem);
        assert!(out
            .iter()
            .any(|o| matches!(o, Outgoing::Net(n) if n.mtype == MsgType::NPutX && n.with_data)));
    }

    #[test]
    fn interv_reply_at_third_node_sends_put_and_swb() {
        let mut mem = mk_mem();
        let mut m = msg(MsgType::PiIntervReply, 7, 3, 0x6000);
        m.aux = aux::pack(NodeId(1), MsgType::NGet, NodeId(3));
        let (out, r) = run(&m, &mut mem);
        assert_eq!(r.cost, 38);
        assert!(
            matches!(out[0], Outgoing::Net(n) if n.mtype == MsgType::NPut && n.dst == NodeId(1))
        );
        assert!(
            matches!(out[1], Outgoing::Net(n) if n.mtype == MsgType::NSwb && n.dst == NodeId(3))
        );
    }

    #[test]
    fn interv_miss_nacks_requester() {
        let mut mem = mk_mem();
        let mut m = msg(MsgType::PiIntervMiss, 7, 3, 0x6000);
        m.aux = aux::pack(NodeId(1), MsgType::NGet, NodeId(3));
        let (out, _) = run(&m, &mut mem);
        assert!(
            matches!(out[0], Outgoing::Net(n) if n.mtype == MsgType::NNack && n.dst == NodeId(1))
        );
    }

    #[test]
    fn nack_retries_original_request() {
        let mut mem = mk_mem();
        let mut m = msg(MsgType::NNack, 1, 3, 0x6000);
        m.aux = aux::pack(NodeId(1), MsgType::NGetX, NodeId(3));
        let (out, _) = run(&m, &mut mem);
        assert!(matches!(
            out[0],
            Outgoing::Net(n) if n.mtype == MsgType::NGetX && n.dst == NodeId(3)
        ));
    }

    #[test]
    fn dma_write_invalidates_and_writes() {
        let mut mem = mk_mem();
        let da = dir_addr(Addr::new(0x9000));
        {
            let mut d = Directory::new(&mut mem);
            let idx = d.alloc_entry().unwrap();
            d.set_entry(idx, PtrEntry::new(NodeId(2), 0));
            d.set_header(da, DirHeader::default().with_head(idx).with_local(true));
        }
        let m = msg(MsgType::IoDmaWrite, 3, 3, 0x9000);
        let (out, r) = run(&m, &mut mem);
        assert_eq!(r.invals, 1);
        assert!(out
            .iter()
            .any(|o| matches!(o, Outgoing::Proc(p) if p.mtype == MsgType::PInval)));
        assert!(out.iter().any(|o| matches!(o, Outgoing::MemWrite(_))));
        let d = Directory::new(&mut mem);
        let h = d.header(da);
        assert!(!h.local() && h.pending());
        assert_eq!(h.acks(), 1);
    }

    #[test]
    fn replies_forward_to_processor() {
        let mut mem = mk_mem();
        for (nt, pt, data) in [
            (MsgType::NPut, MsgType::PPut, true),
            (MsgType::NPutX, MsgType::PPutX, true),
            (MsgType::NUpgAck, MsgType::PUpgAck, false),
        ] {
            let mut m = msg(nt, 1, 3, 0xa000);
            m.with_data = data;
            let (out, r) = run(&m, &mut mem);
            assert_eq!(r.cost, 2);
            assert!(matches!(out[0], Outgoing::Proc(p) if p.mtype == pt && p.with_data == data));
        }
    }

    #[test]
    fn local_writeback_and_hint() {
        let mut mem = mk_mem();
        let da = dir_addr(Addr::new(0xb000));
        {
            let mut d = Directory::new(&mut mem);
            d.set_header(
                da,
                DirHeader::default()
                    .with_dirty(true)
                    .with_owner(NodeId(0))
                    .with_local(true),
            );
        }
        let m = msg(MsgType::PiWriteback, 0, 0, 0xb000);
        let (out, r) = run(&m, &mut mem);
        assert_eq!(r.cost, 10);
        assert!(matches!(out[0], Outgoing::MemWrite(_)));
        {
            let d = Directory::new(&mut mem);
            assert!(!d.header(da).dirty());
        }
        // Hint on a shared line.
        {
            let mut d = Directory::new(&mut mem);
            d.set_header(da, DirHeader::default().with_local(true));
        }
        let m = msg(MsgType::PiRplHint, 0, 0, 0xb000);
        let (_, r) = run(&m, &mut mem);
        assert_eq!(r.cost, 7);
        let d = Directory::new(&mut mem);
        assert!(!d.header(da).local());
    }

    #[test]
    fn pointer_exhaustion_grants_exclusive() {
        let mut mem = ProtoMem::new();
        Directory::init_free_list(&mut mem, 1);
        let da = dir_addr(Addr::new(0xc000));
        // First sharer consumes the only entry.
        let mut m = msg(MsgType::NGet, 3, 3, 0xc000);
        m.aux = aux::pack(NodeId(1), MsgType::NGet, NodeId(3));
        run(&m, &mut mem);
        {
            let d = Directory::new(&mut mem);
            assert_eq!(d.sharers(da), vec![NodeId(1)]);
        }
        // Second sharer finds the store exhausted: line goes exclusive,
        // the old sharer is invalidated.
        let mut m2 = msg(MsgType::NGet, 3, 3, 0xc000);
        m2.aux = aux::pack(NodeId(2), MsgType::NGet, NodeId(3));
        let (out, _) = run(&m2, &mut mem);
        assert!(out.iter().any(
            |o| matches!(o, Outgoing::Net(n) if n.mtype == MsgType::NInval && n.dst == NodeId(1))
        ));
        assert!(out.iter().any(
            |o| matches!(o, Outgoing::Net(n) if n.mtype == MsgType::NPutX && n.dst == NodeId(2))
        ));
        let d = Directory::new(&mut mem);
        let h = d.header(da);
        assert!(h.dirty());
        assert_eq!(h.owner(), NodeId(2));
    }
}
