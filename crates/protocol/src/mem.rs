//! Per-node protocol memory.
//!
//! "In FLASH all protocol code and data are maintained in main memory"
//! (paper §2). Each node's directory headers and pointer store live in a
//! sparse byte-addressed memory that the PP reaches through the MAGIC data
//! cache. The sparse paging keeps multi-gigabyte directory spans cheap to
//! host.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

const PAGE_BYTES: u64 = 4096;

/// A minimal multiply-fold hasher for page numbers. Page lookups sit on
/// the PP handler hot path (every directory header and pointer-store
/// access goes through one), and SipHash's per-lookup setup cost is
/// measurable there. Page numbers are small, dense, and attacker-free,
/// so a single odd-constant multiply with a high-bit fold is enough.
/// Iteration order is never observable: the only key-order-sensitive
/// consumer is [`ProtoMem::first_difference`], which sorts.
#[derive(Debug, Clone, Copy, Default)]
pub struct PageHasher(u64);

impl Hasher for PageHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.write_u64(b as u64);
        }
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        // Multiply by a random odd 64-bit constant and fold the high
        // bits down so the HashMap's low-bit masking sees mixed bits.
        let h = (self.0 ^ n).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        self.0 = h ^ (h >> 32);
    }
}

/// A sparse, byte-addressable protocol memory (zero-initialized).
///
/// # Examples
///
/// ```
/// use flash_protocol::mem::ProtoMem;
///
/// let mut m = ProtoMem::new();
/// assert_eq!(m.load64(0x1_0000), 0);
/// m.store64(0x1_0000, 0xdead_beef);
/// assert_eq!(m.load64(0x1_0000), 0xdead_beef);
/// ```
#[derive(Debug, Clone, Default)]
pub struct ProtoMem {
    pages: HashMap<u64, Box<[u8; PAGE_BYTES as usize]>, BuildHasherDefault<PageHasher>>,
}

impl ProtoMem {
    /// Creates an empty (all-zero) protocol memory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Loads a little-endian `u64`.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not 8-byte aligned.
    pub fn load64(&self, addr: u64) -> u64 {
        assert_eq!(addr % 8, 0, "unaligned load64 at {addr:#x}");
        match self.pages.get(&(addr / PAGE_BYTES)) {
            Some(p) => {
                let o = (addr % PAGE_BYTES) as usize;
                u64::from_le_bytes(p[o..o + 8].try_into().expect("in page"))
            }
            None => 0,
        }
    }

    /// Stores a little-endian `u64`.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not 8-byte aligned.
    pub fn store64(&mut self, addr: u64, val: u64) {
        assert_eq!(addr % 8, 0, "unaligned store64 at {addr:#x}");
        let page = self
            .pages
            .entry(addr / PAGE_BYTES)
            .or_insert_with(|| Box::new([0; PAGE_BYTES as usize]));
        let o = (addr % PAGE_BYTES) as usize;
        page[o..o + 8].copy_from_slice(&val.to_le_bytes());
    }

    /// Loads a little-endian `u32`.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not 4-byte aligned.
    pub fn load32(&self, addr: u64) -> u32 {
        assert_eq!(addr % 4, 0, "unaligned load32 at {addr:#x}");
        match self.pages.get(&(addr / PAGE_BYTES)) {
            Some(p) => {
                let o = (addr % PAGE_BYTES) as usize;
                u32::from_le_bytes(p[o..o + 4].try_into().expect("in page"))
            }
            None => 0,
        }
    }

    /// Stores a little-endian `u32`.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not 4-byte aligned.
    pub fn store32(&mut self, addr: u64, val: u32) {
        assert_eq!(addr % 4, 0, "unaligned store32 at {addr:#x}");
        let page = self
            .pages
            .entry(addr / PAGE_BYTES)
            .or_insert_with(|| Box::new([0; PAGE_BYTES as usize]));
        let o = (addr % PAGE_BYTES) as usize;
        page[o..o + 4].copy_from_slice(&val.to_le_bytes());
    }

    /// Number of 4 KB pages materialized (for footprint diagnostics).
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }

    /// Address of the first 8-byte word whose contents differ between
    /// `self` and `other`, treating absent pages as zeros. `None` means
    /// the two memories are observationally identical. Used by the
    /// differential oracle to pin native-vs-PP directory divergences.
    pub fn first_difference(&self, other: &ProtoMem) -> Option<u64> {
        let mut pages: Vec<u64> = self
            .pages
            .keys()
            .chain(other.pages.keys())
            .copied()
            .collect();
        pages.sort_unstable();
        pages.dedup();
        const ZEROS: [u8; PAGE_BYTES as usize] = [0; PAGE_BYTES as usize];
        for p in pages {
            let a = self.pages.get(&p).map(|b| &b[..]).unwrap_or(&ZEROS);
            let b = other.pages.get(&p).map(|b| &b[..]).unwrap_or(&ZEROS);
            if a == b {
                continue;
            }
            for w in 0..(PAGE_BYTES as usize / 8) {
                if a[w * 8..w * 8 + 8] != b[w * 8..w * 8 + 8] {
                    return Some(p * PAGE_BYTES + (w as u64) * 8);
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_initialized() {
        let m = ProtoMem::new();
        assert_eq!(m.load64(0), 0);
        assert_eq!(m.load32(0xfff0), 0);
        assert_eq!(m.resident_pages(), 0);
    }

    #[test]
    fn store_load_round_trip() {
        let mut m = ProtoMem::new();
        m.store64(8, u64::MAX);
        m.store32(16, 0x1234_5678);
        assert_eq!(m.load64(8), u64::MAX);
        assert_eq!(m.load32(16), 0x1234_5678);
        assert_eq!(m.load32(8), 0xffff_ffff);
        assert_eq!(m.resident_pages(), 1);
    }

    #[test]
    fn page_boundaries() {
        let mut m = ProtoMem::new();
        m.store64(4096 - 8, 7);
        m.store64(4096, 9);
        assert_eq!(m.load64(4096 - 8), 7);
        assert_eq!(m.load64(4096), 9);
        assert_eq!(m.resident_pages(), 2);
    }

    #[test]
    #[should_panic(expected = "unaligned")]
    fn unaligned_panics() {
        ProtoMem::new().load64(4);
    }

    #[test]
    fn first_difference_pins_the_word() {
        let mut a = ProtoMem::new();
        let mut b = ProtoMem::new();
        assert_eq!(a.first_difference(&b), None);
        a.store64(0x2000, 5);
        b.store64(0x2000, 5);
        assert_eq!(a.first_difference(&b), None);
        b.store64(0x9008, 1);
        assert_eq!(a.first_difference(&b), Some(0x9008));
        assert_eq!(b.first_difference(&a), Some(0x9008));
        // A page materialized with zeros compares equal to an absent page.
        a.store64(0x20_0000, 0);
        assert_eq!(a.first_difference(&b), Some(0x9008));
    }

    #[test]
    fn distant_addresses_stay_sparse() {
        let mut m = ProtoMem::new();
        m.store64(0x0100_0000, 1);
        m.store64(0x4000_0000, 2);
        assert_eq!(m.resident_pages(), 2);
        assert_eq!(m.load64(0x0100_0000), 1);
        assert_eq!(m.load64(0x4000_0000), 2);
    }
}
