; ===================================================================
; FLASH dynamic pointer allocation protocol -- PP handler code
; (constants are prepended from flash_protocol::fields::asm_prologue)
; ===================================================================

; ---- local read miss ----------------------------------------------
pi_get_local:
    mfmsg  r11, F_DIRADDR
    ld     r12, 0(r11)
    mfmsg  r13, F_ADDR
    bbs    r12, B_PENDING, pgl_pending
    bbs    r12, B_DIRTY, pgl_dirty
pgl_clean:
    orfi   r12, r12, B_LOCAL, 1
    sd     r12, 0(r11)
    mfmsg  r1, F_SPEC
    bne    r1, r0, pgl_reply
    memrd  r13
pgl_reply:
    li     r10, MT_PPUT
    sendpd r10, r13, r0
    switch
pgl_pending:
    li     r10, MT_PNACKRETRY
    sendp  r10, r13, r0
    switch
pgl_dirty:
    bfext  r18, r12, OWNER_POS, FIELD_W
    mfmsg  r15, F_SELF
    beq    r18, r15, pgl_selfown
    orfi   r12, r12, B_PENDING, 1
    sd     r12, 0(r11)
    li     r19, MT_NGET
    slli   r19, r19, AX_TYPE_POS
    or     r14, r15, r19
    slli   r20, r15, AX_HOME_POS
    or     r14, r14, r20
    li     r10, MT_NFWDGET
    sendn  r10, r18, r13, r14
    switch
pgl_selfown:
    ; the local processor is re-requesting a line recorded dirty here:
    ; its copy is gone; self-repair and serve from memory
    andcfi r12, r12, B_DIRTY, 1
    j      pgl_clean

; ---- remote-read forward -------------------------------------------
pi_get_remote:
    mfmsg  r13, F_ADDR
    mfmsg  r15, F_SELF
    mfmsg  r16, F_HOME
    li     r19, MT_NGET
    slli   r14, r19, AX_TYPE_POS
    or     r14, r14, r15
    slli   r20, r16, AX_HOME_POS
    or     r14, r14, r20
    sendn  r19, r16, r13, r14
    switch

; ---- local write miss ----------------------------------------------
pi_getx_local:
    mfmsg  r11, F_DIRADDR
    ld     r12, 0(r11)
    mfmsg  r13, F_ADDR
    mfmsg  r15, F_SELF
    bbs    r12, B_PENDING, pxl_pending
    bbs    r12, B_DIRTY, pxl_dirty
pxl_clean:
    li     r19, MT_NINVAL
    slli   r19, r19, AX_TYPE_POS
    or     r19, r19, r15
    slli   r1, r15, AX_HOME_POS
    or     r19, r19, r1
    move   r28, r0
    bfext  r23, r12, HEAD_POS, FIELD_W
pxl_loop:
    beq    r23, r0, pxl_done
    slli   r24, r23, 3
    li     r25, PS_BASE
    add    r24, r24, r25
    ld     r25, 0(r24)
    bfext  r26, r25, ENODE_POS, FIELD_W
    bfext  r27, r25, ENEXT_POS, FIELD_W
    li     r22, FREE_HEAD
    ld     r1, 0(r22)
    move   r2, r0
    bfins  r2, r1, ENEXT_POS, FIELD_W
    sd     r2, 0(r24)
    sd     r23, 0(r22)
    beq    r26, r15, pxl_skip
    li     r10, MT_NINVAL
    sendn  r10, r26, r13, r19
    addi   r28, r28, 1
pxl_skip:
    move   r23, r27
    j      pxl_loop
pxl_done:
    move   r1, r0
    bfins  r12, r1, HEAD_POS, FIELD_W
    orfi   r12, r12, B_DIRTY, 1
    bfins  r12, r15, OWNER_POS, FIELD_W
    orfi   r12, r12, B_LOCAL, 1
    bfins  r12, r28, ACKS_POS, FIELD_W
    andcfi r12, r12, B_PENDING, 1
    beq    r28, r0, pxl_store
    orfi   r12, r12, B_PENDING, 1
pxl_store:
    sd     r12, 0(r11)
    mfmsg  r1, F_SPEC
    bne    r1, r0, pxl_reply
    memrd  r13
pxl_reply:
    li     r10, MT_PPUTX
    sendpd r10, r13, r0
    switch
pxl_pending:
    li     r10, MT_PNACKRETRY
    sendp  r10, r13, r0
    switch
pxl_dirty:
    bfext  r18, r12, OWNER_POS, FIELD_W
    beq    r18, r15, pxl_selfown
    orfi   r12, r12, B_PENDING, 1
    sd     r12, 0(r11)
    li     r19, MT_NGETX
    slli   r19, r19, AX_TYPE_POS
    or     r14, r15, r19
    slli   r20, r15, AX_HOME_POS
    or     r14, r14, r20
    li     r10, MT_NFWDGETX
    sendn  r10, r18, r13, r14
    switch
pxl_selfown:
    andcfi r12, r12, B_DIRTY, 1
    j      pxl_clean

pi_getx_remote:
    mfmsg  r13, F_ADDR
    mfmsg  r15, F_SELF
    mfmsg  r16, F_HOME
    li     r19, MT_NGETX
    slli   r14, r19, AX_TYPE_POS
    or     r14, r14, r15
    slli   r20, r16, AX_HOME_POS
    or     r14, r14, r20
    sendn  r19, r16, r13, r14
    switch

; ---- local upgrade ---------------------------------------------------
pi_upgrade_local:
    mfmsg  r11, F_DIRADDR
    ld     r12, 0(r11)
    mfmsg  r13, F_ADDR
    mfmsg  r15, F_SELF
    bbs    r12, B_PENDING, pul_pending
    bbs    r12, B_DIRTY, pul_dirty
pul_clean:
    li     r19, MT_NINVAL
    slli   r19, r19, AX_TYPE_POS
    or     r19, r19, r15
    slli   r1, r15, AX_HOME_POS
    or     r19, r19, r1
    move   r28, r0
    bfext  r23, r12, HEAD_POS, FIELD_W
pul_loop:
    beq    r23, r0, pul_done
    slli   r24, r23, 3
    li     r25, PS_BASE
    add    r24, r24, r25
    ld     r25, 0(r24)
    bfext  r26, r25, ENODE_POS, FIELD_W
    bfext  r27, r25, ENEXT_POS, FIELD_W
    li     r22, FREE_HEAD
    ld     r1, 0(r22)
    move   r2, r0
    bfins  r2, r1, ENEXT_POS, FIELD_W
    sd     r2, 0(r24)
    sd     r23, 0(r22)
    beq    r26, r15, pul_skip
    li     r10, MT_NINVAL
    sendn  r10, r26, r13, r19
    addi   r28, r28, 1
pul_skip:
    move   r23, r27
    j      pul_loop
pul_done:
    bbc    r12, B_LOCAL, pul_lost
    move   r1, r0
    bfins  r12, r1, HEAD_POS, FIELD_W
    orfi   r12, r12, B_DIRTY, 1
    bfins  r12, r15, OWNER_POS, FIELD_W
    orfi   r12, r12, B_LOCAL, 1
    bfins  r12, r28, ACKS_POS, FIELD_W
    andcfi r12, r12, B_PENDING, 1
    beq    r28, r0, pul_store
    orfi   r12, r12, B_PENDING, 1
pul_store:
    sd     r12, 0(r11)
    li     r10, MT_PUPGACK
    sendp  r10, r13, r0
    switch
pul_lost:
    move   r1, r0
    bfins  r12, r1, HEAD_POS, FIELD_W
    orfi   r12, r12, B_DIRTY, 1
    bfins  r12, r15, OWNER_POS, FIELD_W
    orfi   r12, r12, B_LOCAL, 1
    bfins  r12, r28, ACKS_POS, FIELD_W
    andcfi r12, r12, B_PENDING, 1
    beq    r28, r0, pul_lost_store
    orfi   r12, r12, B_PENDING, 1
pul_lost_store:
    sd     r12, 0(r11)
    memrd  r13
    li     r10, MT_PPUTX
    sendpd r10, r13, r0
    switch
pul_pending:
    li     r10, MT_PNACKRETRY
    sendp  r10, r13, r0
    switch
pul_dirty:
    bfext  r18, r12, OWNER_POS, FIELD_W
    beq    r18, r15, pul_selfown
    orfi   r12, r12, B_PENDING, 1
    sd     r12, 0(r11)
    li     r19, MT_NGETX
    slli   r19, r19, AX_TYPE_POS
    or     r14, r15, r19
    slli   r20, r15, AX_HOME_POS
    or     r14, r14, r20
    li     r10, MT_NFWDGETX
    sendn  r10, r18, r13, r14
    switch
pul_selfown:
    ; the local processor is upgrading a line recorded dirty here: its
    ; copy is gone; self-repair and grant data from memory
    andcfi r12, r12, B_DIRTY, 1
    sd     r12, 0(r11)
    j      pul_clean

pi_upgrade_remote:
    mfmsg  r13, F_ADDR
    mfmsg  r15, F_SELF
    mfmsg  r16, F_HOME
    li     r19, MT_NUPGRADE
    slli   r14, r19, AX_TYPE_POS
    or     r14, r14, r15
    slli   r20, r16, AX_HOME_POS
    or     r14, r14, r20
    sendn  r19, r16, r13, r14
    switch

; ---- local writeback -------------------------------------------------
pi_wb_local:
    mfmsg  r11, F_DIRADDR
    ld     r12, 0(r11)
    mfmsg  r13, F_ADDR
    memwr  r13
    andcfi r12, r12, B_DIRTY, 1
    andcfi r12, r12, B_LOCAL, 1
    andcfi r12, r12, B_PENDING, 1
    sd     r12, 0(r11)
    switch

pi_wb_remote:
    mfmsg  r13, F_ADDR
    mfmsg  r15, F_SELF
    mfmsg  r16, F_HOME
    li     r19, MT_NWRITEBACK
    slli   r14, r19, AX_TYPE_POS
    or     r14, r14, r15
    slli   r20, r16, AX_HOME_POS
    or     r14, r14, r20
    sendnd r19, r16, r13, r14
    switch

; ---- local replacement hint ------------------------------------------
pi_hint_local:
    mfmsg  r11, F_DIRADDR
    ld     r12, 0(r11)
    andcfi r12, r12, B_LOCAL, 1
    sd     r12, 0(r11)
    switch

pi_hint_remote:
    mfmsg  r13, F_ADDR
    mfmsg  r15, F_SELF
    mfmsg  r16, F_HOME
    li     r19, MT_NRPLHINT
    slli   r14, r19, AX_TYPE_POS
    or     r14, r14, r15
    slli   r20, r16, AX_HOME_POS
    or     r14, r14, r20
    sendn  r19, r16, r13, r14
    switch

; ---- intervention reply (data retrieved from processor cache) --------
pi_interv_reply:
    mfmsg  r14, F_AUX
    bfext  r21, r14, AX_REQ_POS, FIELD_W
    bfext  r22, r14, AX_TYPE_POS, 8
    bfext  r16, r14, AX_HOME_POS, FIELD_W
    mfmsg  r15, F_SELF
    mfmsg  r13, F_ADDR
    li     r1, MT_NGETX
    beq    r22, r1, pir_getx
    bne    r16, r15, pir_third
    mfmsg  r11, F_DIRADDR
    ld     r12, 0(r11)
    ; Guard against the stale local reply: a local writeback racing the
    ; deferred intervention already resolved this transaction (clearing
    ; PENDING). PENDING is the only sound discriminator -- DIRTY/LOCAL
    ; may be stale from a racing replacement hint while the transaction
    ; is still live; gating on them would livelock the retrying
    ; requester against a forever-pending line.
    bbc    r12, B_PENDING, pir_stale
    memwr  r13
    andcfi r12, r12, B_DIRTY, 1
    andcfi r12, r12, B_PENDING, 1
    orfi   r12, r12, B_LOCAL, 1
    li     r23, FREE_HEAD
    ld     r24, 0(r23)
    beq    r24, r0, pir_exhaust
    slli   r25, r24, 3
    li     r26, PS_BASE
    add    r25, r25, r26
    ld     r26, 0(r25)
    bfext  r27, r26, ENEXT_POS, FIELD_W
    sd     r27, 0(r23)
    bfext  r27, r12, HEAD_POS, FIELD_W
    move   r2, r0
    bfins  r2, r21, ENODE_POS, FIELD_W
    bfins  r2, r27, ENEXT_POS, FIELD_W
    sd     r2, 0(r25)
    bfins  r12, r24, HEAD_POS, FIELD_W
    sd     r12, 0(r11)
    li     r10, MT_NPUT
    sendnd r10, r21, r13, r14
    switch
pir_exhaust:
    orfi   r12, r12, B_DIRTY, 1
    bfins  r12, r21, OWNER_POS, FIELD_W
    andcfi r12, r12, B_LOCAL, 1
    sd     r12, 0(r11)
    li     r10, MT_PINVAL
    sendp  r10, r13, r0
    li     r10, MT_NPUTX
    sendnd r10, r21, r13, r14
    switch
pir_third:
    li     r10, MT_NPUT
    sendnd r10, r21, r13, r14
    li     r10, MT_NSWB
    sendnd r10, r16, r13, r14
    switch
pir_getx:
    bne    r16, r15, pir_getx_third
    mfmsg  r11, F_DIRADDR
    ld     r12, 0(r11)
    ; Same stale-local-reply guard as the shared path above
    ; (PENDING-only, for the same reason).
    bbc    r12, B_PENDING, pir_stale
    bfins  r12, r21, OWNER_POS, FIELD_W
    andcfi r12, r12, B_LOCAL, 1
    andcfi r12, r12, B_PENDING, 1
    sd     r12, 0(r11)
    li     r10, MT_NPUTX
    sendnd r10, r21, r13, r14
    switch
pir_getx_third:
    li     r10, MT_NPUTX
    sendnd r10, r21, r13, r14
    li     r10, MT_NOWNX
    sendn  r10, r16, r13, r14
    switch
pir_stale:
    li     r10, MT_NNACK
    sendn  r10, r21, r13, r14
    switch

; ---- intervention missed (owner no longer holds the line) -------------
pi_interv_miss:
    mfmsg  r14, F_AUX
    bfext  r21, r14, AX_REQ_POS, FIELD_W
    bfext  r16, r14, AX_HOME_POS, FIELD_W
    mfmsg  r13, F_ADDR
    li     r10, MT_NNACK
    sendn  r10, r21, r13, r14
    li     r10, MT_NINTERVMISS
    sendn  r10, r16, r13, r14
    switch

; ---- intervention-miss notice at the home ------------------------------
ni_interv_miss:
    mfmsg  r11, F_DIRADDR
    ld     r12, 0(r11)
    bbc    r12, B_PENDING, nim_done
    bbc    r12, B_DIRTY, nim_done
    bfext  r18, r12, OWNER_POS, FIELD_W
    mfmsg  r17, F_SRC
    bne    r18, r17, nim_done
    andcfi r12, r12, B_PENDING, 1
    andcfi r12, r12, B_DIRTY, 1
    sd     r12, 0(r11)
nim_done:
    switch

; ---- DMA --------------------------------------------------------------
io_dma_write:
    mfmsg  r11, F_DIRADDR
    ld     r12, 0(r11)
    mfmsg  r13, F_ADDR
    mfmsg  r15, F_SELF
    li     r19, MT_NINVAL
    slli   r19, r19, AX_TYPE_POS
    or     r19, r19, r15
    slli   r1, r15, AX_HOME_POS
    or     r19, r19, r1
    move   r28, r0
    bfext  r23, r12, HEAD_POS, FIELD_W
dmw_loop:
    beq    r23, r0, dmw_done
    slli   r24, r23, 3
    li     r25, PS_BASE
    add    r24, r24, r25
    ld     r25, 0(r24)
    bfext  r26, r25, ENODE_POS, FIELD_W
    bfext  r27, r25, ENEXT_POS, FIELD_W
    li     r22, FREE_HEAD
    ld     r1, 0(r22)
    move   r2, r0
    bfins  r2, r1, ENEXT_POS, FIELD_W
    sd     r2, 0(r24)
    sd     r23, 0(r22)
    li     r10, MT_NINVAL
    sendn  r10, r26, r13, r19
    addi   r28, r28, 1
    move   r23, r27
    j      dmw_loop
dmw_done:
    bbc    r12, B_DIRTY, dmw_nodirty
    bfext  r18, r12, OWNER_POS, FIELD_W
    beq    r18, r15, dmw_nodirty
    li     r10, MT_NINVAL
    sendn  r10, r18, r13, r19
    addi   r28, r28, 1
dmw_nodirty:
    bbc    r12, B_LOCAL, dmw_nolocal
    li     r10, MT_PINVAL
    sendp  r10, r13, r0
dmw_nolocal:
    move   r1, r0
    bfins  r12, r1, HEAD_POS, FIELD_W
    andcfi r12, r12, B_DIRTY, 1
    andcfi r12, r12, B_LOCAL, 1
    bfins  r12, r28, ACKS_POS, FIELD_W
    andcfi r12, r12, B_PENDING, 1
    beq    r28, r0, dmw_store
    orfi   r12, r12, B_PENDING, 1
dmw_store:
    sd     r12, 0(r11)
    memwr  r13
    switch

io_dma_read:
    mfmsg  r13, F_ADDR
    memrd  r13
    li     r10, MT_PIODATA
    sendpd r10, r13, r0
    switch

; ---- network read request at home --------------------------------------
ni_get:
    mfmsg  r11, F_DIRADDR
    ld     r12, 0(r11)
    mfmsg  r14, F_AUX
    bfext  r21, r14, AX_REQ_POS, FIELD_W
    mfmsg  r13, F_ADDR
    bbs    r12, B_PENDING, ng_nack
    bbs    r12, B_DIRTY, ng_dirty
ng_clean:
    mfmsg  r15, F_SELF
    beq    r21, r15, ng_self
    li     r22, FREE_HEAD
    ld     r23, 0(r22)
    beq    r23, r0, ng_exhaust
    slli   r24, r23, 3
    li     r25, PS_BASE
    add    r24, r24, r25
    ld     r25, 0(r24)
    bfext  r26, r25, ENEXT_POS, FIELD_W
    sd     r26, 0(r22)
    bfext  r26, r12, HEAD_POS, FIELD_W
    move   r27, r0
    bfins  r27, r21, ENODE_POS, FIELD_W
    bfins  r27, r26, ENEXT_POS, FIELD_W
    sd     r27, 0(r24)
    bfins  r12, r23, HEAD_POS, FIELD_W
    sd     r12, 0(r11)
    mfmsg  r1, F_SPEC
    bne    r1, r0, ng_reply
    memrd  r13
ng_reply:
    li     r10, MT_NPUT
    sendnd r10, r21, r13, r14
    switch
ng_self:
    orfi   r12, r12, B_LOCAL, 1
    sd     r12, 0(r11)
    mfmsg  r1, F_SPEC
    bne    r1, r0, ng_reply
    memrd  r13
    j      ng_reply
ng_nack:
    li     r10, MT_NNACK
    sendn  r10, r21, r13, r14
    switch
ng_dirty:
    bfext  r18, r12, OWNER_POS, FIELD_W
    beq    r18, r21, ng_selfown
    orfi   r12, r12, B_PENDING, 1
    sd     r12, 0(r11)
    mfmsg  r15, F_SELF
    li     r19, MT_NGET
    slli   r19, r19, AX_TYPE_POS
    or     r20, r21, r19
    slli   r1, r15, AX_HOME_POS
    or     r20, r20, r1
    beq    r18, r15, ng_local_dirty
    li     r10, MT_NFWDGET
    sendn  r10, r18, r13, r20
    switch
ng_local_dirty:
    li     r10, MT_PINTERVGET
    sendp  r10, r13, r20
    switch
ng_selfown:
    ; the recorded owner is re-requesting: self-repair, serve from memory
    andcfi r12, r12, B_DIRTY, 1
    sd     r12, 0(r11)
    j      ng_clean
ng_exhaust:
    li     r19, MT_NINVAL
    slli   r19, r19, AX_TYPE_POS
    or     r19, r19, r15
    slli   r1, r15, AX_HOME_POS
    or     r19, r19, r1
    move   r28, r0
    bfext  r23, r12, HEAD_POS, FIELD_W
ngx_loop:
    beq    r23, r0, ngx_done
    slli   r24, r23, 3
    li     r25, PS_BASE
    add    r24, r24, r25
    ld     r25, 0(r24)
    bfext  r26, r25, ENODE_POS, FIELD_W
    bfext  r27, r25, ENEXT_POS, FIELD_W
    li     r22, FREE_HEAD
    ld     r1, 0(r22)
    move   r2, r0
    bfins  r2, r1, ENEXT_POS, FIELD_W
    sd     r2, 0(r24)
    sd     r23, 0(r22)
    beq    r26, r21, ngx_skip
    li     r10, MT_NINVAL
    sendn  r10, r26, r13, r19
    addi   r28, r28, 1
ngx_skip:
    move   r23, r27
    j      ngx_loop
ngx_done:
    bbc    r12, B_LOCAL, ngx_nolocal
    li     r10, MT_PINVAL
    sendp  r10, r13, r0
    andcfi r12, r12, B_LOCAL, 1
ngx_nolocal:
    move   r1, r0
    bfins  r12, r1, HEAD_POS, FIELD_W
    orfi   r12, r12, B_DIRTY, 1
    bfins  r12, r21, OWNER_POS, FIELD_W
    bfins  r12, r28, ACKS_POS, FIELD_W
    andcfi r12, r12, B_PENDING, 1
    beq    r28, r0, ngx_store
    orfi   r12, r12, B_PENDING, 1
ngx_store:
    sd     r12, 0(r11)
    mfmsg  r1, F_SPEC
    bne    r1, r0, ngx_reply
    memrd  r13
ngx_reply:
    li     r10, MT_NPUTX
    sendnd r10, r21, r13, r14
    switch

; ---- network write request at home -------------------------------------
ni_getx:
    mfmsg  r11, F_DIRADDR
    ld     r12, 0(r11)
    mfmsg  r14, F_AUX
    bfext  r21, r14, AX_REQ_POS, FIELD_W
    mfmsg  r13, F_ADDR
    bbs    r12, B_PENDING, nx_nack
    bbs    r12, B_DIRTY, nx_dirty
nx_clean:
    mfmsg  r15, F_SELF
    li     r19, MT_NINVAL
    slli   r19, r19, AX_TYPE_POS
    or     r19, r19, r15
    slli   r1, r15, AX_HOME_POS
    or     r19, r19, r1
    move   r28, r0
    bfext  r23, r12, HEAD_POS, FIELD_W
nx_loop:
    beq    r23, r0, nx_done
    slli   r24, r23, 3
    li     r25, PS_BASE
    add    r24, r24, r25
    ld     r25, 0(r24)
    bfext  r26, r25, ENODE_POS, FIELD_W
    bfext  r27, r25, ENEXT_POS, FIELD_W
    li     r22, FREE_HEAD
    ld     r1, 0(r22)
    move   r2, r0
    bfins  r2, r1, ENEXT_POS, FIELD_W
    sd     r2, 0(r24)
    sd     r23, 0(r22)
    beq    r26, r21, nx_skip
    li     r10, MT_NINVAL
    sendn  r10, r26, r13, r19
    addi   r28, r28, 1
nx_skip:
    move   r23, r27
    j      nx_loop
nx_done:
    bbc    r12, B_LOCAL, nx_nolocal
    beq    r21, r15, nx_nolocal
    li     r10, MT_PINVAL
    sendp  r10, r13, r0
nx_nolocal:
    move   r1, r0
    bfins  r12, r1, HEAD_POS, FIELD_W
    orfi   r12, r12, B_DIRTY, 1
    bfins  r12, r21, OWNER_POS, FIELD_W
    andcfi r12, r12, B_LOCAL, 1
    bne    r21, r15, nx_acks
    orfi   r12, r12, B_LOCAL, 1
nx_acks:
    bfins  r12, r28, ACKS_POS, FIELD_W
    andcfi r12, r12, B_PENDING, 1
    beq    r28, r0, nx_store
    orfi   r12, r12, B_PENDING, 1
nx_store:
    sd     r12, 0(r11)
    mfmsg  r1, F_SPEC
    bne    r1, r0, nx_reply
    memrd  r13
nx_reply:
    li     r10, MT_NPUTX
    sendnd r10, r21, r13, r14
    switch
nx_nack:
    li     r10, MT_NNACK
    sendn  r10, r21, r13, r14
    switch
nx_dirty:
    bfext  r18, r12, OWNER_POS, FIELD_W
    beq    r18, r21, nx_selfown
    orfi   r12, r12, B_PENDING, 1
    sd     r12, 0(r11)
    mfmsg  r15, F_SELF
    li     r19, MT_NGETX
    slli   r19, r19, AX_TYPE_POS
    or     r20, r21, r19
    slli   r1, r15, AX_HOME_POS
    or     r20, r20, r1
    beq    r18, r15, nx_local_dirty
    li     r10, MT_NFWDGETX
    sendn  r10, r18, r13, r20
    switch
nx_local_dirty:
    li     r10, MT_PINTERVGETX
    sendp  r10, r13, r20
    switch
nx_selfown:
    andcfi r12, r12, B_DIRTY, 1
    sd     r12, 0(r11)
    j      nx_clean

; ---- network upgrade request at home ------------------------------------
ni_upgrade:
    mfmsg  r11, F_DIRADDR
    ld     r12, 0(r11)
    mfmsg  r14, F_AUX
    bfext  r21, r14, AX_REQ_POS, FIELD_W
    mfmsg  r13, F_ADDR
    bbs    r12, B_PENDING, nu_nack
    bbs    r12, B_DIRTY, nu_dirty
nu_clean:
    mfmsg  r15, F_SELF
    li     r19, MT_NINVAL
    slli   r19, r19, AX_TYPE_POS
    or     r19, r19, r15
    slli   r1, r15, AX_HOME_POS
    or     r19, r19, r1
    move   r28, r0
    move   r20, r0
    bfext  r23, r12, HEAD_POS, FIELD_W
nu_loop:
    beq    r23, r0, nu_done
    slli   r24, r23, 3
    li     r25, PS_BASE
    add    r24, r24, r25
    ld     r25, 0(r24)
    bfext  r26, r25, ENODE_POS, FIELD_W
    bfext  r27, r25, ENEXT_POS, FIELD_W
    li     r22, FREE_HEAD
    ld     r1, 0(r22)
    move   r2, r0
    bfins  r2, r1, ENEXT_POS, FIELD_W
    sd     r2, 0(r24)
    sd     r23, 0(r22)
    bne    r26, r21, nu_inval
    addi   r20, r0, 1
    j      nu_next
nu_inval:
    li     r10, MT_NINVAL
    sendn  r10, r26, r13, r19
    addi   r28, r28, 1
nu_next:
    move   r23, r27
    j      nu_loop
nu_done:
    bbc    r12, B_LOCAL, nu_nolocal
    li     r10, MT_PINVAL
    sendp  r10, r13, r0
nu_nolocal:
    move   r1, r0
    bfins  r12, r1, HEAD_POS, FIELD_W
    orfi   r12, r12, B_DIRTY, 1
    bfins  r12, r21, OWNER_POS, FIELD_W
    andcfi r12, r12, B_LOCAL, 1
    bfins  r12, r28, ACKS_POS, FIELD_W
    andcfi r12, r12, B_PENDING, 1
    beq    r28, r0, nu_store
    orfi   r12, r12, B_PENDING, 1
nu_store:
    sd     r12, 0(r11)
    beq    r20, r0, nu_data
    li     r10, MT_NUPGACK
    sendn  r10, r21, r13, r14
    switch
nu_data:
    memrd  r13
    li     r10, MT_NPUTX
    sendnd r10, r21, r13, r14
    switch
nu_nack:
    li     r10, MT_NNACK
    sendn  r10, r21, r13, r14
    switch
nu_dirty:
    bfext  r18, r12, OWNER_POS, FIELD_W
    beq    r18, r21, nu_selfown
    orfi   r12, r12, B_PENDING, 1
    sd     r12, 0(r11)
    mfmsg  r15, F_SELF
    li     r19, MT_NGETX
    slli   r19, r19, AX_TYPE_POS
    or     r20, r21, r19
    slli   r1, r15, AX_HOME_POS
    or     r20, r20, r1
    beq    r18, r15, nu_local_dirty
    li     r10, MT_NFWDGETX
    sendn  r10, r18, r13, r20
    switch
nu_local_dirty:
    li     r10, MT_PINTERVGETX
    sendp  r10, r13, r20
    switch
nu_selfown:
    andcfi r12, r12, B_DIRTY, 1
    sd     r12, 0(r11)
    j      nu_clean

; ---- forwarded requests at the owner -------------------------------------
ni_fwd_get:
    mfmsg  r13, F_ADDR
    mfmsg  r14, F_AUX
    li     r10, MT_PINTERVGET
    sendp  r10, r13, r14
    switch

ni_fwd_getx:
    mfmsg  r13, F_ADDR
    mfmsg  r14, F_AUX
    li     r10, MT_PINTERVGETX
    sendp  r10, r13, r14
    switch

; ---- invalidation at a sharer ---------------------------------------------
ni_inval:
    mfmsg  r13, F_ADDR
    mfmsg  r14, F_AUX
    li     r10, MT_PINVAL
    sendp  r10, r13, r0
    bfext  r16, r14, AX_HOME_POS, FIELD_W
    li     r10, MT_NINVALACK
    sendn  r10, r16, r13, r14
    switch

; ---- invalidation ack at the home -----------------------------------------
ni_inval_ack:
    mfmsg  r11, F_DIRADDR
    ld     r12, 0(r11)
    bfext  r18, r12, ACKS_POS, FIELD_W
    beq    r18, r0, nia_done
    addi   r18, r18, -1
    bfins  r12, r18, ACKS_POS, FIELD_W
    andcfi r12, r12, B_PENDING, 1
    beq    r18, r0, nia_store
    orfi   r12, r12, B_PENDING, 1
nia_store:
    sd     r12, 0(r11)
nia_done:
    switch

; ---- replies forwarded to the processor ------------------------------------
ni_put:
    mfmsg  r13, F_ADDR
    mfmsg  r14, F_AUX
    li     r10, MT_PPUT
    sendpd r10, r13, r14
    switch

ni_putx:
    mfmsg  r13, F_ADDR
    mfmsg  r14, F_AUX
    li     r10, MT_PPUTX
    sendpd r10, r13, r14
    switch

ni_upgack:
    mfmsg  r13, F_ADDR
    mfmsg  r14, F_AUX
    li     r10, MT_PUPGACK
    sendp  r10, r13, r14
    switch

; ---- NACK at the requester: retry -------------------------------------------
ni_nack:
    mfmsg  r13, F_ADDR
    mfmsg  r14, F_AUX
    bfext  r22, r14, AX_TYPE_POS, 8
    bfext  r16, r14, AX_HOME_POS, FIELD_W
    sendn  r22, r16, r13, r14
    switch

; ---- sharing writeback at the home -------------------------------------------
ni_swb:
    mfmsg  r11, F_DIRADDR
    ld     r12, 0(r11)
    mfmsg  r13, F_ADDR
    mfmsg  r14, F_AUX
    mfmsg  r15, F_SELF
    mfmsg  r17, F_SRC
    bfext  r21, r14, AX_REQ_POS, FIELD_W
    bbc    r12, B_PENDING, nsw_stale
    bbc    r12, B_DIRTY, nsw_stale
    bfext  r18, r12, OWNER_POS, FIELD_W
    bne    r18, r17, nsw_stale
    andcfi r12, r12, B_DIRTY, 1
    andcfi r12, r12, B_PENDING, 1
    memwr  r13
    move   r18, r21
    beq    r18, r15, nsw_local1
    li     r22, FREE_HEAD
    ld     r23, 0(r22)
    beq    r23, r0, nsw_drop1
    slli   r24, r23, 3
    li     r25, PS_BASE
    add    r24, r24, r25
    ld     r25, 0(r24)
    bfext  r26, r25, ENEXT_POS, FIELD_W
    sd     r26, 0(r22)
    bfext  r26, r12, HEAD_POS, FIELD_W
    move   r27, r0
    bfins  r27, r18, ENODE_POS, FIELD_W
    bfins  r27, r26, ENEXT_POS, FIELD_W
    sd     r27, 0(r24)
    bfins  r12, r23, HEAD_POS, FIELD_W
    j      nsw_two
nsw_local1:
    orfi   r12, r12, B_LOCAL, 1
    j      nsw_two
nsw_drop1:
    li     r19, MT_NINVAL
    slli   r19, r19, AX_TYPE_POS
    or     r19, r19, r15
    slli   r1, r15, AX_HOME_POS
    or     r19, r19, r1
    li     r10, MT_NINVAL
    sendn  r10, r18, r13, r19
nsw_two:
    move   r18, r17
    beq    r18, r15, nsw_local2
    li     r22, FREE_HEAD
    ld     r23, 0(r22)
    beq    r23, r0, nsw_drop2
    slli   r24, r23, 3
    li     r25, PS_BASE
    add    r24, r24, r25
    ld     r25, 0(r24)
    bfext  r26, r25, ENEXT_POS, FIELD_W
    sd     r26, 0(r22)
    bfext  r26, r12, HEAD_POS, FIELD_W
    move   r27, r0
    bfins  r27, r18, ENODE_POS, FIELD_W
    bfins  r27, r26, ENEXT_POS, FIELD_W
    sd     r27, 0(r24)
    bfins  r12, r23, HEAD_POS, FIELD_W
    j      nsw_store
nsw_local2:
    orfi   r12, r12, B_LOCAL, 1
    j      nsw_store
nsw_drop2:
    li     r19, MT_NINVAL
    slli   r19, r19, AX_TYPE_POS
    or     r19, r19, r15
    slli   r1, r15, AX_HOME_POS
    or     r19, r19, r1
    li     r10, MT_NINVAL
    sendn  r10, r18, r13, r19
nsw_store:
    sd     r12, 0(r11)
    switch
nsw_stale:
    ; superseded transaction: drop the data, invalidate rogue copies
    li     r19, MT_NINVAL
    slli   r19, r19, AX_TYPE_POS
    or     r19, r19, r15
    slli   r1, r15, AX_HOME_POS
    or     r19, r19, r1
    beq    r21, r15, nsw_stale_req_local
    li     r10, MT_NINVAL
    sendn  r10, r21, r13, r19
    j      nsw_stale_owner
nsw_stale_req_local:
    li     r10, MT_PINVAL
    sendp  r10, r13, r0
nsw_stale_owner:
    beq    r17, r15, nsw_stale_owner_local
    li     r10, MT_NINVAL
    sendn  r10, r17, r13, r19
    switch
nsw_stale_owner_local:
    li     r10, MT_PINVAL
    sendp  r10, r13, r0
    switch

; ---- ownership transfer at the home --------------------------------------
ni_ownx:
    mfmsg  r11, F_DIRADDR
    ld     r12, 0(r11)
    mfmsg  r14, F_AUX
    mfmsg  r15, F_SELF
    mfmsg  r17, F_SRC
    mfmsg  r13, F_ADDR
    bfext  r21, r14, AX_REQ_POS, FIELD_W
    bbc    r12, B_PENDING, nox_stale
    bbc    r12, B_DIRTY, nox_stale
    bfext  r18, r12, OWNER_POS, FIELD_W
    bne    r18, r17, nox_stale
    orfi   r12, r12, B_DIRTY, 1
    bfins  r12, r21, OWNER_POS, FIELD_W
    andcfi r12, r12, B_LOCAL, 1
    bne    r21, r15, nox_nolocal
    orfi   r12, r12, B_LOCAL, 1
nox_nolocal:
    andcfi r12, r12, B_PENDING, 1
    sd     r12, 0(r11)
    switch
nox_stale:
    ; superseded ownership transfer: invalidate the rogue exclusive copy
    beq    r21, r15, nox_stale_local
    li     r19, MT_NINVAL
    slli   r19, r19, AX_TYPE_POS
    or     r19, r19, r15
    slli   r1, r15, AX_HOME_POS
    or     r19, r19, r1
    li     r10, MT_NINVAL
    sendn  r10, r21, r13, r19
    switch
nox_stale_local:
    li     r10, MT_PINVAL
    sendp  r10, r13, r0
    switch

; ---- remote writeback at the home ------------------------------------------
ni_wb:
    mfmsg  r11, F_DIRADDR
    ld     r12, 0(r11)
    bbc    r12, B_DIRTY, nwb_done
    bfext  r18, r12, OWNER_POS, FIELD_W
    mfmsg  r17, F_SRC
    bne    r18, r17, nwb_done
    mfmsg  r13, F_ADDR
    memwr  r13
    andcfi r12, r12, B_DIRTY, 1
    andcfi r12, r12, B_PENDING, 1
    sd     r12, 0(r11)
nwb_done:
    switch

; ---- remote replacement hint at the home -----------------------------------
ni_hint:
    mfmsg  r11, F_DIRADDR
    ld     r12, 0(r11)
    mfmsg  r17, F_SRC
    bfext  r23, r12, HEAD_POS, FIELD_W
    move   r28, r0
nh_loop:
    beq    r23, r0, nh_done
    slli   r24, r23, 3
    li     r25, PS_BASE
    add    r24, r24, r25
    ld     r25, 0(r24)
    bfext  r26, r25, ENODE_POS, FIELD_W
    bfext  r27, r25, ENEXT_POS, FIELD_W
    beq    r26, r17, nh_found
    move   r28, r24
    move   r23, r27
    j      nh_loop
nh_found:
    beq    r28, r0, nh_head
    ld     r1, 0(r28)
    bfins  r1, r27, ENEXT_POS, FIELD_W
    sd     r1, 0(r28)
    j      nh_free
nh_head:
    bfins  r12, r27, HEAD_POS, FIELD_W
    sd     r12, 0(r11)
nh_free:
    li     r22, FREE_HEAD
    ld     r1, 0(r22)
    move   r2, r0
    bfins  r2, r1, ENEXT_POS, FIELD_W
    sd     r2, 0(r24)
    sd     r23, 0(r22)
nh_done:
    switch
