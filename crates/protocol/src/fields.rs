//! Message-register fields, aux-word packing, and the generated assembly
//! prologue.
//!
//! The inbox "preprocesses the header and passes it to the protocol
//! processor" (paper §2); handlers then read header fields with the
//! `mfmsg` instruction. This module fixes the field numbering, the packing
//! of the 64-bit auxiliary word used to thread transaction context through
//! forwarded messages and interventions, and — crucially — emits the `.equ`
//! prologue that gives PP assembly the *same* constants, so the Rust oracle
//! and the handler code can never disagree about layouts.

use crate::dir::{bits, FREE_HEAD_ADDR, PS_BASE};
use crate::msg::MsgType;
use flash_engine::NodeId;

/// `mfmsg` field indices.
pub mod field {
    /// Raw message type.
    pub const TYPE: u8 = 0;
    /// Source node of the message.
    pub const SRC: u8 = 1;
    /// Line address.
    pub const ADDR: u8 = 2;
    /// Precomputed protocol-memory address of the directory header.
    pub const DIRADDR: u8 = 3;
    /// Auxiliary word.
    pub const AUX: u8 = 4;
    /// 1 if the inbox issued a speculative memory read for this message.
    pub const SPEC: u8 = 5;
    /// This node's id.
    pub const SELF: u8 = 6;
    /// Home node of the address.
    pub const HOME: u8 = 7;
}

/// Packing of the auxiliary word.
pub mod aux {
    use super::*;

    /// Bit position of the requester node id (16 bits).
    pub const REQ_POS: u8 = 0;
    /// Bit position of the original request type (8 bits).
    pub const TYPE_POS: u8 = 16;
    /// Bit position of the home node id (16 bits).
    pub const HOME_POS: u8 = 24;

    /// Packs transaction context into an aux word.
    pub fn pack(requester: NodeId, orig: MsgType, home: NodeId) -> u64 {
        (requester.0 as u64) | (orig.raw() << TYPE_POS) | ((home.0 as u64) << HOME_POS)
    }

    /// Requester node recorded in `a`.
    pub fn requester(a: u64) -> NodeId {
        NodeId(a as u16)
    }

    /// Original request type recorded in `a`.
    ///
    /// # Panics
    ///
    /// Panics if the field does not decode to a known message type.
    pub fn orig_type(a: u64) -> MsgType {
        MsgType::from_raw((a >> TYPE_POS) & 0xff).expect("valid packed type")
    }

    /// Home node recorded in `a`.
    pub fn home(a: u64) -> NodeId {
        NodeId((a >> HOME_POS) as u16)
    }
}

/// Emits the `.equ` prologue shared by every handler source file: message
/// types (`MT_*`), field indices (`F_*`), directory bit positions (`B_*`,
/// `OWNER_POS`, ...), aux packing (`AX_*`), and memory-layout constants.
///
/// # Examples
///
/// ```
/// let p = flash_protocol::fields::asm_prologue();
/// assert!(p.contains(".equ MT_NGET,"));
/// assert!(p.contains(".equ F_DIRADDR, 3"));
/// ```
pub fn asm_prologue() -> String {
    use std::fmt::Write as _;
    let mut s = String::with_capacity(4096);
    let mut equ = |name: &str, val: u64| {
        writeln!(s, ".equ {name}, {val}").expect("write to string");
    };

    // Message types.
    for t in MsgType::INCOMING {
        equ(&format!("MT_{}", type_tag(t)), t.raw());
    }
    for t in [
        MsgType::PPut,
        MsgType::PPutX,
        MsgType::PUpgAck,
        MsgType::PInval,
        MsgType::PIntervGet,
        MsgType::PIntervGetX,
        MsgType::PNackRetry,
        MsgType::PIoData,
    ] {
        equ(&format!("MT_{}", type_tag(t)), t.raw());
    }

    // Message-register fields.
    equ("F_TYPE", field::TYPE as u64);
    equ("F_SRC", field::SRC as u64);
    equ("F_ADDR", field::ADDR as u64);
    equ("F_DIRADDR", field::DIRADDR as u64);
    equ("F_AUX", field::AUX as u64);
    equ("F_SPEC", field::SPEC as u64);
    equ("F_SELF", field::SELF as u64);
    equ("F_HOME", field::HOME as u64);

    // Directory header / pointer entry layout.
    equ("B_DIRTY", bits::DIRTY as u64);
    equ("B_PENDING", bits::PENDING as u64);
    equ("B_LOCAL", bits::LOCAL as u64);
    equ("OWNER_POS", bits::OWNER_POS as u64);
    equ("HEAD_POS", bits::HEAD_POS as u64);
    equ("ACKS_POS", bits::ACKS_POS as u64);
    equ("ENODE_POS", bits::ENODE_POS as u64);
    equ("ENEXT_POS", bits::ENEXT_POS as u64);
    equ("FIELD_W", bits::FIELD_W as u64);

    // Aux packing.
    equ("AX_REQ_POS", aux::REQ_POS as u64);
    equ("AX_TYPE_POS", aux::TYPE_POS as u64);
    equ("AX_HOME_POS", aux::HOME_POS as u64);

    // Memory layout.
    equ("PS_BASE", PS_BASE);
    equ("FREE_HEAD", FREE_HEAD_ADDR);
    s
}

/// Upper-snake tag for a message type (`NGet` → `NGET`).
fn type_tag(t: MsgType) -> String {
    format!("{t:?}").to_uppercase()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aux_round_trip() {
        let a = aux::pack(NodeId(300), MsgType::NGetX, NodeId(12));
        assert_eq!(aux::requester(a), NodeId(300));
        assert_eq!(aux::orig_type(a), MsgType::NGetX);
        assert_eq!(aux::home(a), NodeId(12));
    }

    #[test]
    fn prologue_assembles() {
        let src = format!("{}\nentry:\n  li r1, MT_NPUT\n  switch\n", asm_prologue());
        let m = flash_pp::asm::assemble(&src).expect("prologue must assemble");
        assert!(!m.instrs.is_empty());
    }

    #[test]
    fn prologue_values_match_rust_constants() {
        let p = asm_prologue();
        for (name, val) in [
            ("MT_PIGET", MsgType::PiGet.raw()),
            ("MT_NPUT", MsgType::NPut.raw()),
            ("MT_PINVAL", MsgType::PInval.raw()),
            ("B_DIRTY", bits::DIRTY as u64),
            ("HEAD_POS", bits::HEAD_POS as u64),
            ("PS_BASE", PS_BASE),
            ("FREE_HEAD", FREE_HEAD_ADDR),
        ] {
            let needle = format!(".equ {name}, {val}\n");
            assert!(p.contains(&needle), "missing `{needle}`");
        }
    }
}
