//! Streaming trace ingestion: arrivals from a text trace, O(1) memory.

use crate::ArrivalSource;
use flash_cpu::WorkItem;
use flash_engine::{Addr, Cycle};
use std::io::BufRead;

/// An [`ArrivalSource`] that parses one trace line at a time from any
/// `BufRead` — a file, a pipe, a decompressor. Memory stays O(1) (one
/// line buffer) no matter how many references the trace holds, so
/// billion-reference traces replay without materializing anything.
///
/// Trace format, one arrival per line:
///
/// ```text
/// <cycle> r <hex-addr>     # read
/// <cycle> w <hex-addr>     # write
/// <cycle> b <slots>        # busy gap (decimal issue slots)
/// ```
///
/// Blank lines and lines starting with `#` are skipped. Cycles must be
/// nondecreasing; a cycle lower than its predecessor is clamped up (and
/// counted in [`TraceSource::clamped`]) so a slightly disordered trace
/// still satisfies the [`ArrivalSource`] contract.
///
/// # Examples
///
/// ```
/// use flash_traffic::{ArrivalSource, TraceSource};
/// use flash_cpu::WorkItem;
/// use flash_engine::Addr;
/// use std::io::Cursor;
///
/// let trace = "# warmup\n10 r 1000\n25 w 2000\n";
/// let mut src = TraceSource::new(Cursor::new(trace));
/// let (at, item) = src.next_arrival().unwrap();
/// assert_eq!((at.raw(), item), (10, WorkItem::Read(Addr::new(0x1000))));
/// let (at, item) = src.next_arrival().unwrap();
/// assert_eq!((at.raw(), item), (25, WorkItem::Write(Addr::new(0x2000))));
/// assert!(src.next_arrival().is_none());
/// ```
pub struct TraceSource<R> {
    reader: R,
    buf: String,
    line_no: u64,
    last: u64,
    clamped: u64,
}

impl<R: BufRead + Send> TraceSource<R> {
    /// Wraps a buffered reader positioned at the start of the trace.
    pub fn new(reader: R) -> Self {
        TraceSource {
            reader,
            buf: String::new(),
            line_no: 0,
            last: 0,
            clamped: 0,
        }
    }

    /// Out-of-order cycles clamped up so far.
    pub fn clamped(&self) -> u64 {
        self.clamped
    }

    fn parse(&mut self) -> Option<(Cycle, WorkItem)> {
        let line = self.buf.trim();
        if line.is_empty() || line.starts_with('#') {
            return None;
        }
        let mut f = line.split_whitespace();
        let bad =
            |what: &str, ln: u64| -> ! { panic!("trace line {ln}: {what}: {line:?}", line = line) };
        let at: u64 = f
            .next()
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| bad("bad cycle", self.line_no));
        let op = f.next().unwrap_or_else(|| bad("missing op", self.line_no));
        let arg = f
            .next()
            .unwrap_or_else(|| bad("missing operand", self.line_no));
        let item = match op {
            "r" | "w" => {
                let a = u64::from_str_radix(arg, 16)
                    .unwrap_or_else(|_| bad("bad hex address", self.line_no));
                if op == "r" {
                    WorkItem::Read(Addr::new(a))
                } else {
                    WorkItem::Write(Addr::new(a))
                }
            }
            "b" => WorkItem::Busy(
                arg.parse()
                    .unwrap_or_else(|_| bad("bad busy count", self.line_no)),
            ),
            _ => bad("unknown op", self.line_no),
        };
        let at = if at < self.last {
            self.clamped += 1;
            self.last
        } else {
            self.last = at;
            at
        };
        Some((Cycle::new(at), item))
    }
}

impl<R: BufRead + Send> ArrivalSource for TraceSource<R> {
    fn next_arrival(&mut self) -> Option<(Cycle, WorkItem)> {
        loop {
            self.buf.clear();
            self.line_no += 1;
            let n = self.reader.read_line(&mut self.buf).expect("trace read");
            if n == 0 {
                return None;
            }
            if let Some(arrival) = self.parse() {
                return Some(arrival);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn src(s: &str) -> TraceSource<Cursor<String>> {
        TraceSource::new(Cursor::new(s.to_string()))
    }

    #[test]
    fn parses_all_ops_and_skips_noise() {
        let mut t = src("# header\n\n5 r ff80\n5 w 100\n9 b 12\n");
        assert_eq!(
            t.next_arrival(),
            Some((Cycle::new(5), WorkItem::Read(Addr::new(0xff80))))
        );
        assert_eq!(
            t.next_arrival(),
            Some((Cycle::new(5), WorkItem::Write(Addr::new(0x100))))
        );
        assert_eq!(t.next_arrival(), Some((Cycle::new(9), WorkItem::Busy(12))));
        assert_eq!(t.next_arrival(), None);
        assert_eq!(t.clamped(), 0);
    }

    #[test]
    fn out_of_order_cycles_clamp_up() {
        let mut t = src("10 r 0\n4 r 80\n12 r 100\n");
        assert_eq!(t.next_arrival().unwrap().0.raw(), 10);
        assert_eq!(t.next_arrival().unwrap().0.raw(), 10, "clamped to last");
        assert_eq!(t.next_arrival().unwrap().0.raw(), 12);
        assert_eq!(t.clamped(), 1);
    }

    #[test]
    #[should_panic(expected = "unknown op")]
    fn bad_op_panics_with_line_number() {
        src("3 x 10\n").next_arrival();
    }

    #[test]
    fn memory_is_bounded_by_line_length() {
        // A long trace streams through one reusable line buffer.
        let body: String = (0..10_000)
            .map(|i| format!("{i} r {:x}\n", i * 128))
            .collect();
        let mut t = src(&body);
        let mut n = 0;
        while t.next_arrival().is_some() {
            n += 1;
        }
        assert_eq!(n, 10_000);
        assert!(t.buf.capacity() < 4096, "buffer stays line-sized");
    }
}
