//! Seeded arrival schedules: when the next reference lands.

use flash_engine::DetRng;

/// The shape of an arrival process. All variants are parameterized by the
/// spec-level mean inter-arrival gap, so swapping patterns changes
/// *burstiness* at a fixed offered load.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Pattern {
    /// Memoryless (exponential) inter-arrival gaps — the M in M/G/1.
    Poisson,
    /// On/off trains: `burst` arrivals spaced `burst_gap` cycles apart,
    /// separated by exponential idle gaps sized so the long-run rate
    /// still matches the spec's mean gap.
    Bursty {
        /// Arrivals per train (≥ 1).
        burst: u64,
        /// Cycles between arrivals inside a train.
        burst_gap: u64,
    },
    /// Piecewise-constant rate: cycles through `(duration_cycles,
    /// rate_permille)` phases, where 1000 permille is the spec's base
    /// rate, 2000 is double rate (half the mean gap), 500 is half rate.
    /// A diurnal load curve in miniature.
    Phased {
        /// The repeating phase list; must be non-empty with nonzero
        /// durations and rates.
        phases: Vec<(u64, u32)>,
    },
}

/// Draws an exponential gap with the given mean, at least 1 cycle.
fn exp_gap(rng: &mut DetRng, mean: f64) -> u64 {
    let u = rng.unit().max(1e-12);
    let g = (-u.ln() * mean).round();
    (g as u64).max(1)
}

/// A running arrival schedule: owns the pattern state and the current
/// clock, and hands out successive arrival cycles.
///
/// # Examples
///
/// ```
/// use flash_engine::DetRng;
/// use flash_traffic::{ArrivalClock, Pattern};
///
/// let mut c = ArrivalClock::new(Pattern::Poisson, 50, DetRng::for_stream(1, 0));
/// let (a, b) = (c.tick(), c.tick());
/// assert!(b >= a, "arrival cycles never go backwards");
/// ```
#[derive(Debug, Clone)]
pub struct ArrivalClock {
    pattern: Pattern,
    mean_gap: f64,
    now: u64,
    rng: DetRng,
    /// Arrivals left in the current train (`Bursty`).
    burst_left: u64,
    /// Index and remaining cycles of the current phase (`Phased`).
    phase: usize,
    phase_left: u64,
}

impl ArrivalClock {
    /// Creates a clock producing arrivals with the given long-run mean
    /// inter-arrival gap (cycles per arrival).
    ///
    /// # Panics
    ///
    /// Panics on degenerate patterns: `mean_gap == 0`, a zero-length
    /// burst, or an empty/zero phase table.
    pub fn new(pattern: Pattern, mean_gap: u64, rng: DetRng) -> Self {
        assert!(mean_gap > 0, "mean gap must be at least one cycle");
        match &pattern {
            Pattern::Bursty { burst, .. } => assert!(*burst >= 1, "empty burst"),
            Pattern::Phased { phases } => {
                assert!(!phases.is_empty(), "empty phase table");
                assert!(
                    phases.iter().all(|&(d, r)| d > 0 && r > 0),
                    "phases need nonzero duration and rate"
                );
            }
            Pattern::Poisson => {}
        }
        let phase_left = match &pattern {
            Pattern::Phased { phases } => phases[0].0,
            _ => 0,
        };
        ArrivalClock {
            pattern,
            mean_gap: mean_gap as f64,
            now: 0,
            rng,
            burst_left: 0,
            phase: 0,
            phase_left,
        }
    }

    /// The cycle of the next arrival. Nondecreasing across calls.
    pub fn tick(&mut self) -> flash_engine::Cycle {
        let gap = match &self.pattern {
            Pattern::Poisson => exp_gap(&mut self.rng, self.mean_gap),
            Pattern::Bursty { burst, burst_gap } => {
                if self.burst_left > 0 {
                    self.burst_left -= 1;
                    *burst_gap
                } else {
                    // Start a new train. The idle gap absorbs the rest of
                    // the per-train time budget (`burst * mean_gap`) not
                    // spent inside the train, keeping the long-run rate
                    // at the spec's mean.
                    self.burst_left = burst - 1;
                    let in_train = burst_gap * (burst - 1);
                    let idle = (self.mean_gap * *burst as f64 - in_train as f64).max(1.0);
                    exp_gap(&mut self.rng, idle)
                }
            }
            Pattern::Phased { phases } => {
                let (_, rate_permille) = phases[self.phase];
                let mean = self.mean_gap * 1000.0 / rate_permille as f64;
                let gap = exp_gap(&mut self.rng, mean);
                // Advance the phase position by the gap we just spent.
                let mut left = gap;
                while left >= self.phase_left {
                    left -= self.phase_left;
                    self.phase = (self.phase + 1) % phases.len();
                    self.phase_left = phases[self.phase].0;
                }
                self.phase_left -= left;
                gap
            }
        };
        self.now += gap;
        flash_engine::Cycle::new(self.now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> DetRng {
        DetRng::for_stream(7, 0)
    }

    #[test]
    fn poisson_mean_roughly_matches() {
        let mut c = ArrivalClock::new(Pattern::Poisson, 40, rng());
        let n = 20_000;
        let mut last = 0;
        for _ in 0..n {
            last = c.tick().raw();
        }
        let mean = last as f64 / n as f64;
        assert!((mean - 40.0).abs() < 2.0, "mean gap was {mean}");
    }

    #[test]
    fn bursty_long_run_rate_matches_mean() {
        let mut c = ArrivalClock::new(
            Pattern::Bursty {
                burst: 8,
                burst_gap: 2,
            },
            40,
            rng(),
        );
        let n = 20_000;
        let mut last = 0;
        for _ in 0..n {
            last = c.tick().raw();
        }
        let mean = last as f64 / n as f64;
        assert!((mean - 40.0).abs() < 3.0, "mean gap was {mean}");
    }

    #[test]
    fn bursty_trains_are_tight() {
        let mut c = ArrivalClock::new(
            Pattern::Bursty {
                burst: 4,
                burst_gap: 3,
            },
            100,
            rng(),
        );
        // First arrival opens a train; the next three follow at exactly
        // the train spacing.
        let a0 = c.tick().raw();
        assert_eq!(c.tick().raw(), a0 + 3);
        assert_eq!(c.tick().raw(), a0 + 6);
        assert_eq!(c.tick().raw(), a0 + 9);
        // Then a fresh (exponential) idle gap.
        assert!(c.tick().raw() > a0 + 9);
    }

    #[test]
    fn phased_shifts_rate_between_phases() {
        // Phase A at 4x the base rate, phase B at 1/4: phase A must pack
        // many more arrivals into the same duration.
        let mk = |phases| ArrivalClock::new(Pattern::Phased { phases }, 40, rng());
        let count_until = |c: &mut ArrivalClock, limit: u64| {
            let mut n = 0u64;
            while c.tick().raw() < limit {
                n += 1;
            }
            n
        };
        let fast = count_until(&mut mk(vec![(1_000_000, 4000)]), 100_000);
        let slow = count_until(&mut mk(vec![(1_000_000, 250)]), 100_000);
        assert!(
            fast > slow * 8,
            "4x vs 1/4x rate should differ ~16x ({fast} vs {slow})"
        );
    }

    #[test]
    fn deterministic_replay() {
        let seq = |pattern: Pattern| -> Vec<u64> {
            let mut c = ArrivalClock::new(pattern, 30, DetRng::for_stream(9, 3));
            (0..64).map(|_| c.tick().raw()).collect()
        };
        let p = Pattern::Bursty {
            burst: 5,
            burst_gap: 1,
        };
        assert_eq!(seq(p.clone()), seq(p));
    }
}
