//! Object popularity: which line a reference touches.

use flash_engine::DetRng;

/// How references distribute over the object set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Popularity {
    /// Every object equally likely.
    Uniform,
    /// Zipfian: object `i` drawn with weight `1/(i+1)^s`, where
    /// `s = theta_permille / 1000`. `theta_permille = 1000` is classic
    /// Zipf; smaller flattens toward uniform, larger sharpens the head.
    Zipf {
        /// Skew exponent in permille (`1000` = s of 1.0).
        theta_permille: u32,
    },
    /// Hotspot: with probability `hot_permille / 1000` the reference
    /// lands uniformly in the first `hot_objects` objects; otherwise
    /// uniformly in the remainder.
    Hotspot {
        /// Probability (permille) of hitting the hot set.
        hot_permille: u32,
        /// Size of the hot set (clamped to the object count).
        hot_objects: u64,
    },
}

/// A sampler over `objects` object indices under a [`Popularity`] law.
///
/// Memory: O(1) for `Uniform` and `Hotspot`; O(objects) for `Zipf` (a
/// precomputed cumulative table, binary-searched per draw). Traffic specs
/// bound the object count, so this is the cheap-and-exact choice over
/// rejection-inversion sampling.
///
/// # Examples
///
/// ```
/// use flash_engine::DetRng;
/// use flash_traffic::{ObjectSampler, Popularity};
///
/// let s = ObjectSampler::new(Popularity::Uniform, 16);
/// let mut rng = DetRng::for_stream(1, 1);
/// let mut sampler = s;
/// assert!(sampler.draw(&mut rng) < 16);
/// ```
#[derive(Debug, Clone)]
pub struct ObjectSampler {
    law: Popularity,
    objects: u64,
    /// Cumulative weights for `Zipf`, empty otherwise.
    cdf: Vec<f64>,
}

impl ObjectSampler {
    /// Builds a sampler over `objects` indices (`0..objects`).
    ///
    /// # Panics
    ///
    /// Panics if `objects` is zero.
    pub fn new(law: Popularity, objects: u64) -> Self {
        assert!(objects > 0, "need at least one object");
        let cdf = match &law {
            Popularity::Zipf { theta_permille } => {
                let s = *theta_permille as f64 / 1000.0;
                let mut acc = 0.0;
                let mut cdf = Vec::with_capacity(objects as usize);
                for i in 0..objects {
                    acc += 1.0 / ((i + 1) as f64).powf(s);
                    cdf.push(acc);
                }
                cdf
            }
            _ => Vec::new(),
        };
        ObjectSampler { law, objects, cdf }
    }

    /// Draws one object index in `[0, objects)`.
    pub fn draw(&mut self, rng: &mut DetRng) -> u64 {
        match &self.law {
            Popularity::Uniform => rng.below(self.objects),
            Popularity::Zipf { .. } => {
                let total = *self.cdf.last().expect("nonempty cdf");
                let target = rng.unit() * total;
                // First cumulative weight >= target.
                self.cdf.partition_point(|&c| c < target) as u64
            }
            Popularity::Hotspot {
                hot_permille,
                hot_objects,
            } => {
                let hot = (*hot_objects).clamp(1, self.objects);
                if hot == self.objects || rng.below(1000) < *hot_permille as u64 {
                    rng.below(hot)
                } else {
                    hot + rng.below(self.objects - hot)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counts(law: Popularity, objects: u64, draws: usize) -> Vec<u64> {
        let mut s = ObjectSampler::new(law, objects);
        let mut rng = DetRng::for_stream(13, 1);
        let mut c = vec![0u64; objects as usize];
        for _ in 0..draws {
            c[s.draw(&mut rng) as usize] += 1;
        }
        c
    }

    #[test]
    fn uniform_covers_all_objects() {
        let c = counts(Popularity::Uniform, 8, 4_000);
        assert!(c.iter().all(|&n| n > 300), "uniform must touch all: {c:?}");
    }

    #[test]
    fn zipf_head_dominates_tail() {
        let c = counts(
            Popularity::Zipf {
                theta_permille: 1000,
            },
            64,
            20_000,
        );
        assert!(
            c[0] > 8 * c[32],
            "object 0 should dwarf the median object ({} vs {})",
            c[0],
            c[32]
        );
        // Every index stays in range by construction; the last cumulative
        // bucket must still be reachable.
        assert!(c.iter().sum::<u64>() == 20_000);
    }

    #[test]
    fn hotspot_concentrates() {
        let c = counts(
            Popularity::Hotspot {
                hot_permille: 900,
                hot_objects: 4,
            },
            64,
            20_000,
        );
        let hot: u64 = c[..4].iter().sum();
        assert!(
            hot > 16_000,
            "90% of draws should land in the 4-object hot set ({hot})"
        );
    }

    #[test]
    fn zipf_draw_in_range() {
        let mut s = ObjectSampler::new(
            Popularity::Zipf {
                theta_permille: 800,
            },
            10,
        );
        let mut rng = DetRng::for_stream(5, 2);
        for _ in 0..1000 {
            assert!(s.draw(&mut rng) < 10);
        }
    }
}
