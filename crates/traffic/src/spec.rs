//! Declarative traffic specs and the sources they build.

use crate::popularity::{ObjectSampler, Popularity};
use crate::schedule::{ArrivalClock, Pattern};
use crate::ArrivalSource;
use flash_cpu::WorkItem;
use flash_engine::{Addr, Cycle, DetRng, LINE_BYTES};

/// A complete open-loop traffic description: everything needed to build
/// one deterministic [`ArrivalSource`] per node.
///
/// Object `o` lives at line `o / nodes` of node `o % nodes`'s memory
/// (addresses use the `Placement::Explicit` encoding, home in bits
/// 32..48), so a uniform object draw spreads homes round-robin and a
/// Zipf/hotspot head concentrates traffic on the low-numbered nodes —
/// the §4.3 hot-spot story, arrived at from the load side.
#[derive(Debug, Clone, PartialEq)]
pub struct TrafficSpec {
    /// Nodes (= processors = per-node sources).
    pub nodes: u16,
    /// Distinct objects (cache lines) the traffic touches.
    pub objects: u64,
    /// References per node over the whole run (split across tenants).
    pub items_per_node: u64,
    /// Long-run mean cycles between arrivals at one node.
    pub mean_gap: u64,
    /// Store fraction in permille (the rest are loads).
    pub write_permille: u32,
    /// Arrival schedule shape.
    pub pattern: Pattern,
    /// Object popularity law.
    pub popularity: Popularity,
    /// Independent interleaved streams per node (≥ 1). Each tenant has
    /// its own clock and its own popularity stream; the node sees the
    /// time-ordered merge.
    pub tenants: u16,
    /// Run seed. Same spec + same seed = bit-identical arrivals.
    pub seed: u64,
}

impl TrafficSpec {
    /// A plain Poisson/uniform spec — the baseline M-style load.
    pub fn poisson(
        nodes: u16,
        objects: u64,
        items_per_node: u64,
        mean_gap: u64,
        seed: u64,
    ) -> Self {
        TrafficSpec {
            nodes,
            objects,
            items_per_node,
            mean_gap,
            write_permille: 250,
            pattern: Pattern::Poisson,
            popularity: Popularity::Uniform,
            tenants: 1,
            seed,
        }
    }

    /// The address object `o` maps to (see the type docs for the layout).
    pub fn object_addr(&self, o: u64) -> Addr {
        let home = o % self.nodes as u64;
        let line = o / self.nodes as u64;
        Addr::new((home << 32) | (line * LINE_BYTES))
    }

    /// Builds the arrival source for `node`.
    ///
    /// # Panics
    ///
    /// Panics if the spec is degenerate (zero nodes, objects or tenants).
    pub fn source_for(&self, node: u16) -> Box<dyn ArrivalSource> {
        assert!(self.nodes > 0 && self.tenants > 0, "degenerate spec");
        assert!(node < self.nodes, "node out of range");
        if self.tenants == 1 {
            Box::new(self.tenant_source(node, 0, self.items_per_node))
        } else {
            let t = self.tenants as u64;
            let each = self.items_per_node / t;
            let spare = self.items_per_node % t;
            let tenants = (0..self.tenants)
                .map(|tenant| {
                    let items = each + if (tenant as u64) < spare { 1 } else { 0 };
                    Box::new(self.tenant_source(node, tenant, items)) as Box<dyn ArrivalSource>
                })
                .collect();
            Box::new(TenantMix::new(tenants))
        }
    }

    /// All per-node sources, index = node.
    pub fn sources(&self) -> Vec<Box<dyn ArrivalSource>> {
        (0..self.nodes).map(|n| self.source_for(n)).collect()
    }

    fn tenant_source(&self, node: u16, tenant: u16, items: u64) -> OpenLoopSource {
        // Distinct, order-independent rng streams per (node, tenant, role).
        let id = |role: u64| (role << 48) | ((node as u64) << 16) | tenant as u64;
        OpenLoopSource {
            clock: ArrivalClock::new(
                self.pattern.clone(),
                self.mean_gap,
                DetRng::for_stream(self.seed, id(1)),
            ),
            sampler: ObjectSampler::new(self.popularity.clone(), self.objects),
            rng: DetRng::for_stream(self.seed, id(2)),
            spec: self.clone(),
            left: items,
        }
    }
}

/// One tenant's arrival stream: a clock, a popularity sampler, and a
/// finite reference budget.
#[derive(Debug, Clone)]
pub struct OpenLoopSource {
    clock: ArrivalClock,
    sampler: ObjectSampler,
    rng: DetRng,
    spec: TrafficSpec,
    left: u64,
}

impl ArrivalSource for OpenLoopSource {
    fn next_arrival(&mut self) -> Option<(Cycle, WorkItem)> {
        if self.left == 0 {
            return None;
        }
        self.left -= 1;
        let at = self.clock.tick();
        let addr = self.spec.object_addr(self.sampler.draw(&mut self.rng));
        let item = if self.rng.below(1000) < self.spec.write_permille as u64 {
            WorkItem::Write(addr)
        } else {
            WorkItem::Read(addr)
        };
        Some((at, item))
    }
}

/// Time-ordered merge of independent tenant sources: the node observes
/// one interleaved arrival stream. Ties break toward the lowest tenant
/// index, deterministically.
pub struct TenantMix {
    /// `(peeked next arrival, source)` per tenant.
    tenants: Vec<PeekedTenant>,
}

/// One tenant in a [`TenantMix`]: its peeked next arrival and the
/// source it came from.
type PeekedTenant = (Option<(Cycle, WorkItem)>, Box<dyn ArrivalSource>);

impl TenantMix {
    /// Merges the given tenant sources.
    pub fn new(sources: Vec<Box<dyn ArrivalSource>>) -> Self {
        TenantMix {
            tenants: sources
                .into_iter()
                .map(|mut s| (s.next_arrival(), s))
                .collect(),
        }
    }
}

impl ArrivalSource for TenantMix {
    fn next_arrival(&mut self) -> Option<(Cycle, WorkItem)> {
        let best = self
            .tenants
            .iter()
            .enumerate()
            .filter_map(|(i, (peek, _))| peek.map(|(at, _)| (at, i)))
            .min()?
            .1;
        let slot = &mut self.tenants[best];
        let out = slot.0.take();
        slot.0 = slot.1.next_arrival();
        out
    }
}

/// Flattens the first `limit` arrivals of `src` into a closed-loop item
/// vector, turning inter-arrival gaps into `Busy` slots (4 issue slots
/// per cycle).
///
/// This is how `flash-minimize` replays a shrunken open-loop failure
/// with the ordinary stream machinery: the materialized stream paces the
/// processor *approximately* like the arrival schedule did (a busy gap
/// stalls the pipeline where the mailbox kept it parked), which is
/// exactly the fidelity a shrink candidate needs — the predicate decides
/// whether the failure survived.
pub fn materialize(src: &mut dyn ArrivalSource, limit: usize) -> Vec<WorkItem> {
    let mut items = Vec::new();
    let mut last = 0u64;
    for _ in 0..limit {
        let Some((at, item)) = src.next_arrival() else {
            break;
        };
        let gap = at.raw().saturating_sub(last);
        if gap > 0 {
            items.push(WorkItem::Busy(gap * 4));
        }
        items.push(item);
        last = at.raw();
    }
    items
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> TrafficSpec {
        TrafficSpec::poisson(4, 64, 200, 30, 11)
    }

    #[test]
    fn arrivals_are_monotone_and_budgeted() {
        let mut src = spec().source_for(2);
        let mut last = 0;
        let mut n = 0;
        while let Some((at, item)) = src.next_arrival() {
            assert!(at.raw() >= last);
            assert!(matches!(item, WorkItem::Read(_) | WorkItem::Write(_)));
            last = at.raw();
            n += 1;
        }
        assert_eq!(n, 200);
    }

    #[test]
    fn nodes_get_independent_streams() {
        let take = |node: u16| -> Vec<(u64, WorkItem)> {
            let mut src = spec().source_for(node);
            (0..16)
                .map(|_| {
                    let (at, it) = src.next_arrival().unwrap();
                    (at.raw(), it)
                })
                .collect()
        };
        assert_ne!(take(0), take(1), "per-node streams must differ");
        assert_eq!(take(0), take(0), "and replay identically");
    }

    #[test]
    fn object_addresses_stripe_homes() {
        let s = spec();
        assert_eq!(s.object_addr(0).raw() >> 32, 0);
        assert_eq!(s.object_addr(1).raw() >> 32, 1);
        assert_eq!(s.object_addr(5).raw() >> 32, 1);
        assert_eq!(s.object_addr(4).raw() & 0xFFFF_FFFF, LINE_BYTES);
    }

    #[test]
    fn tenant_mix_is_time_ordered_and_complete() {
        let mut s = spec();
        s.tenants = 3;
        s.items_per_node = 100;
        let mut src = s.source_for(0);
        let mut last = 0;
        let mut n = 0;
        while let Some((at, _)) = src.next_arrival() {
            assert!(at.raw() >= last, "merge must be time-ordered");
            last = at.raw();
            n += 1;
        }
        assert_eq!(n, 100, "tenant split must conserve the item budget");
    }

    #[test]
    fn materialize_preserves_pacing() {
        let mut src = spec().source_for(1);
        let (first_at, first_item) = {
            let mut probe = spec().source_for(1);
            probe.next_arrival().unwrap()
        };
        let items = materialize(src.as_mut(), 10);
        // Leading busy gap covers the first inter-arrival time.
        assert_eq!(items[0], WorkItem::Busy(first_at.raw() * 4));
        assert_eq!(items[1], first_item);
        assert_eq!(
            items
                .iter()
                .filter(|i| matches!(i, WorkItem::Read(_) | WorkItem::Write(_)))
                .count(),
            10
        );
    }

    #[test]
    fn writes_respect_the_permille_knob() {
        let mut s = spec();
        s.write_permille = 0;
        s.items_per_node = 500;
        let mut src = s.source_for(0);
        while let Some((_, item)) = src.next_arrival() {
            assert!(matches!(item, WorkItem::Read(_)), "0 permille = no writes");
        }
    }
}
