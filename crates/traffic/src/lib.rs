//! Open-loop traffic generation for the FLASH machine.
//!
//! Every workload in `flash-workloads` is *closed-loop*: a processor asks
//! its stream for the next reference the instant the previous one
//! retires, so the machine is never observed under a load it did not set
//! itself. This crate supplies the other regime, the one where the
//! paper's flexibility-cost question bites hardest: references *arrive*
//! on a wall-clock schedule whether or not the machine has kept up, and
//! the interesting observables are queueing — admission backlog, p99/p999
//! latency, the knee where offered load crosses capacity.
//!
//! The pieces:
//!
//! * [`ArrivalSource`] — the one-method contract: a monotone stream of
//!   `(cycle, WorkItem)` arrivals. The machine schedules an event per
//!   arrival and feeds an admission mailbox (`flash_cpu::Mailbox`).
//! * [`Pattern`] / [`ArrivalClock`] — seeded arrival schedules: Poisson
//!   (memoryless), bursty (on/off trains), phased (piecewise rates).
//! * [`Popularity`] / [`ObjectSampler`] — which object a reference
//!   touches: uniform, Zipfian, or hotspot.
//! * [`TrafficSpec`] — a declarative description (nodes × tenants ×
//!   pattern × popularity × load) that builds one [`ArrivalSource`] per
//!   node, deterministically from a seed.
//! * [`TraceSource`] — streaming trace ingestion: arrivals parsed
//!   line-by-line from any `BufRead`, O(1) memory no matter how long the
//!   trace.
//! * [`materialize`] — flattens a bounded prefix of a source into a
//!   closed-loop item vector (`Busy` gaps standing in for inter-arrival
//!   time), the bridge `flash-minimize` uses to shrink open-loop
//!   failures with the existing stream machinery.
//!
//! Everything is driven by [`flash_engine::DetRng`]: the same spec and
//! seed produce bit-identical arrival sequences on every platform, which
//! is what lets `BENCH_PR10.json` demand byte-identical reports across
//! shard counts and PP backends.
//!
//! # Examples
//!
//! ```
//! use flash_traffic::{ArrivalSource, TrafficSpec};
//!
//! let spec = TrafficSpec::poisson(4, 64, 100, 50, 1);
//! let mut src = spec.source_for(0);
//! let mut last = 0;
//! let mut n = 0;
//! while let Some((at, _item)) = src.next_arrival() {
//!     assert!(at.raw() >= last, "arrivals are monotone");
//!     last = at.raw();
//!     n += 1;
//! }
//! assert_eq!(n, 100, "finite source delivers exactly its budget");
//! ```

#![deny(missing_docs)]

pub mod popularity;
pub mod schedule;
pub mod spec;
pub mod trace;

pub use popularity::{ObjectSampler, Popularity};
pub use schedule::{ArrivalClock, Pattern};
pub use spec::{materialize, OpenLoopSource, TenantMix, TrafficSpec};
pub use trace::TraceSource;

use flash_cpu::WorkItem;
use flash_engine::Cycle;

/// A stream of timed reference arrivals for one processor.
///
/// The contract:
///
/// * Cycles are **nondecreasing** — each arrival happens at or after the
///   previous one. Ties are legal (a burst can land several references on
///   the same cycle; they queue).
/// * `None` is **final** — the source is exhausted and the machine closes
///   the processor's mailbox.
/// * Items are plain references (`Read`/`Write`/`Busy`); sources must not
///   emit `WorkItem::Done` (end-of-stream is `None`) and synchronization
///   items (`Barrier`/`Lock`/`Unlock`) are rejected by the machine, since
///   an open-loop node has no partner to rendezvous with.
///
/// `Send` is a supertrait so a source can live on the shard worker that
/// owns its node.
pub trait ArrivalSource: Send {
    /// The next `(arrival cycle, reference)`, or `None` when exhausted.
    fn next_arrival(&mut self) -> Option<(Cycle, WorkItem)>;
}
