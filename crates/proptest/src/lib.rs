//! Minimal, dependency-free property-testing shim.
//!
//! This workspace builds in fully offline environments where the real
//! `proptest` crate cannot be fetched from a registry. This crate
//! re-implements exactly the API subset the workspace's tests use:
//!
//! * `proptest!` with an optional `#![proptest_config(..)]` header and
//!   any number of `#[test] fn name(x in strategy, ..) { .. }` items,
//! * `prop_assert!` / `prop_assert_eq!` (panic-based, no shrinking),
//! * `prop_oneof!` (weighted and unweighted),
//! * `Strategy` (`type Value`, `prop_map`, `boxed`), `Just`, `any::<T>()`,
//! * integer range strategies, `&str` alternation strategies
//!   (`"add|or|xor"` picks one literal, `Value = String`),
//! * tuple strategies up to arity 6,
//! * `proptest::collection::vec(strategy, size)` with exact, `a..b` and
//!   `a..=b` size specs,
//! * `ProptestConfig::with_cases(n)`.
//!
//! Semantics differences from the real crate: generation is a simple
//! deterministic splitmix64 stream seeded from the test name and case
//! index (reproducible across runs and platforms), and failures panic
//! immediately without input shrinking. For the differential/model-based
//! tests in this repo, that trade-off keeps determinism while removing
//! the network dependency.

pub mod test_runner {
    /// Run configuration. Only `cases` is consulted.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// Deterministic generator: splitmix64 over a seed derived from the
    /// test's fully qualified name and the case index.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    const GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(GOLDEN);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl TestRng {
        pub fn from_seed(seed: u64) -> Self {
            TestRng { state: seed }
        }

        /// Seed for one named test case: FNV-1a over the name, mixed with
        /// the case index through splitmix64.
        pub fn for_case(name: &str, case: u32) -> Self {
            let mut h = 0xCBF2_9CE4_8422_2325u64;
            for b in name.as_bytes() {
                h ^= *b as u64;
                h = h.wrapping_mul(0x100_0000_01B3);
            }
            let mut s = h ^ (case as u64).wrapping_mul(GOLDEN);
            // One warm-up round decorrelates nearby case indices.
            let _ = splitmix64(&mut s);
            TestRng { state: s }
        }

        pub fn next_u64(&mut self) -> u64 {
            splitmix64(&mut self.state)
        }

        /// Uniform value in `0..bound` (`bound > 0`). Modulo bias is
        /// irrelevant at test-generation quality.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            self.next_u64() % bound
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};
    use std::rc::Rc;

    /// A generator of values. No value trees / shrinking: `generate`
    /// produces a fresh value from the RNG stream.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { source: self, f }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy {
                gen: Rc::new(move |rng| self.generate(rng)),
            }
        }
    }

    /// `prop_map` adapter.
    #[derive(Clone)]
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.source.generate(rng))
        }
    }

    /// Type-erased strategy (used by `prop_oneof!` arms).
    pub struct BoxedStrategy<V> {
        gen: Rc<dyn Fn(&mut TestRng) -> V>,
    }

    impl<V> Clone for BoxedStrategy<V> {
        fn clone(&self) -> Self {
            BoxedStrategy {
                gen: Rc::clone(&self.gen),
            }
        }
    }

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            (self.gen)(rng)
        }
    }

    /// Always yields a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Types with a default "any value" strategy.
    pub trait Arbitrary {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    pub struct Any<T>(PhantomData<T>);

    impl<T> Clone for Any<T> {
        fn clone(&self) -> Self {
            Any(PhantomData)
        }
    }

    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let lo = self.start as i128;
                    let hi = self.end as i128;
                    assert!(lo < hi, "empty range strategy");
                    let span = (hi - lo) as u64;
                    (lo + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let lo = *self.start() as i128;
                    let hi = *self.end() as i128;
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo) as u128 + 1;
                    if span > u64::MAX as u128 {
                        return rng.next_u64() as $t;
                    }
                    (lo + rng.below(span as u64) as i128) as $t
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// `"add|and|or"` picks one of the `|`-separated literals.
    impl Strategy for &str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            let parts: Vec<&str> = self.split('|').collect();
            parts[rng.below(parts.len() as u64) as usize].to_string()
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*};
    }
    impl_tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
    }

    /// Weighted union over same-valued strategies (`prop_oneof!`).
    pub struct Union<V> {
        total: u32,
        arms: Vec<(u32, BoxedStrategy<V>)>,
    }

    impl<V> Union<V> {
        pub fn new(arms: Vec<(u32, BoxedStrategy<V>)>) -> Self {
            let total = arms.iter().map(|(w, _)| *w).sum();
            assert!(total > 0, "prop_oneof! needs at least one positive weight");
            Union { total, arms }
        }
    }

    impl<V> Clone for Union<V> {
        fn clone(&self) -> Self {
            Union {
                total: self.total,
                arms: self.arms.clone(),
            }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let mut pick = rng.below(self.total as u64) as u32;
            for (w, s) in &self.arms {
                if pick < *w {
                    return s.generate(rng);
                }
                pick -= *w;
            }
            unreachable!("weight accounting broke")
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Size specification for `collection::vec`: an exact `usize`, `a..b`,
    /// or `a..=b`.
    pub trait IntoSizeRange {
        /// (inclusive lo, inclusive hi)
        fn bounds(&self) -> (usize, usize);
    }

    impl IntoSizeRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self)
        }
    }

    impl IntoSizeRange for Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            assert!(self.start < self.end, "empty vec size range");
            (self.start, self.end - 1)
        }
    }

    impl IntoSizeRange for RangeInclusive<usize> {
        fn bounds(&self) -> (usize, usize) {
            (*self.start(), *self.end())
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        lo: usize,
        hi: usize,
    }

    pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (lo, hi) = size.bounds();
        VecStrategy { element, lo, hi }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.lo == self.hi {
                self.lo
            } else {
                self.lo + rng.below((self.hi - self.lo + 1) as u64) as usize
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Panic-based stand-in for proptest's early-return assertion.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Weighted (or unweighted) choice between strategies with a common
/// `Value` type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $( (($weight) as u32, $crate::strategy::Strategy::boxed($strat)) ),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::prop_oneof![$(1 => $strat),+]
    };
}

/// The test-wrapping macro: expands each contained
/// `#[test] fn name(pat in strategy, ..) { body }` into a plain `#[test]`
/// that loops over `cases` deterministic generations.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr)
      $(
        $(#[$attr:meta])*
        fn $name:ident( $($param:ident in $strat:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$attr])*
            fn $name() {
                let __cfg: $crate::test_runner::ProptestConfig = $cfg;
                for __case in 0..__cfg.cases {
                    let mut __rng = $crate::test_runner::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        __case,
                    );
                    $(
                        let $param = $crate::strategy::Strategy::generate(&($strat), &mut __rng);
                    )+
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Toy {
        A(u8),
        B(bool),
        C,
    }

    fn toy() -> impl Strategy<Value = Toy> {
        prop_oneof![
            2 => (0u8..10).prop_map(Toy::A),
            1 => any::<bool>().prop_map(Toy::B),
            1 => Just(Toy::C),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(
            a in 0u8..10,
            b in -5i16..5,
            c in 1usize..=4,
            v in crate::collection::vec(toy(), 1..8),
        ) {
            prop_assert!(a < 10);
            prop_assert!((-5..5).contains(&b));
            prop_assert!((1..=4).contains(&c));
            prop_assert!(!v.is_empty() && v.len() < 8);
            for t in &v {
                if let Toy::A(x) = t {
                    prop_assert!(*x < 10);
                }
            }
        }

        #[test]
        fn strings_pick_alternatives(op in "add|sub|xor") {
            prop_assert!(["add", "sub", "xor"].contains(&op.as_str()));
        }
    }

    #[test]
    fn determinism_across_runs() {
        use crate::strategy::Strategy;
        let s = crate::collection::vec(0u64..1000, 4usize);
        let mut r1 = crate::test_runner::TestRng::for_case("x", 7);
        let mut r2 = crate::test_runner::TestRng::for_case("x", 7);
        assert_eq!(s.generate(&mut r1), s.generate(&mut r2));
        let mut r3 = crate::test_runner::TestRng::for_case("x", 8);
        assert_ne!(s.generate(&mut r3), s.generate(&mut r2));
    }
}
