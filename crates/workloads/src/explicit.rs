//! Bounded replay from explicit reference lists.
//!
//! The generator workloads in [`crate::apps`] produce their streams
//! lazily and (for the paper sizes) nearly endlessly — fine for
//! measurement, useless for delta debugging, which needs a finite list it
//! can cut pieces out of. [`ExplicitWorkload`] is the materialized form:
//! every processor's references as a plain `Vec<WorkItem>`, plus the
//! placement policy and DMA script the originals carried.
//! [`ExplicitWorkload::materialize`] converts any workload by pulling a
//! bounded prefix of each stream; the result replays exactly like the
//! original up to the bound (streams are consumed item-for-item, and a
//! finished stream keeps returning `Done` either way).

use crate::apps::Workload;
use flash::config::Placement;
use flash_cpu::{RefStream, SliceStream, WorkItem};
use flash_engine::{Addr, Cycle, NodeId};

/// A workload whose per-processor reference streams are explicit,
/// finite item lists — the form `flash-minimize` shrinks and the
/// `flash-repro-v1` artifact stores.
///
/// # Examples
///
/// ```
/// use flash_workloads::{ExplicitWorkload, Fft, Workload};
///
/// let fft = Fft::scaled(4, 64);
/// let bounded = ExplicitWorkload::materialize(&fft, 500);
/// assert_eq!(bounded.procs(), 4);
/// assert!(bounded.streams.iter().all(|s| s.len() <= 500));
/// ```
#[derive(Debug, Clone)]
pub struct ExplicitWorkload {
    /// Processor count (defines the mesh size too).
    pub procs: u16,
    /// Placement policy the machine must use.
    pub placement: Placement,
    /// One finite item list per processor (no trailing `Done`).
    pub streams: Vec<Vec<WorkItem>>,
    /// DMA script carried over from the source workload.
    pub dma: Vec<(Cycle, NodeId, Addr)>,
}

impl ExplicitWorkload {
    /// Materializes up to `bound` items of each of `w`'s streams.
    ///
    /// The prefix relation is exact: a machine running the materialized
    /// streams consumes the same items in the same order as one running
    /// `w` itself, until a processor exhausts its bounded list (after
    /// which it retires `Done` and idles — which is precisely the
    /// "shorter run" the minimizer is probing for).
    pub fn materialize(w: &dyn Workload, bound: usize) -> ExplicitWorkload {
        let streams = w
            .streams()
            .into_iter()
            .map(|mut s| {
                let mut items = Vec::new();
                while items.len() < bound {
                    match s.next_item() {
                        WorkItem::Done => break,
                        item => items.push(item),
                    }
                }
                items
            })
            .collect();
        ExplicitWorkload {
            procs: w.procs(),
            placement: w.placement(),
            streams,
            dma: w.dma_events(),
        }
    }
}

impl Workload for ExplicitWorkload {
    fn name(&self) -> &'static str {
        "explicit"
    }

    fn procs(&self) -> u16 {
        self.procs
    }

    fn placement(&self) -> Placement {
        self.placement
    }

    fn streams(&self) -> Vec<Box<dyn RefStream>> {
        self.streams
            .iter()
            .map(|items| Box::new(SliceStream::new(items.clone())) as Box<dyn RefStream>)
            .collect()
    }

    fn dma_events(&self) -> Vec<(Cycle, NodeId, Addr)> {
        self.dma.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::{Fft, OsWorkload};

    #[test]
    fn materialized_prefix_matches_the_generator() {
        let fft = Fft::scaled(4, 64);
        let explicit = ExplicitWorkload::materialize(&fft, 200);
        let mut originals = fft.streams();
        for (p, orig) in originals.iter_mut().enumerate() {
            for (i, &item) in explicit.streams[p].iter().enumerate() {
                assert_eq!(orig.next_item(), item, "proc {p} item {i}");
            }
        }
    }

    #[test]
    fn bound_zero_empties_every_stream() {
        let e = ExplicitWorkload::materialize(&Fft::scaled(2, 64), 0);
        assert!(e.streams.iter().all(Vec::is_empty));
    }

    #[test]
    fn done_terminates_before_the_bound() {
        // A tiny workload ends well before a huge bound; no Done items
        // leak into the materialized list.
        let e = ExplicitWorkload::materialize(&Fft::scaled(2, 64), usize::MAX);
        assert!(e
            .streams
            .iter()
            .all(|s| !s.contains(&WorkItem::Done) && !s.is_empty()));
    }

    #[test]
    fn dma_script_is_carried_over() {
        let os = OsWorkload::scaled(4, 16);
        let e = ExplicitWorkload::materialize(&os, 100);
        assert_eq!(e.dma, os.dma_events());
        assert_eq!(e.placement(), os.placement());
    }
}
