//! The seven evaluation workloads (paper Table 3.5), expressed as phase
//! programs whose address streams mirror the real algorithms' sharing
//! patterns:
//!
//! | App | Representative of | Problem size |
//! |---|---|---|
//! | Barnes | hierarchical N-body | 8192 particles |
//! | FFT | transform methods, high radix | 64K complex points |
//! | LU | blocked dense linear algebra | 512×512, 16×16 blocks |
//! | MP3D | high-communication unstructured | 50,000 particles |
//! | Ocean | regular-grid iterative | 258×258 grids |
//! | OS | multiprogramming | 8 "makes" |
//! | Radix | parallel sorting | 256K keys, radix 256 |
//!
//! Every app takes a `scale` divisor that shrinks iteration counts and
//! data sizes proportionally for fast tests; `scale = 1` is the paper's
//! size.

use crate::phases::{Phase, PhaseStream};
use flash::config::{node_addr, Placement};
use flash_cpu::RefStream;
use flash_engine::{Addr, Cycle, NodeId, LINE_BYTES};
use flash_traffic::ArrivalSource;

/// A complete multiprocessor workload.
pub trait Workload {
    /// Workload name (paper Table 3.5 spelling).
    fn name(&self) -> &'static str;
    /// Number of processors it runs on.
    fn procs(&self) -> u16;
    /// Page-placement policy the machine must use.
    fn placement(&self) -> Placement {
        Placement::Explicit
    }
    /// Builds the per-processor reference streams.
    fn streams(&self) -> Vec<Box<dyn RefStream>>;
    /// DMA traffic to inject (time, node, line address).
    fn dma_events(&self) -> Vec<(Cycle, NodeId, Addr)> {
        Vec::new()
    }
    /// Open-loop arrival sources, one per processor. `None` (the
    /// default) means the workload is closed-loop and drives the
    /// machine through [`Workload::streams`]; `Some` makes
    /// [`crate::build_machine`] feed the machine through admission
    /// mailboxes instead (see
    /// [`OpenLoopWorkload`](crate::OpenLoopWorkload)).
    fn open_loop_sources(&self) -> Option<Vec<Box<dyn ArrivalSource>>> {
        None
    }
}

fn div(x: u64, scale: u32) -> u64 {
    (x / scale as u64).max(1)
}

// ====================================================================
// FFT — radix-√N six-step transform with all-to-all transposes.
// ====================================================================

/// FFT: 64K complex points, radix √N (256×256 matrix form).
#[derive(Debug, Clone, Copy)]
pub struct Fft {
    procs: u16,
    /// Matrix dimension (√N); the paper's size is 256.
    pub dim: u64,
    /// Multiplier on computation per reference (1 = default density).
    pub compute_scale: u32,
}

impl Fft {
    /// Paper-size FFT on `procs` processors.
    pub fn paper(procs: u16) -> Self {
        Fft {
            procs,
            dim: 256,
            compute_scale: 1,
        }
    }

    /// Scaled-down FFT (`scale` divides the matrix dimension).
    pub fn scaled(procs: u16, scale: u32) -> Self {
        Fft {
            procs,
            dim: div(256, scale).max(procs as u64 * 2),
            compute_scale: 1,
        }
    }

    /// Returns the FFT with `k`-times denser computation per reference
    /// (used to set the §4.3 hot-spot operating point).
    pub fn with_compute_scale(mut self, k: u32) -> Self {
        self.compute_scale = k;
        self
    }

    /// All data on one node — the §4.3 hot-spot experiment. Uses the
    /// computation density that reproduces the paper's operating point
    /// (~80% PP occupancy with commensurate memory occupancy at node 0
    /// when run with 4 KB caches).
    pub fn hotspot(procs: u16, scale: u32) -> HotspotFft {
        HotspotFft(Self::scaled(procs, scale).with_compute_scale(4))
    }

    /// An FFT with an explicit matrix dimension (e.g. the §4.5
    /// proportionally scaled data set).
    pub fn with_dim(procs: u16, dim: u64) -> Self {
        Fft {
            procs,
            dim,
            compute_scale: 1,
        }
    }

    fn rows_per_proc(&self) -> u64 {
        (self.dim / self.procs as u64).max(1)
    }

    /// Lines in one row of the matrix (complex points are 16 bytes).
    fn row_lines(&self) -> u64 {
        (self.dim * 16).div_ceil(LINE_BYTES)
    }

    fn phases_for(&self, p: u16, home_of: impl Fn(u16) -> NodeId) -> Vec<Phase> {
        let cs = self.compute_scale;
        let rpp = self.rows_per_proc();
        let own_lines = rpp * self.row_lines();
        let a_base = |q: u16| node_addr(home_of(q), 0);
        let b_base = |q: u16| node_addr(home_of(q), own_lines * LINE_BYTES + 4096);
        let me = home_of(p);
        let mut ph = Vec::new();
        // Initialization: write own rows of A.
        ph.push(Phase::Sweep {
            base: node_addr(me, 0),
            lines: own_lines,
            stride: 1,
            write: true,
            refs_per_line: 16,
            busy_per_ref: 4 * cs,
        });
        ph.push(Phase::Barrier);
        // Local FFT / transpose / local FFT / transpose / local FFT.
        for step in 0..3u64 {
            let (src, dst): (&dyn Fn(u16) -> Addr, &dyn Fn(u16) -> Addr) = if step % 2 == 0 {
                (&a_base, &b_base)
            } else {
                (&b_base, &a_base)
            };
            // Roots-of-unity table: read-only, never written, so these
            // misses are local clean (cold in the first step, cached after).
            ph.push(Phase::Sweep {
                base: node_addr(me, 0x80_0000),
                lines: own_lines / 2,
                stride: 1,
                write: false,
                refs_per_line: 24,
                busy_per_ref: 4 * cs,
            });
            // Globally shared twiddle coefficients (read-only: remote clean).
            ph.push(Phase::Sweep {
                base: node_addr(
                    NodeId((p + 1 + step as u16) % self.procs),
                    0x90_0000 + step * 0x8_0000,
                ),
                lines: own_lines / 5,
                stride: 1,
                write: false,
                refs_per_line: 16,
                busy_per_ref: 4 * cs,
            });
            // Row FFTs over own rows: log2(dim) passes of read+write.
            ph.push(Phase::Sweep {
                base: src(p),
                lines: own_lines,
                stride: 1,
                write: false,
                refs_per_line: 256,
                busy_per_ref: 6 * cs,
            });
            ph.push(Phase::Sweep {
                base: src(p),
                lines: own_lines,
                stride: 1,
                write: true,
                refs_per_line: 32,
                busy_per_ref: 4 * cs,
            });
            ph.push(Phase::Barrier);
            if step == 2 {
                break; // final step has no transpose
            }
            // Transpose: read the block each other processor produced,
            // write it into our rows of the destination array.
            let block_lines = (rpp * rpp * 16).div_ceil(LINE_BYTES).max(1);
            for dq in 1..self.procs {
                let q = (p + dq) % self.procs;
                ph.push(Phase::Sweep {
                    base: src(q).offset((p as u64 * block_lines) * LINE_BYTES),
                    lines: block_lines,
                    stride: 1,
                    write: false,
                    refs_per_line: 16,
                    busy_per_ref: 4 * cs,
                });
                ph.push(Phase::Sweep {
                    base: dst(p).offset((q as u64 * block_lines % own_lines.max(1)) * LINE_BYTES),
                    lines: block_lines,
                    stride: 1,
                    write: true,
                    refs_per_line: 16,
                    busy_per_ref: 4 * cs,
                });
            }
            ph.push(Phase::Barrier);
        }
        ph
    }
}

impl Workload for Fft {
    fn name(&self) -> &'static str {
        "FFT"
    }

    fn procs(&self) -> u16 {
        self.procs
    }

    fn streams(&self) -> Vec<Box<dyn RefStream>> {
        (0..self.procs)
            .map(|p| {
                Box::new(PhaseStream::new(
                    self.phases_for(p, NodeId),
                    0xFF7,
                    p as u64,
                )) as Box<dyn RefStream>
            })
            .collect()
    }
}

/// FFT with every page allocated from node 0 (paper §4.3).
#[derive(Debug, Clone, Copy)]
pub struct HotspotFft(Fft);

impl From<Fft> for HotspotFft {
    fn from(f: Fft) -> Self {
        HotspotFft(f)
    }
}

impl Workload for HotspotFft {
    fn name(&self) -> &'static str {
        "FFT-hotspot"
    }

    fn procs(&self) -> u16 {
        self.0.procs
    }

    fn streams(&self) -> Vec<Box<dyn RefStream>> {
        let inner = self.0;
        (0..inner.procs)
            .map(|p| {
                // Same access pattern as plain FFT, but every region is
                // relocated into (disjoint slices of) node 0's memory.
                let phases = inner.phases_for(p, NodeId);
                // Shift each processor's regions apart in node-0 memory.
                let shifted: Vec<Phase> = phases
                    .into_iter()
                    .map(|ph| shift_phase(ph, |a| remap_to_node0(a, inner.procs)))
                    .collect();
                Box::new(PhaseStream::new(shifted, 0xF07, p as u64)) as Box<dyn RefStream>
            })
            .collect()
    }
}

/// Relocates an explicit-placement address into a disjoint slice of node
/// 0's memory (keeping per-owner separation).
fn remap_to_node0(a: Addr, procs: u16) -> Addr {
    let owner = (a.raw() >> 32) as u16 % procs.max(1);
    let off = a.raw() & 0xffff_ffff;
    // Stagger region bases by an odd multiple of the MDC reach so the 16
    // owners' directory headers do not collide in the same MDC sets.
    node_addr(
        NodeId(0),
        ((owner as u64) << 26) + owner as u64 * 76800 + off,
    )
}

fn shift_phase(p: Phase, f: impl Fn(Addr) -> Addr) -> Phase {
    match p {
        Phase::Sweep {
            base,
            lines,
            stride,
            write,
            refs_per_line,
            busy_per_ref,
        } => Phase::Sweep {
            base: f(base),
            lines,
            stride,
            write,
            refs_per_line,
            busy_per_ref,
        },
        Phase::Random {
            base,
            lines,
            count,
            write_frac,
            busy_per_ref,
        } => Phase::Random {
            base: f(base),
            lines,
            count,
            write_frac,
            busy_per_ref,
        },
        other => other,
    }
}

// ====================================================================
// LU — blocked dense factorization with a 2-D scatter decomposition.
// ====================================================================

/// LU: 512×512 matrix, 16×16 blocks.
#[derive(Debug, Clone, Copy)]
pub struct Lu {
    procs: u16,
    /// Matrix dimension; the paper's size is 512.
    pub n: u64,
    /// Block dimension (16 in the paper).
    pub block: u64,
}

impl Lu {
    /// Paper-size LU.
    pub fn paper(procs: u16) -> Self {
        Lu {
            procs,
            n: 512,
            block: 16,
        }
    }

    /// Scaled-down LU.
    pub fn scaled(procs: u16, scale: u32) -> Self {
        Lu {
            procs,
            n: div(512, scale).max(64),
            block: 16,
        }
    }

    fn grid(&self) -> u64 {
        (self.procs as f64).sqrt() as u64
    }

    fn owner(&self, bi: u64, bj: u64) -> u16 {
        let g = self.grid().max(1);
        ((bi % g) * g + (bj % g)) as u16 % self.procs
    }

    /// Lines per 16×16 block of doubles.
    fn block_lines(&self) -> u64 {
        (self.block * self.block * 8).div_ceil(LINE_BYTES)
    }

    /// Protocol-address of a block in its owner's memory.
    fn block_addr(&self, bi: u64, bj: u64) -> Addr {
        let nb = self.n / self.block;
        let idx = bi * nb + bj;
        node_addr(
            NodeId(self.owner(bi, bj)),
            idx * self.block_lines() * LINE_BYTES,
        )
    }
}

impl Workload for Lu {
    fn name(&self) -> &'static str {
        "LU"
    }

    fn procs(&self) -> u16 {
        self.procs
    }

    fn streams(&self) -> Vec<Box<dyn RefStream>> {
        let nb = self.n / self.block;
        let bl = self.block_lines();
        // Cost of one 16×16 block update: 2·b³ multiply-adds.
        let update_cost = 2 * self.block * self.block * self.block;
        (0..self.procs)
            .map(|p| {
                let mut ph = Vec::new();
                for k in 0..nb {
                    // Diagonal factorization by its owner.
                    if self.owner(k, k) == p {
                        ph.push(Phase::Sweep {
                            base: self.block_addr(k, k),
                            lines: bl,
                            stride: 1,
                            write: true,
                            refs_per_line: 48,
                            busy_per_ref: 24,
                        });
                    }
                    ph.push(Phase::Barrier);
                    // Perimeter: owners of row-k and column-k blocks read
                    // the diagonal and update their blocks.
                    for t in (k + 1)..nb {
                        for (bi, bj) in [(k, t), (t, k)] {
                            if self.owner(bi, bj) == p {
                                ph.push(Phase::Sweep {
                                    base: self.block_addr(k, k),
                                    lines: bl,
                                    stride: 1,
                                    write: false,
                                    refs_per_line: 192,
                                    busy_per_ref: 3,
                                });
                                ph.push(Phase::Sweep {
                                    base: self.block_addr(bi, bj),
                                    lines: bl,
                                    stride: 1,
                                    write: true,
                                    refs_per_line: 192,
                                    busy_per_ref: 3,
                                });
                                ph.push(Phase::Compute(update_cost / 2));
                            }
                        }
                    }
                    ph.push(Phase::Barrier);
                    // Interior updates: A[i][j] -= A[i][k] * A[k][j].
                    for bi in (k + 1)..nb {
                        for bj in (k + 1)..nb {
                            if self.owner(bi, bj) == p {
                                for src in [(bi, k), (k, bj)] {
                                    ph.push(Phase::Sweep {
                                        base: self.block_addr(src.0, src.1),
                                        lines: bl,
                                        stride: 1,
                                        write: false,
                                        refs_per_line: 224,
                                        busy_per_ref: 2,
                                    });
                                }
                                ph.push(Phase::Sweep {
                                    base: self.block_addr(bi, bj),
                                    lines: bl,
                                    stride: 1,
                                    write: true,
                                    refs_per_line: 224,
                                    busy_per_ref: 2,
                                });
                                ph.push(Phase::Compute(update_cost));
                            }
                        }
                    }
                    ph.push(Phase::Barrier);
                }
                Box::new(PhaseStream::new(ph, 0x100, p as u64)) as Box<dyn RefStream>
            })
            .collect()
    }
}

// ====================================================================
// Radix — parallel radix sort: histogram, prefix, permute.
// ====================================================================

/// Radix sort: 256K 32-bit keys, radix 256 (4 digit passes).
#[derive(Debug, Clone, Copy)]
pub struct Radix {
    procs: u16,
    /// Total keys; the paper's size is 256K.
    pub keys: u64,
    /// Digit passes (4 for 32-bit keys at radix 256).
    pub passes: u32,
}

impl Radix {
    /// Paper-size radix sort.
    pub fn paper(procs: u16) -> Self {
        Radix {
            procs,
            keys: 256 * 1024,
            passes: 4,
        }
    }

    /// Scaled-down radix sort.
    pub fn scaled(procs: u16, scale: u32) -> Self {
        Radix {
            procs,
            keys: div(256 * 1024, scale).max(procs as u64 * 256),
            passes: if scale > 4 { 2 } else { 4 },
        }
    }

    fn keys_per_proc(&self) -> u64 {
        self.keys / self.procs as u64
    }

    fn chunk_lines(&self) -> u64 {
        (self.keys_per_proc() * 8).div_ceil(LINE_BYTES)
    }
}

impl Workload for Radix {
    fn name(&self) -> &'static str {
        "Radix"
    }

    fn procs(&self) -> u16 {
        self.procs
    }

    fn streams(&self) -> Vec<Box<dyn RefStream>> {
        let cl = self.chunk_lines();
        let radix_digits = 256u64;
        let procs = self.procs as u64;
        (0..self.procs)
            .map(|p| {
                let mut ph = Vec::new();
                // Region bases are staggered per node so corresponding
                // chunks do not collide in the same cache indices.
                let src = |q: u16, pass: u32| {
                    node_addr(
                        NodeId(q),
                        ((pass as u64 % 2) * (cl + 32) + q as u64 * 37) * LINE_BYTES,
                    )
                };
                for pass in 0..self.passes {
                    // Histogram: read own keys (written by everyone during
                    // the previous pass's permute: local, dirty remote),
                    // bumping local counters (cache hits).
                    ph.push(Phase::Sweep {
                        base: src(p, pass),
                        lines: cl,
                        stride: 1,
                        write: false,
                        refs_per_line: 64,
                        busy_per_ref: 6,
                    });
                    // Global prefix over shared bucket counters (homed on
                    // node 0: mild hot-spotting, as in the real code).
                    ph.push(Phase::Random {
                        base: node_addr(NodeId(0), 0x40_0000),
                        lines: (radix_digits * 8).div_ceil(LINE_BYTES),
                        count: radix_digits / 4,
                        write_frac: 0.5,
                        busy_per_ref: 8,
                    });
                    ph.push(Phase::Barrier);
                    // Permute: this processor's keys scatter into disjoint
                    // per-writer segments of every destination chunk (the
                    // prefix sums make writer ranges disjoint in the real
                    // code too).
                    let seg_lines = (cl / procs).max(1);
                    for dd in 0..self.procs {
                        let dest = (p + dd) % self.procs;
                        ph.push(Phase::Sweep {
                            base: src(dest, pass + 1).offset(p as u64 * seg_lines * LINE_BYTES),
                            lines: seg_lines,
                            stride: 1,
                            write: true,
                            refs_per_line: 48,
                            busy_per_ref: 10,
                        });
                    }
                    ph.push(Phase::Barrier);
                }
                Box::new(PhaseStream::new(ph, 0x0AD1, p as u64)) as Box<dyn RefStream>
            })
            .collect()
    }
}

// ====================================================================
// Ocean — regular-grid iterative nearest-neighbour relaxation.
// ====================================================================

/// Ocean: 258×258 grids, 25 grids, row-partitioned.
#[derive(Debug, Clone, Copy)]
pub struct Ocean {
    procs: u16,
    /// Grid dimension (258 in the paper).
    pub dim: u64,
    /// Number of grids (25 in the paper).
    pub grids: u32,
    /// Relaxation sweeps.
    pub iters: u32,
}

impl Ocean {
    /// Paper-size Ocean.
    pub fn paper(procs: u16) -> Self {
        Ocean {
            procs,
            dim: 258,
            grids: 25,
            iters: 40,
        }
    }

    /// Scaled-down Ocean.
    pub fn scaled(procs: u16, scale: u32) -> Self {
        Ocean {
            procs,
            dim: div(258, scale).max(procs as u64 * 4),
            grids: (25 / scale).max(2),
            iters: (40 / scale).max(4),
        }
    }

    fn row_lines(&self) -> u64 {
        (self.dim * 8).div_ceil(LINE_BYTES)
    }

    fn rows_per_proc(&self) -> u64 {
        (self.dim / self.procs as u64).max(1)
    }
}

impl Workload for Ocean {
    fn name(&self) -> &'static str {
        "Ocean"
    }

    fn procs(&self) -> u16 {
        self.procs
    }

    fn streams(&self) -> Vec<Box<dyn RefStream>> {
        let rl = self.row_lines();
        let rpp = self.rows_per_proc();
        let part_lines = rl * rpp;
        let grid_base =
            |q: u16, g: u32| node_addr(NodeId(q), g as u64 * (part_lines + 8) * LINE_BYTES);
        (0..self.procs)
            .map(|p| {
                let mut ph = Vec::new();
                for it in 0..self.iters {
                    // Multigrid cycles revisit every grid each sweep round:
                    // the reuse distance is the whole partition working set,
                    // so large caches keep it resident while small ones
                    // take capacity misses (paper §4.2).
                    let g = it % self.grids;
                    // Boundary rows from the neighbours (they wrote them
                    // last sweep: remote dirty at home). Restriction and
                    // interpolation read a few rows deep.
                    for nb in [p.wrapping_sub(1), p + 1] {
                        if nb < self.procs && nb != p {
                            let base = grid_base(nb, g);
                            let row = if nb < p { rpp.saturating_sub(4) } else { 0 };
                            ph.push(Phase::Sweep {
                                base: base.offset(row * rl * LINE_BYTES),
                                lines: rl * 4.min(rpp),
                                stride: 1,
                                write: false,
                                refs_per_line: 16,
                                busy_per_ref: 4,
                            });
                        }
                    }
                    // Five-point stencil over the owned partition.
                    ph.push(Phase::Sweep {
                        base: grid_base(p, g),
                        lines: part_lines,
                        stride: 1,
                        write: false,
                        refs_per_line: 96,
                        busy_per_ref: 5,
                    });
                    ph.push(Phase::Sweep {
                        base: grid_base(p, g),
                        lines: part_lines,
                        stride: 1,
                        write: true,
                        refs_per_line: 16,
                        busy_per_ref: 3,
                    });
                    ph.push(Phase::Barrier);
                }
                Box::new(PhaseStream::new(ph, 0x0CEA, p as u64)) as Box<dyn RefStream>
            })
            .collect()
    }
}

// ====================================================================
// Barnes — hierarchical N-body: tree build + force computation.
// ====================================================================

/// Barnes-Hut: 8192 particles, θ = 1.0.
#[derive(Debug, Clone, Copy)]
pub struct Barnes {
    procs: u16,
    /// Particle count (8192 in the paper).
    pub particles: u64,
    /// Time steps.
    pub steps: u32,
}

impl Barnes {
    /// Paper-size Barnes.
    pub fn paper(procs: u16) -> Self {
        Barnes {
            procs,
            particles: 8192,
            steps: 6,
        }
    }

    /// Scaled-down Barnes.
    pub fn scaled(procs: u16, scale: u32) -> Self {
        Barnes {
            procs,
            particles: div(8192, scale).max(procs as u64 * 32),
            steps: (6 / scale).max(2),
        }
    }

    fn cells(&self) -> u64 {
        self.particles * 2
    }

    /// Address of tree cell `i`: cells interleave across homes, so a cell
    /// written by the processor that owns its *space region* is usually
    /// dirty in a third node's cache when read.
    fn cell_addr(&self, i: u64) -> Addr {
        let q = (i % self.procs as u64) as u16;
        // Stagger each node's cell region so corresponding cells do not
        // collide in the same processor-cache set across nodes.
        node_addr(
            NodeId(q),
            0x100_0000 + (q as u64 * 293 + i / self.procs as u64) * LINE_BYTES,
        )
    }
}

impl Workload for Barnes {
    fn name(&self) -> &'static str {
        "Barnes"
    }

    fn procs(&self) -> u16 {
        self.procs
    }

    fn streams(&self) -> Vec<Box<dyn RefStream>> {
        let cells = self.cells();
        let cells_per_proc = cells / self.procs as u64;
        let own_particle_lines = (self.particles / self.procs as u64) * 64 / LINE_BYTES + 1;
        (0..self.procs)
            .map(|p| {
                let mut ph = Vec::new();
                for _step in 0..self.steps {
                    // Tree build: this processor writes the cells covering
                    // its space region (index-contiguous, home-interleaved).
                    let first = p as u64 * cells_per_proc;
                    for dq in 0..self.procs {
                        let q = (p + dq) % self.procs;
                        // Cells in [first, first+cpp) homed on q are
                        // contiguous in q's memory.
                        let start = first
                            + ((q as u64 + self.procs as u64 - first % self.procs as u64)
                                % self.procs as u64);
                        if start >= first + cells_per_proc {
                            continue;
                        }
                        let n_at_q = (first + cells_per_proc - start).div_ceil(self.procs as u64);
                        ph.push(Phase::Lock(q as u32));
                        ph.push(Phase::Sweep {
                            base: self.cell_addr(start),
                            lines: n_at_q,
                            stride: 1,
                            write: true,
                            refs_per_line: 12,
                            busy_per_ref: 10,
                        });
                        ph.push(Phase::Unlock(q as u32));
                    }
                    ph.push(Phase::Barrier);
                    // Force computation: tree walks hit the cached top of
                    // the tree almost always; only occasional deep walks
                    // touch distant, freshly rebuilt (dirty) cells.
                    ph.push(Phase::Sweep {
                        base: self.cell_addr(0),
                        lines: 64.min(cells_per_proc),
                        stride: self.procs as u64,
                        write: false,
                        refs_per_line: 1600,
                        busy_per_ref: 12,
                    });
                    for dq in 0..self.procs {
                        let q = (p + dq) % self.procs;
                        ph.push(Phase::Random {
                            base: node_addr(NodeId(q), 0x100_0000 + q as u64 * 293 * LINE_BYTES),
                            lines: cells_per_proc,
                            count: (self.particles / self.procs as u64 / 48).max(4),
                            write_frac: 0.0,
                            busy_per_ref: 60,
                        });
                    }
                    // Per-particle force arithmetic.
                    ph.push(Phase::Compute(self.particles / self.procs as u64 * 420));
                    // Update own particles (local).
                    ph.push(Phase::Sweep {
                        base: node_addr(NodeId(p), 0x200_0000),
                        lines: own_particle_lines,
                        stride: 1,
                        write: true,
                        refs_per_line: 96,
                        busy_per_ref: 10,
                    });
                    ph.push(Phase::Barrier);
                }
                Box::new(PhaseStream::new(ph, 0xBA12, p as u64)) as Box<dyn RefStream>
            })
            .collect()
    }
}

// ====================================================================
// MP3D — rarefied-fluid particles colliding in shared space cells.
// ====================================================================

/// MP3D: 50,000 particles; the communication stress test.
#[derive(Debug, Clone, Copy)]
pub struct Mp3d {
    procs: u16,
    /// Particle count (50,000 in the paper).
    pub particles: u64,
    /// Simulated steps.
    pub steps: u32,
}

impl Mp3d {
    /// Paper-size MP3D.
    pub fn paper(procs: u16) -> Self {
        Mp3d {
            procs,
            particles: 50_000,
            steps: 8,
        }
    }

    /// Scaled-down MP3D.
    pub fn scaled(procs: u16, scale: u32) -> Self {
        Mp3d {
            procs,
            particles: div(50_000, scale).max(procs as u64 * 64),
            steps: (8 / scale).max(2),
        }
    }

    fn cells(&self) -> u64 {
        (self.particles / 4).max(64)
    }
}

impl Workload for Mp3d {
    fn name(&self) -> &'static str {
        "MP3D"
    }

    fn procs(&self) -> u16 {
        self.procs
    }

    fn streams(&self) -> Vec<Box<dyn RefStream>> {
        let ppp = self.particles / self.procs as u64;
        let own_lines = (ppp * 64).div_ceil(LINE_BYTES);
        let cells_per_node = self.cells() / self.procs as u64;
        (0..self.procs)
            .map(|p| {
                let mut ph = Vec::new();
                for _ in 0..self.steps {
                    // The move loop interleaves particle updates with cell
                    // collisions, particle by particle; chunking keeps that
                    // interleaving (and staggering the node order keeps the
                    // cell traffic spread across the machine, as real
                    // particles are).
                    let chunks = self.procs as u64;
                    for c in 0..chunks {
                        ph.push(Phase::Sweep {
                            base: node_addr(
                                NodeId(p),
                                c * (own_lines / chunks).max(1) * LINE_BYTES,
                            ),
                            lines: (own_lines / chunks).max(1),
                            stride: 1,
                            write: true,
                            refs_per_line: 24,
                            busy_per_ref: 6,
                        });
                        let q = ((p as u64 + c) % self.procs as u64) as u16;
                        ph.push(Phase::Random {
                            base: node_addr(NodeId(q), 0x100_0000 + q as u64 * 293 * LINE_BYTES),
                            lines: cells_per_node,
                            count: ppp / self.procs as u64,
                            write_frac: 0.85,
                            busy_per_ref: 8,
                        });
                    }
                    ph.push(Phase::Barrier);
                }
                Box::new(PhaseStream::new(ph, 0x3D3D, p as u64)) as Box<dyn RefStream>
            })
            .collect()
    }
}

// ====================================================================
// OS — eight "makes" of a small C program under a Unix kernel.
// ====================================================================

/// The OS multiprogramming workload: 8 compiler processes, ~50% kernel
/// time, round-robin page placement (paper §3.4).
#[derive(Debug, Clone, Copy)]
pub struct OsWorkload {
    procs: u16,
    /// Compile iterations per process.
    pub compiles: u32,
    /// Use the original (non-NUMA-aware) first-node page placement of
    /// paper §4.3 instead of round-robin.
    pub first_node: bool,
}

impl OsWorkload {
    /// Paper-size OS workload (8 processors).
    pub fn paper(procs: u16) -> Self {
        OsWorkload {
            procs,
            compiles: 6,
            first_node: false,
        }
    }

    /// Scaled-down OS workload.
    pub fn scaled(procs: u16, scale: u32) -> Self {
        OsWorkload {
            procs,
            compiles: (6 / scale).max(2),
            first_node: false,
        }
    }

    /// The §4.3 configuration: the original IRIX port that fills node 0's
    /// memory first.
    pub fn original_port(mut self) -> Self {
        self.first_node = true;
        self
    }
}

/// Flat-address regions for the OS workload (homed by page policy).
mod os_region {
    /// Shared kernel text + libraries (read-only).
    pub const TEXT: u64 = 0;
    pub const TEXT_LINES: u64 = 2048; // 256 KB
    /// Migratory kernel data structures (run queues, vnodes, locks).
    pub const KERN: u64 = 0x10_0000;
    pub const KERN_LINES: u64 = 384; // 48 KB
    /// File-system buffer cache.
    pub const BUFC: u64 = 0x100_0000;
    pub const BUFC_LINES: u64 = 8192; // 1 MB
    /// Per-process user heap (1 MB apart).
    pub const fn user(p: u16) -> u64 {
        0x1000_0000 + (p as u64) * 0x10_0000
    }
    pub const USER_LINES: u64 = 6144; // 768 KB working set
}

impl Workload for OsWorkload {
    fn name(&self) -> &'static str {
        "OS"
    }

    fn procs(&self) -> u16 {
        self.procs
    }

    fn placement(&self) -> Placement {
        if self.first_node {
            Placement::FirstNode
        } else {
            Placement::RoundRobinPages { page_bytes: 4096 }
        }
    }

    fn streams(&self) -> Vec<Box<dyn RefStream>> {
        use os_region::*;
        (0..self.procs)
            .map(|p| {
                let mut ph = Vec::new();
                for c in 0..self.compiles {
                    // --- user mode: compiler passes over the heap ---
                    ph.push(Phase::Sweep {
                        base: Addr::new(user(p)),
                        lines: USER_LINES,
                        stride: 1,
                        write: (c % 2) == 1,
                        refs_per_line: 224,
                        busy_per_ref: 8,
                    });
                    // Instruction fetches from shared text (clean).
                    ph.push(Phase::Random {
                        base: Addr::new(TEXT),
                        lines: TEXT_LINES,
                        count: 384,
                        write_frac: 0.0,
                        busy_per_ref: 24,
                    });
                    // --- kernel mode: syscalls, scheduler, VM ---
                    for sys in 0..6u32 {
                        ph.push(Phase::Lock(sys % 3));
                        ph.push(Phase::Random {
                            base: Addr::new(KERN),
                            lines: KERN_LINES,
                            count: 160,
                            write_frac: 0.5,
                            busy_per_ref: 10,
                        });
                        ph.push(Phase::Unlock(sys % 3));
                    }
                    // --- file system: read source/objects via the buffer
                    // cache (freshly DMAed pages) ---
                    ph.push(Phase::Random {
                        base: Addr::new(BUFC),
                        lines: BUFC_LINES,
                        count: 768,
                        write_frac: 0.25,
                        busy_per_ref: 12,
                    });
                }
                Box::new(PhaseStream::new(ph, 0x05E5, p as u64)) as Box<dyn RefStream>
            })
            .collect()
    }

    fn dma_events(&self) -> Vec<(Cycle, NodeId, Addr)> {
        use os_region::*;
        // The zero-latency disk DMAs source files and objects into the
        // buffer cache throughout the run.
        let mut ev = Vec::new();
        let mut rng = flash_engine::DetRng::for_stream(0xD15C, 0);
        let events = 64 * self.compiles as u64;
        for i in 0..events {
            let at = Cycle::new(2_000 + i * 3_973);
            let line = rng.below(BUFC_LINES);
            let addr = Addr::new(BUFC + line * 128);
            let node = self.placement().home_of(addr, self.procs);
            ev.push((at, node, addr));
        }
        ev
    }
}
