//! Phase-structured reference generation.
//!
//! Each application is expressed as a compact list of [`Phase`]s per
//! processor; [`PhaseStream`] expands them lazily into the `WorkItem`
//! stream the processor interprets. This mirrors the Tango Lite
//! methodology: what reaches the memory system is the *address stream* of
//! the algorithm, not its arithmetic.

use flash_cpu::{RefStream, WorkItem};
use flash_engine::{Addr, DetRng, LINE_BYTES};

/// One phase of an application's execution on one processor.
#[derive(Debug, Clone, Copy)]
pub enum Phase {
    /// Pure computation: `n` instructions.
    Compute(u64),
    /// A strided walk over `lines` cache lines starting at `base`,
    /// touching `refs_per_line` words in each line (re-touches hit in the
    /// cache) with `busy_per_ref` instructions between references.
    Sweep {
        /// First line of the region.
        base: Addr,
        /// Number of lines visited.
        lines: u64,
        /// Stride between visited lines, in lines.
        stride: u64,
        /// Issue writes instead of reads.
        write: bool,
        /// Word references per visited line.
        refs_per_line: u32,
        /// Instructions between consecutive references.
        busy_per_ref: u32,
    },
    /// `count` references to uniformly random lines in a region.
    Random {
        /// First line of the region.
        base: Addr,
        /// Region size in lines.
        lines: u64,
        /// Number of references to issue.
        count: u64,
        /// Probability that a reference is a write.
        write_frac: f64,
        /// Instructions between consecutive references.
        busy_per_ref: u32,
    },
    /// Global barrier.
    Barrier,
    /// Acquire a lock.
    Lock(u32),
    /// Release a lock.
    Unlock(u32),
}

/// Lazily expands a list of phases into work items.
pub struct PhaseStream {
    phases: Vec<Phase>,
    pi: usize,
    // Position within the current phase.
    line: u64,
    r: u32,
    emitted_busy: bool,
    rng: DetRng,
}

impl std::fmt::Debug for PhaseStream {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PhaseStream")
            .field("phase", &self.pi)
            .field("of", &self.phases.len())
            .finish()
    }
}

impl PhaseStream {
    /// Creates a stream over `phases` with a deterministic RNG stream.
    pub fn new(phases: Vec<Phase>, seed: u64, stream: u64) -> Self {
        PhaseStream {
            phases,
            pi: 0,
            line: 0,
            r: 0,
            emitted_busy: false,
            rng: DetRng::for_stream(seed, stream),
        }
    }

    fn advance_phase(&mut self) {
        self.pi += 1;
        self.line = 0;
        self.r = 0;
        self.emitted_busy = false;
    }
}

impl RefStream for PhaseStream {
    fn next_item(&mut self) -> WorkItem {
        loop {
            let Some(&phase) = self.phases.get(self.pi) else {
                return WorkItem::Done;
            };
            match phase {
                Phase::Compute(n) => {
                    self.advance_phase();
                    if n > 0 {
                        return WorkItem::Busy(n);
                    }
                }
                Phase::Barrier => {
                    self.advance_phase();
                    return WorkItem::Barrier;
                }
                Phase::Lock(id) => {
                    self.advance_phase();
                    return WorkItem::Lock(id);
                }
                Phase::Unlock(id) => {
                    self.advance_phase();
                    return WorkItem::Unlock(id);
                }
                Phase::Sweep {
                    base,
                    lines,
                    stride,
                    write,
                    refs_per_line,
                    busy_per_ref,
                } => {
                    if self.line >= lines {
                        self.advance_phase();
                        continue;
                    }
                    if busy_per_ref > 0 && !self.emitted_busy {
                        self.emitted_busy = true;
                        return WorkItem::Busy(busy_per_ref as u64);
                    }
                    self.emitted_busy = false;
                    let line_addr = base.offset(self.line * stride * LINE_BYTES);
                    // Walk words within the line, wrapping past 16.
                    let word = (self.r as u64 * 8) % LINE_BYTES;
                    let a = line_addr.offset(word);
                    self.r += 1;
                    if self.r >= refs_per_line.max(1) {
                        self.r = 0;
                        self.line += 1;
                    }
                    return if write {
                        WorkItem::Write(a)
                    } else {
                        WorkItem::Read(a)
                    };
                }
                Phase::Random {
                    base,
                    lines,
                    count,
                    write_frac,
                    busy_per_ref,
                } => {
                    if self.line >= count {
                        self.advance_phase();
                        continue;
                    }
                    if busy_per_ref > 0 && !self.emitted_busy {
                        self.emitted_busy = true;
                        return WorkItem::Busy(busy_per_ref as u64);
                    }
                    self.emitted_busy = false;
                    self.line += 1;
                    let l = self.rng.below(lines.max(1));
                    let word = self.rng.below(16) * 8;
                    let a = base.offset(l * LINE_BYTES + word);
                    return if self.rng.chance(write_frac) {
                        WorkItem::Write(a)
                    } else {
                        WorkItem::Read(a)
                    };
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(mut s: PhaseStream) -> Vec<WorkItem> {
        let mut v = Vec::new();
        loop {
            let it = s.next_item();
            v.push(it);
            if it == WorkItem::Done {
                return v;
            }
            assert!(v.len() < 100_000, "runaway stream");
        }
    }

    #[test]
    fn compute_and_sync_phases() {
        let v = drain(PhaseStream::new(
            vec![
                Phase::Compute(10),
                Phase::Barrier,
                Phase::Lock(1),
                Phase::Unlock(1),
            ],
            0,
            0,
        ));
        assert_eq!(
            v,
            vec![
                WorkItem::Busy(10),
                WorkItem::Barrier,
                WorkItem::Lock(1),
                WorkItem::Unlock(1),
                WorkItem::Done
            ]
        );
    }

    #[test]
    fn sweep_touches_each_line_refs_times() {
        let v = drain(PhaseStream::new(
            vec![Phase::Sweep {
                base: Addr::new(0x1000),
                lines: 3,
                stride: 2,
                write: false,
                refs_per_line: 4,
                busy_per_ref: 0,
            }],
            0,
            0,
        ));
        let reads: Vec<Addr> = v
            .iter()
            .filter_map(|i| match i {
                WorkItem::Read(a) => Some(*a),
                _ => None,
            })
            .collect();
        assert_eq!(reads.len(), 12);
        assert_eq!(reads[0], Addr::new(0x1000));
        assert_eq!(reads[1], Addr::new(0x1008));
        assert_eq!(reads[4], Addr::new(0x1000 + 2 * 128));
        // Distinct lines visited: 3.
        let mut lines: Vec<u64> = reads.iter().map(|a| a.line_index()).collect();
        lines.dedup();
        assert_eq!(lines.len(), 3);
    }

    #[test]
    fn sweep_interleaves_busy() {
        let v = drain(PhaseStream::new(
            vec![Phase::Sweep {
                base: Addr::new(0),
                lines: 2,
                stride: 1,
                write: true,
                refs_per_line: 1,
                busy_per_ref: 7,
            }],
            0,
            0,
        ));
        assert_eq!(v.len(), 5); // busy, write, busy, write, done
        assert_eq!(v[0], WorkItem::Busy(7));
        assert!(matches!(v[1], WorkItem::Write(_)));
    }

    #[test]
    fn random_phase_stays_in_region_and_is_deterministic() {
        let mk = || {
            PhaseStream::new(
                vec![Phase::Random {
                    base: Addr::new(0x8000),
                    lines: 8,
                    count: 100,
                    write_frac: 0.5,
                    busy_per_ref: 0,
                }],
                42,
                7,
            )
        };
        let a = drain(mk());
        let b = drain(mk());
        assert_eq!(a, b, "deterministic for equal seeds");
        let mut writes = 0;
        for it in &a {
            match it {
                WorkItem::Read(x) | WorkItem::Write(x) => {
                    assert!(x.raw() >= 0x8000 && x.raw() < 0x8000 + 8 * 128);
                    if matches!(it, WorkItem::Write(_)) {
                        writes += 1;
                    }
                }
                _ => {}
            }
        }
        assert!(
            writes > 20 && writes < 80,
            "write fraction ~0.5, got {writes}"
        );
    }

    #[test]
    fn refs_per_line_wraps_words() {
        let v = drain(PhaseStream::new(
            vec![Phase::Sweep {
                base: Addr::new(0),
                lines: 1,
                stride: 1,
                write: false,
                refs_per_line: 20,
                busy_per_ref: 0,
            }],
            0,
            0,
        ));
        let reads: Vec<Addr> = v
            .iter()
            .filter_map(|i| match i {
                WorkItem::Read(a) => Some(*a),
                _ => None,
            })
            .collect();
        assert_eq!(reads.len(), 20);
        assert!(reads.iter().all(|a| a.line_index() == 0));
        assert_eq!(reads[16], reads[0], "wraps to the first word");
    }
}
