//! Workload generators for the FLASH flexibility study.
//!
//! The paper drives its evaluation with SPLASH-family parallel
//! applications traced through Tango Lite and an IRIX multiprogramming
//! workload captured by SimOS (paper §3.4). This crate substitutes
//! synthetic reference-stream generators that reproduce the *address
//! stream shapes* of those programs — partitioned sweeps, all-to-all
//! transposes, pivot-block broadcasts, scatter permutations, stencil
//! boundary exchanges, tree walks, shared-cell collisions, and kernel
//! activity with migratory data structures — which is the level of detail
//! the paper's memory-system evaluation actually consumes.
//!
//! See [`apps`] for the seven workloads and [`run_workload`] for the
//! one-call experiment driver.

pub mod apps;
pub mod explicit;
pub mod openloop;
pub mod phases;

pub use apps::{Barnes, Fft, HotspotFft, Lu, Mp3d, Ocean, OsWorkload, Radix, Workload};
pub use explicit::ExplicitWorkload;
pub use openloop::OpenLoopWorkload;
pub use phases::{Phase, PhaseStream};

use flash::{Machine, MachineConfig, MachineReport, RunResult};

/// Default per-run cycle budget (deadlock guard).
pub const DEFAULT_BUDGET: u64 = 40_000_000_000;

/// The per-run cycle budget: [`DEFAULT_BUDGET`] unless the
/// `FLASH_JOB_BUDGET` environment variable overrides it (the run-matrix
/// supervisor's per-job budget knob; accepts a plain cycle count).
pub fn budget() -> u64 {
    std::env::var("FLASH_JOB_BUDGET")
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(DEFAULT_BUDGET)
}

/// Builds a machine for `workload` under `cfg` (node count and placement
/// are taken from the workload).
pub fn build_machine(cfg: &MachineConfig, workload: &dyn Workload) -> Machine {
    let mut cfg = cfg.clone();
    cfg.nodes = workload.procs();
    cfg.placement = workload.placement();
    let mut m = match workload.open_loop_sources() {
        Some(sources) => Machine::new_open_loop(cfg, sources),
        None => Machine::new(cfg, workload.streams()),
    };
    for (at, node, addr) in workload.dma_events() {
        m.add_dma_write(at, node, addr);
    }
    m
}

/// Runs `workload` on a machine configured by `cfg` and reports.
///
/// # Panics
///
/// Panics if the run exhausts the cycle [`budget`], deadlocks, or wedges
/// (forward-progress watchdog). The panic message carries the full
/// structured diagnosis so the run-matrix supervisor's failure table
/// shows who was waiting on what.
pub fn run_workload(cfg: &MachineConfig, workload: &dyn Workload) -> MachineReport {
    let mut m = build_machine(cfg, workload);
    match m.run(budget()) {
        RunResult::Completed { .. } => MachineReport::from_machine(&m),
        RunResult::BudgetExhausted => panic!(
            "{} exhausted the cycle budget\n{}",
            workload.name(),
            m.diagnose("cycle budget exhausted")
        ),
        RunResult::Deadlocked { stuck } => panic!(
            "{} deadlocked with {stuck} processors unfinished\n{}",
            workload.name(),
            m.diagnose("event queue drained with processors unfinished")
        ),
        RunResult::Wedged { report } => panic!("{} wedged\n{report}", workload.name()),
    }
}

/// Constructs a paper-size workload by name.
///
/// # Panics
///
/// Panics on an unknown name.
pub fn by_name(name: &str, procs: u16, scale: u32) -> Box<dyn Workload> {
    match name {
        "Barnes" => Box::new(Barnes::scaled(procs, scale)),
        "FFT" => Box::new(Fft::scaled(procs, scale)),
        "LU" => Box::new(Lu::scaled(procs, scale)),
        "MP3D" => Box::new(Mp3d::scaled(procs, scale)),
        "Ocean" => Box::new(Ocean::scaled(procs, scale)),
        "OS" => Box::new(OsWorkload::scaled(procs, scale)),
        "Radix" => Box::new(Radix::scaled(procs, scale)),
        other => panic!("unknown workload `{other}`"),
    }
}

/// The parallel application names, in the paper's table order.
pub const PARALLEL_APPS: [&str; 6] = ["Barnes", "FFT", "LU", "MP3D", "Ocean", "Radix"];

#[cfg(test)]
mod tests {
    use super::*;
    use flash_cpu::WorkItem;

    #[test]
    fn all_workloads_produce_balanced_streams() {
        // Every stream must contain the same number of barriers per
        // processor (or the machine deadlocks) and terminate.
        for name in PARALLEL_APPS {
            let w = by_name(name, 4, 16);
            let streams = w.streams();
            assert_eq!(streams.len(), 4);
            let mut barrier_counts = Vec::new();
            for mut s in streams {
                let mut barriers = 0;
                let mut items = 0u64;
                let mut lock_depth: i64 = 0;
                loop {
                    match s.next_item() {
                        WorkItem::Done => break,
                        WorkItem::Barrier => barriers += 1,
                        WorkItem::Lock(_) => lock_depth += 1,
                        WorkItem::Unlock(_) => lock_depth -= 1,
                        _ => {}
                    }
                    items += 1;
                    assert!(items < 50_000_000, "{name}: runaway stream");
                }
                assert_eq!(lock_depth, 0, "{name}: unbalanced locks");
                barrier_counts.push(barriers);
            }
            assert!(
                barrier_counts.windows(2).all(|w| w[0] == w[1]),
                "{name}: unbalanced barriers {barrier_counts:?}"
            );
        }
    }

    #[test]
    fn os_workload_has_dma_and_rr_placement() {
        let w = OsWorkload::scaled(8, 4);
        assert!(matches!(
            w.placement(),
            flash::Placement::RoundRobinPages { .. }
        ));
        assert!(!w.dma_events().is_empty());
        let orig = w.original_port();
        assert!(matches!(orig.placement(), flash::Placement::FirstNode));
    }

    #[test]
    fn by_name_rejects_unknown() {
        let r = std::panic::catch_unwind(|| by_name("NotAnApp", 4, 1));
        assert!(r.is_err());
    }

    #[test]
    fn scaled_sizes_shrink() {
        let full = Fft::paper(16);
        let small = Fft::scaled(16, 8);
        assert!(small.dim < full.dim);
        let r = Radix::scaled(16, 16);
        assert!(r.keys < Radix::paper(16).keys);
    }
}
