//! The open-loop workload: a [`TrafficSpec`] dressed as a [`Workload`].
//!
//! Every other workload in this crate is closed-loop — the processor
//! pulls the next reference the instant the previous one retires, so
//! offered load always equals capacity. `OpenLoopWorkload` inverts that:
//! references *arrive* on a seeded schedule whether or not the machine
//! has kept up, which is what makes offered load an independent variable
//! and lets `flash-bench`'s `traffic_suite` sweep it past the knee.

use crate::apps::Workload;
use flash::config::Placement;
use flash_cpu::{RefStream, SliceStream};
use flash_traffic::{ArrivalSource, TrafficSpec};

/// An open-loop traffic workload, built from a declarative
/// [`TrafficSpec`] (pattern × popularity × tenants × load).
///
/// Run it like any other workload:
///
/// ```
/// use flash::MachineConfig;
/// use flash_traffic::TrafficSpec;
/// use flash_workloads::{build_machine, OpenLoopWorkload};
///
/// let w = OpenLoopWorkload::new(TrafficSpec::poisson(4, 64, 200, 50, 9));
/// let mut m = build_machine(&MachineConfig::flash(4), &w);
/// assert!(matches!(m.run(10_000_000), flash::RunResult::Completed { .. }));
/// let stats = m.traffic_stats().expect("open-loop machine has feeds");
/// assert_eq!(stats.iter().map(|(_, s)| s.admitted).sum::<u64>(), 4 * 200);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct OpenLoopWorkload {
    /// The traffic description the per-node arrival sources are built
    /// from. Public so sweeps can dial one knob (e.g. `mean_gap`)
    /// between runs.
    pub spec: TrafficSpec,
}

impl OpenLoopWorkload {
    /// Wraps a traffic spec as a workload.
    pub fn new(spec: TrafficSpec) -> Self {
        OpenLoopWorkload { spec }
    }
}

impl Workload for OpenLoopWorkload {
    fn name(&self) -> &'static str {
        "OpenLoop"
    }

    fn procs(&self) -> u16 {
        self.spec.nodes
    }

    fn placement(&self) -> Placement {
        // TrafficSpec::object_addr encodes the home node in bits 32..48,
        // the `Placement::Explicit` layout.
        Placement::Explicit
    }

    /// Unused on the open-loop path ([`crate::build_machine`] feeds the
    /// machine from [`Workload::open_loop_sources`] instead); returns
    /// empty streams so the trait contract still holds if called.
    fn streams(&self) -> Vec<Box<dyn RefStream>> {
        (0..self.spec.nodes)
            .map(|_| Box::new(SliceStream::new(Vec::new())) as Box<dyn RefStream>)
            .collect()
    }

    fn open_loop_sources(&self) -> Option<Vec<Box<dyn ArrivalSource>>> {
        Some(self.spec.sources())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build_machine;
    use flash::{MachineConfig, RunResult};

    fn spec() -> TrafficSpec {
        TrafficSpec::poisson(4, 128, 150, 40, 21)
    }

    #[test]
    fn build_machine_takes_the_open_loop_path() {
        let w = OpenLoopWorkload::new(spec());
        let mut m = build_machine(&MachineConfig::flash(4), &w);
        assert!(m.open_loop(), "machine must be fed by arrival sources");
        let RunResult::Completed { exec_cycles } = m.run(50_000_000) else {
            panic!("open-loop run stuck");
        };
        assert!(exec_cycles > 0);
        let stats = m.traffic_stats().expect("traffic stats present");
        assert_eq!(stats.len(), 4);
        let arrivals: u64 = stats.iter().map(|(_, s)| s.arrivals).sum();
        let admitted: u64 = stats.iter().map(|(_, s)| s.admitted).sum();
        assert_eq!(arrivals, 4 * 150);
        assert_eq!(admitted, arrivals, "a completed run admits everything");
    }

    #[test]
    fn closed_loop_workloads_report_no_sources() {
        let w = crate::by_name("FFT", 4, 32);
        assert!(w.open_loop_sources().is_none());
        let mut m = build_machine(&MachineConfig::flash(4), w.as_ref());
        assert!(!m.open_loop());
        assert!(m.traffic_stats().is_none());
        assert!(matches!(m.run(100_000_000), RunResult::Completed { .. }));
    }

    #[test]
    fn open_loop_runs_are_deterministic() {
        let run = || {
            let w = OpenLoopWorkload::new(spec());
            let mut m = build_machine(&MachineConfig::flash(4), &w);
            let RunResult::Completed { exec_cycles } = m.run(50_000_000) else {
                panic!("stuck");
            };
            (exec_cycles, m.traffic_stats())
        };
        assert_eq!(run(), run());
    }
}
