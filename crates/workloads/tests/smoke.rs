//! End-to-end workload smoke tests: every application must complete on
//! every controller kind, with sane statistics.

use flash::{ControllerKind, LatencyTable, MachineConfig};
use flash_workloads::{build_machine, by_name, run_workload, Fft, OsWorkload, PARALLEL_APPS};

fn cfg(kind: ControllerKind, procs: u16) -> MachineConfig {
    match kind {
        ControllerKind::FlashEmulated => MachineConfig::flash(procs),
        ControllerKind::FlashCostTable => MachineConfig::flash_cost_table(procs),
        ControllerKind::Ideal => MachineConfig::ideal(procs),
    }
}

#[test]
fn parallel_apps_complete_on_all_machines() {
    for name in PARALLEL_APPS {
        let w = by_name(name, 4, 32);
        let mut cycles = Vec::new();
        for kind in [
            ControllerKind::FlashEmulated,
            ControllerKind::FlashCostTable,
            ControllerKind::Ideal,
        ] {
            let r = run_workload(&cfg(kind, 4), w.as_ref());
            println!(
                "{name:8} {kind:?}: {} cycles, miss {:.2}%, class {:?}, ppocc {:.1}%/{:.1}%, mem {:.1}%, crmt {:.0}",
                r.exec_cycles,
                r.miss_rate * 100.0,
                r.class_fractions().map(|f| (f * 100.0).round()),
                r.pp_occupancy.0 * 100.0,
                r.pp_occupancy.1 * 100.0,
                r.mem_occupancy.0 * 100.0,
                r.crmt(&LatencyTable::paper_flash()),
            );
            assert!(r.exec_cycles > 0, "{name} {kind:?}");
            assert!(r.references > 100, "{name} {kind:?}");
            cycles.push(r.exec_cycles);
        }
        // Ideal must not be slower than detailed FLASH.
        assert!(
            cycles[2] <= cycles[0],
            "{name}: ideal {} vs flash {}",
            cycles[2],
            cycles[0]
        );
    }
}

#[test]
fn os_workload_completes_with_dma() {
    let w = OsWorkload::scaled(4, 4);
    let r = run_workload(&cfg(ControllerKind::FlashEmulated, 4), &w);
    println!(
        "OS: {} cycles, miss {:.2}%, ppocc avg {:.1}% max {:.1}%",
        r.exec_cycles,
        r.miss_rate * 100.0,
        r.pp_occupancy.0 * 100.0,
        r.pp_occupancy.1 * 100.0
    );
    assert!(r.exec_cycles > 0);
    // DMA writes invalidate cached buffer-cache lines somewhere.
    let i = run_workload(&cfg(ControllerKind::Ideal, 4), &w);
    assert!(i.exec_cycles <= r.exec_cycles);
}

#[test]
fn hotspot_fft_loads_node_zero() {
    let w = Fft::hotspot(4, 16);
    let mut m = build_machine(&cfg(ControllerKind::FlashEmulated, 4), &w);
    let flash::RunResult::Completed { .. } = m.run(flash_workloads::DEFAULT_BUDGET) else {
        panic!("stuck");
    };
    let end = flash_engine::Cycle::new(m.exec_cycles());
    let occ0 = m.chips()[0].pp_occupancy(end);
    let occ_rest: f64 = (1..4).map(|i| m.chips()[i].pp_occupancy(end)).sum::<f64>() / 3.0;
    println!(
        "hotspot: node0 PP occ {:.1}%, others {:.1}%",
        occ0 * 100.0,
        occ_rest * 100.0
    );
    assert!(occ0 > 2.0 * occ_rest, "node 0 must be the hot spot");
}

#[test]
fn miss_class_shapes_match_the_paper() {
    // The dominant read-miss class for each application must match paper
    // Table 4.1 (scale-reduced runs shift percentages, not the dominant
    // communication pattern).
    // Classes: [LocalClean, LocalDirtyRemote, RemoteClean, RemoteDirtyHome,
    // RemoteDirtyRemote].
    let dominant = |name: &str, procs: u16, scale: u32| -> usize {
        let w = by_name(name, procs, scale);
        let r = run_workload(&cfg(ControllerKind::FlashEmulated, procs), w.as_ref());
        let cf = r.class_fractions();
        (0..5)
            .max_by(|&a, &b| cf[a].partial_cmp(&cf[b]).unwrap())
            .unwrap()
    };
    // MP3D: remote dirty remote (paper: 84%).
    assert_eq!(
        dominant("MP3D", 8, 16),
        4,
        "MP3D must be RemoteDirtyRemote-dominated"
    );
    // LU: remote-dominated via pivot-block broadcast (paper: 67% remote
    // clean + 32% dirty-at-home; at 8 processors the clean/dirty split
    // shifts, the remote dominance does not).
    {
        let w = by_name("LU", 8, 8);
        let r = run_workload(&cfg(ControllerKind::FlashEmulated, 8), w.as_ref());
        let cf = r.class_fractions();
        assert!(
            cf[2] + cf[3] > 0.8,
            "LU must be remote-dominated, got {cf:?}"
        );
        assert!(
            cf[4] < 0.05,
            "LU has no dirty-third-node pattern, got {cf:?}"
        );
    }
    // Radix: local classes dominate (paper: 76% local dirty remote).
    let w = by_name("Radix", 8, 16);
    let r = run_workload(&cfg(ControllerKind::FlashEmulated, 8), w.as_ref());
    let cf = r.class_fractions();
    assert!(
        cf[0] + cf[1] > 0.6,
        "Radix must be local-dominated, got {cf:?}"
    );
    assert!(
        cf[1] > 0.2,
        "Radix needs a large local-dirty-remote share, got {cf:?}"
    );
}

#[test]
fn fft_transposes_produce_dirty_at_home() {
    let w = by_name("FFT", 8, 8);
    let r = run_workload(&cfg(ControllerKind::FlashEmulated, 8), w.as_ref());
    let cf = r.class_fractions();
    // Paper: 62% remote dirty at home from the all-to-all transpose.
    assert!(
        cf[3] > 0.25,
        "FFT transpose must show RemoteDirtyHome, got {cf:?}"
    );
    assert!(
        cf[4] < 0.1,
        "FFT has no dirty-third-node pattern, got {cf:?}"
    );
}

#[test]
fn small_caches_shift_radix_toward_local() {
    // Paper Table 4.2: Radix goes from 2.6% LocalClean at 1 MB to 91%+ at
    // small caches.
    let w = by_name("Radix", 8, 16);
    let small = {
        let c = cfg(ControllerKind::FlashEmulated, 8).with_cache_bytes(8 << 10);
        run_workload(&c, w.as_ref())
    };
    let big = run_workload(&cfg(ControllerKind::FlashEmulated, 8), w.as_ref());
    assert!(
        small.class_fractions()[0] > big.class_fractions()[0],
        "smaller caches must raise Radix's local-clean share ({:?} vs {:?})",
        small.class_fractions(),
        big.class_fractions()
    );
}
