use flash::{MachineConfig, MachineReport, RunResult};
use flash_workloads::{build_machine, by_name};

fn main() {
    let name = std::env::args().nth(1).unwrap();
    let scale: u32 = std::env::args()
        .nth(2)
        .map(|s| s.parse().unwrap())
        .unwrap_or(1);
    let w = by_name(&name, 16, scale);
    for cfg in [MachineConfig::flash(16), MachineConfig::ideal(16)] {
        let kind = cfg.controller;
        let mut m = build_machine(&cfg, w.as_ref());
        let RunResult::Completed { exec_cycles } = m.run(flash_workloads::DEFAULT_BUDGET) else {
            panic!()
        };
        let r = MachineReport::from_machine(&m);
        let nacks: u64 = r.handlers.get("ni_nack").map(|x| x.0).unwrap_or(0);
        let gets: u64 = r.handlers.get("ni_getx").map(|x| x.0).unwrap_or(0)
            + r.handlers.get("ni_get").map(|x| x.0).unwrap_or(0);
        if kind == flash::ControllerKind::FlashEmulated {
            let mut hs: Vec<(&str, u64, u64)> =
                r.handlers.iter().map(|(k, v)| (*k, v.0, v.1)).collect();
            hs.sort_by_key(|x| std::cmp::Reverse(x.2));
            for (name, n, cyc) in hs.iter().take(8) {
                println!("  {name}: {n} x avg {:.1} cyc", *cyc as f64 / *n as f64);
            }
        }
        let h = m.procs()[3].miss_latency();
        println!(
            "{kind:?}: exec {exec_cycles}, misses {} (rate {:.2}%), net reqs {gets}, nacks {nacks}, defer {}, ppocc {:.1}%/{:.1}%, memocc {:.1}%/{:.1}%, mdc stall {} miss {:.1}%, lat mean {:.0} max {}",
            (r.references as f64 * r.miss_rate) as u64,
            r.miss_rate * 100.0,
            m.interv_deferrals(),
            r.pp_occupancy.0 * 100.0, r.pp_occupancy.1 * 100.0,
            r.mem_occupancy.0 * 100.0, r.mem_occupancy.1 * 100.0,
            r.mdc.stall_cycles, r.mdc.miss_rate * 100.0,
            h.mean(), h.max(),
        );
    }
}
