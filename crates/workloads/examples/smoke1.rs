use flash::{MachineConfig, RunResult};
use flash_workloads::{build_machine, by_name};

fn main() {
    let name = std::env::args().nth(1).unwrap();
    let scale: u32 = std::env::args()
        .nth(2)
        .map(|s| s.parse().unwrap())
        .unwrap_or(32);
    let procs: u16 = std::env::args()
        .nth(3)
        .map(|s| s.parse().unwrap())
        .unwrap_or(4);
    let w = by_name(&name, procs, scale);
    let t0 = std::time::Instant::now();
    let mut m = build_machine(&MachineConfig::flash(procs), w.as_ref());
    let res = m.run(10_000_000_000);
    let wall = t0.elapsed();
    match res {
        RunResult::Completed { exec_cycles } => {
            let r = flash::MachineReport::from_machine(&m);
            println!(
                "{name} scale{scale} p{procs}: {exec_cycles} cycles in {wall:.1?}, miss {:.2}%, class {:?}, ppocc {:.1}%",
                r.miss_rate * 100.0,
                r.class_fractions().map(|f| (f * 100.0).round()),
                r.pp_occupancy.0 * 100.0
            );
        }
        other => println!("{name}: {other:?}"),
    }
}
