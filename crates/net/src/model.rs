//! Network latency model.

use crate::mesh::Mesh;
use flash_engine::{Counter, Cycle, NodeId};

/// Network configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetConfig {
    /// Per-hop fall-through time in cycles (40 ns = 4 cycles, paper §3.2).
    pub hop_cycles: u64,
    /// Header serialization cycles (3, paper §3.2).
    pub header_cycles: u64,
    /// Charge the mesh-average transit to every message (the paper's
    /// model). When `false`, per-hop distances are charged instead.
    pub fixed_average: bool,
    /// Override the computed fixed transit (the paper's 16-node value is
    /// 22 cycles; `None` derives it from the mesh).
    pub transit_override: Option<u64>,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            hop_cycles: 4,
            header_cycles: 3,
            fixed_average: true,
            transit_override: None,
        }
    }
}

/// The interconnect: computes message transit latencies and counts
/// traffic. Queue backpressure is modelled at the MAGIC network-interface
/// queues (see `flash-magic`), matching the paper's "messages back up into
/// the network" semantics.
///
/// # Examples
///
/// ```
/// use flash_net::{Mesh, NetConfig, NetModel};
/// use flash_engine::{Cycle, NodeId};
///
/// let mut net = NetModel::new(Mesh::for_nodes(16), NetConfig::default());
/// // The paper's 16-node average transit: 22 cycles.
/// assert_eq!(net.transit(NodeId(0), NodeId(5)), 22);
/// let arrive = net.send(Cycle::new(100), NodeId(0), NodeId(5));
/// assert_eq!(arrive, Cycle::new(122));
/// ```
#[derive(Debug, Clone)]
pub struct NetModel {
    mesh: Mesh,
    cfg: NetConfig,
    fixed_transit: u64,
    messages: Counter,
    hops_total: Counter,
}

impl NetModel {
    /// Builds the model for a mesh.
    pub fn new(mesh: Mesh, cfg: NetConfig) -> Self {
        let fixed_transit = cfg.transit_override.unwrap_or_else(|| {
            // enter (1 hop) + exit (1 hop) + average transit hops, plus
            // header cycles; the paper rounds its 16-node figure to 22.
            let hops = 2.0 + mesh.average_hops();
            (hops * cfg.hop_cycles as f64).round() as u64 + cfg.header_cycles
        });
        NetModel {
            mesh,
            cfg,
            fixed_transit,
            messages: Counter::default(),
            hops_total: Counter::default(),
        }
    }

    /// Transit latency in cycles from `src` to `dst` (loopback messages
    /// skip the mesh but still pay entry/exit and header costs).
    pub fn transit(&self, src: NodeId, dst: NodeId) -> u64 {
        if src == dst {
            return self.cfg.header_cycles + 2 * self.cfg.hop_cycles;
        }
        if self.cfg.fixed_average {
            self.fixed_transit
        } else {
            (2 + self.mesh.hops(src, dst) as u64) * self.cfg.hop_cycles + self.cfg.header_cycles
        }
    }

    /// Charges a message send at `at`, returning its arrival time at the
    /// destination's network interface.
    pub fn send(&mut self, at: Cycle, src: NodeId, dst: NodeId) -> Cycle {
        self.messages.incr();
        self.hops_total.add(self.mesh.hops(src, dst) as u64);
        at + self.transit(src, dst)
    }

    /// Total messages carried.
    pub fn messages(&self) -> u64 {
        self.messages.get()
    }

    /// Mean hops per message carried.
    pub fn mean_hops(&self) -> f64 {
        self.hops_total.get() as f64 / self.messages.get().max(1) as f64
    }

    /// The mesh this network spans.
    pub fn mesh(&self) -> Mesh {
        self.mesh
    }

    /// The fixed average transit charged when `fixed_average` is set.
    pub fn fixed_transit(&self) -> u64 {
        self.fixed_transit
    }

    /// The minimum transit latency between two *distinct* nodes — the
    /// conservative-lookahead bound for parallel simulation: no message
    /// posted at time `t` can arrive at another node before
    /// `t + min_remote_transit()`. Loopback (same-node) messages are
    /// cheaper but never cross a shard boundary, so they do not bound the
    /// lookahead. Returns the fixed transit in fixed-average mode (every
    /// remote message pays it) and the adjacent-node cost in per-hop mode.
    pub fn min_remote_transit(&self) -> u64 {
        if let Some(v) = self.cfg.transit_override {
            return v;
        }
        if self.cfg.fixed_average {
            self.fixed_transit
        } else {
            (2 + 1) * self.cfg.hop_cycles + self.cfg.header_cycles
        }
    }

    /// The maximum transit latency between two nodes — the longest
    /// *routine* scheduling distance mesh traffic produces, reached by
    /// corner-to-corner messages crossing the full mesh diameter. Event
    /// queues size their near-future wheel to cover it so steady-state
    /// traffic on big meshes does not degrade to the overflow heap.
    pub fn max_remote_transit(&self) -> u64 {
        if let Some(v) = self.cfg.transit_override {
            return v;
        }
        if self.cfg.fixed_average {
            self.fixed_transit
        } else {
            let (w, h) = self.mesh.dims();
            let diameter = (w.max(1) as u64 - 1) + (h.max(1) as u64 - 1);
            (2 + diameter.max(1)) * self.cfg.hop_cycles + self.cfg.header_cycles
        }
    }

    /// Folds another model's traffic counters into this one (shard
    /// teardown: per-shard models accumulate independently and merge into
    /// the machine's master model for reporting).
    pub fn absorb_counts(&mut self, other: &NetModel) {
        self.messages.add(other.messages.get());
        self.hops_total.add(other.hops_total.get());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sixteen_node_transit_matches_paper() {
        let net = NetModel::new(Mesh::for_nodes(16), NetConfig::default());
        assert_eq!(net.fixed_transit(), 22, "paper: 220 ns = 22 cycles");
    }

    #[test]
    fn sixty_four_nodes_cost_more() {
        let n16 = NetModel::new(Mesh::for_nodes(16), NetConfig::default());
        let n64 = NetModel::new(Mesh::for_nodes(64), NetConfig::default());
        assert!(n64.fixed_transit() > n16.fixed_transit());
        assert!(
            (30..40).contains(&n64.fixed_transit()),
            "{}",
            n64.fixed_transit()
        );
    }

    #[test]
    fn override_wins() {
        let cfg = NetConfig {
            transit_override: Some(99),
            ..NetConfig::default()
        };
        let net = NetModel::new(Mesh::for_nodes(16), cfg);
        assert_eq!(net.transit(NodeId(0), NodeId(1)), 99);
    }

    #[test]
    fn per_hop_mode_varies_with_distance() {
        let cfg = NetConfig {
            fixed_average: false,
            ..NetConfig::default()
        };
        let net = NetModel::new(Mesh::for_nodes(16), cfg);
        let near = net.transit(NodeId(0), NodeId(1));
        let far = net.transit(NodeId(0), NodeId(15));
        assert!(far > near);
        assert_eq!(near, (2 + 1) * 4 + 3);
        assert_eq!(far, (2 + 6) * 4 + 3);
    }

    #[test]
    fn loopback_is_cheap_but_not_free() {
        let net = NetModel::new(Mesh::for_nodes(16), NetConfig::default());
        let lb = net.transit(NodeId(3), NodeId(3));
        assert!(lb > 0 && lb < net.fixed_transit());
    }

    #[test]
    fn min_remote_transit_bounds_every_remote_pair() {
        for cfg in [
            NetConfig::default(),
            NetConfig {
                fixed_average: false,
                ..NetConfig::default()
            },
            NetConfig {
                transit_override: Some(99),
                ..NetConfig::default()
            },
        ] {
            let net = NetModel::new(Mesh::for_nodes(16), cfg);
            let min = net.min_remote_transit();
            for a in 0..16 {
                for b in 0..16 {
                    if a != b {
                        assert!(
                            net.transit(NodeId(a), NodeId(b)) >= min,
                            "{cfg:?}: transit({a},{b}) < {min}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn absorb_counts_sums_traffic() {
        let mut a = NetModel::new(Mesh::for_nodes(16), NetConfig::default());
        let mut b = NetModel::new(Mesh::for_nodes(16), NetConfig::default());
        a.send(Cycle::new(0), NodeId(0), NodeId(1));
        b.send(Cycle::new(0), NodeId(0), NodeId(15));
        b.send(Cycle::new(5), NodeId(2), NodeId(3));
        a.absorb_counts(&b);
        assert_eq!(a.messages(), 3);
        assert_eq!(a.mean_hops(), (1 + 6 + 1) as f64 / 3.0);
    }

    #[test]
    fn send_accumulates_stats() {
        let mut net = NetModel::new(Mesh::for_nodes(16), NetConfig::default());
        let t = net.send(Cycle::new(0), NodeId(0), NodeId(15));
        assert_eq!(t.raw(), 22);
        net.send(Cycle::new(0), NodeId(0), NodeId(1));
        assert_eq!(net.messages(), 2);
        assert_eq!(net.mean_hops(), 3.5);
    }
}
