//! The network-interface (NI) queue: bounded buffering with backpressure
//! accounting.
//!
//! MAGIC's NI holds a fixed number of inbound messages (paper Table 3.1);
//! when it fills, "messages back up into the network" — nothing is ever
//! dropped, the upstream link simply stalls until the PP drains a slot.
//! [`NiQueue`] wraps the engine's [`BoundedQueue`] with the accounting the
//! correctness net and the reports need: accepted/drained conservation,
//! rejection counts, and the cycles an upstream producer spent stalled
//! against a full queue.

use flash_engine::{BoundedQueue, Cycle};

/// A bounded FIFO with stall accounting for the MAGIC network interface.
///
/// # Examples
///
/// ```
/// use flash_net::NiQueue;
/// use flash_engine::Cycle;
///
/// let mut ni = NiQueue::bounded(1);
/// assert!(ni.offer(Cycle::new(0), "a").is_ok());
/// assert_eq!(ni.offer(Cycle::new(5), "b"), Err("b")); // full: stall starts
/// assert_eq!(ni.drain(Cycle::new(12)), Some("a"));    // stall ends
/// assert_eq!(ni.stall_cycles(), 7);
/// assert!(ni.audit().is_ok());
/// ```
#[derive(Debug, Clone)]
pub struct NiQueue<T> {
    q: BoundedQueue<T>,
    accepted: u64,
    drained: u64,
    stall_cycles: u64,
    /// Cycle the current backpressure episode began (first rejected
    /// offer), if one is open.
    stalled_since: Option<u64>,
    /// Drains observed *before* the episode they close began — a clock
    /// running backwards. Impossible in a correct schedule (and asserted
    /// in debug builds); counted instead of silently recording a zero
    /// stall so release-mode sharding bugs surface in the stats.
    clock_skew: u64,
}

impl<T> NiQueue<T> {
    /// A queue holding at most `capacity` messages (the FLASH machine).
    pub fn bounded(capacity: usize) -> Self {
        Self::from_inner(BoundedQueue::bounded(capacity))
    }

    /// A queue with no limit (the ideal machine's "infinite depth",
    /// paper §3.1). Never rejects, never accumulates stall time.
    pub fn unbounded() -> Self {
        Self::from_inner(BoundedQueue::unbounded())
    }

    fn from_inner(q: BoundedQueue<T>) -> Self {
        NiQueue {
            q,
            accepted: 0,
            drained: 0,
            stall_cycles: 0,
            stalled_since: None,
            clock_skew: 0,
        }
    }

    /// Offers a message at time `now`.
    ///
    /// # Errors
    ///
    /// Returns `Err(item)` — handing the message back, never dropping it —
    /// when the queue is full. The first rejection opens a backpressure
    /// episode whose duration is charged to [`NiQueue::stall_cycles`]
    /// when a slot next frees up.
    pub fn offer(&mut self, now: Cycle, item: T) -> Result<(), T> {
        match self.q.try_push(item) {
            Ok(()) => {
                self.accepted += 1;
                Ok(())
            }
            Err(item) => {
                self.stalled_since.get_or_insert(now.raw());
                Err(item)
            }
        }
    }

    /// Dequeues the oldest message at time `now`, closing any open
    /// backpressure episode.
    pub fn drain(&mut self, now: Cycle) -> Option<T> {
        let item = self.q.pop()?;
        self.drained += 1;
        if let Some(start) = self.stalled_since.take() {
            // A drain strictly before the episode opened means the caller's
            // clock ran backwards (e.g. a cross-shard ordering bug).
            if let Some(stall) = now.raw().checked_sub(start) {
                self.stall_cycles += stall;
            } else {
                debug_assert!(false, "NI drain at {now} before stall began at {start}c");
                self.clock_skew += 1;
            }
        }
        Some(item)
    }

    /// Messages currently queued.
    pub fn len(&self) -> usize {
        self.q.len()
    }

    /// Whether the queue holds no messages.
    pub fn is_empty(&self) -> bool {
        self.q.is_empty()
    }

    /// Whether the queue is at capacity.
    pub fn is_full(&self) -> bool {
        self.q.is_full()
    }

    /// Messages accepted so far.
    pub fn accepted(&self) -> u64 {
        self.accepted
    }

    /// Messages drained so far.
    pub fn drained(&self) -> u64 {
        self.drained
    }

    /// Offers rejected because the queue was full.
    pub fn rejected(&self) -> u64 {
        self.q.rejected()
    }

    /// Peak occupancy observed.
    pub fn peak(&self) -> usize {
        self.q.peak()
    }

    /// Total cycles upstream producers spent stalled against a full
    /// queue (closed backpressure episodes only).
    pub fn stall_cycles(&self) -> u64 {
        self.stall_cycles
    }

    /// Backwards-clock observations (see the `clock_skew` field). Always
    /// zero on a healthy run; nonzero means event delivery violated time
    /// order.
    pub fn clock_skew(&self) -> u64 {
        self.clock_skew
    }

    /// Message conservation audit (checked mode): every accepted message
    /// is either still queued or was drained — the NI never loses or
    /// duplicates traffic.
    pub fn audit(&self) -> Result<(), String> {
        let accounted = self.drained + self.len() as u64;
        if self.accepted != accounted {
            return Err(format!(
                "NI conservation broken: {} accepted != {} drained + {} queued",
                self.accepted,
                self.drained,
                self.len()
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flash_engine::DetRng;

    #[test]
    fn fifo_and_conservation() {
        let mut ni = NiQueue::bounded(4);
        for i in 0..4 {
            ni.offer(Cycle::new(i), i).unwrap();
        }
        assert!(ni.is_full());
        assert!(ni.audit().is_ok());
        assert_eq!(ni.drain(Cycle::new(10)), Some(0));
        assert_eq!(ni.drain(Cycle::new(11)), Some(1));
        assert_eq!(ni.len(), 2);
        assert_eq!(ni.accepted(), 4);
        assert_eq!(ni.drained(), 2);
        assert!(ni.audit().is_ok());
    }

    #[test]
    fn stall_episode_is_charged_on_next_drain() {
        let mut ni = NiQueue::bounded(1);
        ni.offer(Cycle::new(0), 'a').unwrap();
        // Filling the queue alone is not a stall...
        assert_eq!(ni.stall_cycles(), 0);
        // ...a rejected offer opens the episode.
        assert_eq!(ni.offer(Cycle::new(5), 'b'), Err('b'));
        assert_eq!(ni.offer(Cycle::new(8), 'b'), Err('b')); // same episode
        assert_eq!(ni.drain(Cycle::new(12)), Some('a'));
        assert_eq!(ni.stall_cycles(), 7, "charged from first rejection");
        // Episode closed: the retry now succeeds and no stall accrues.
        ni.offer(Cycle::new(12), 'b').unwrap();
        assert_eq!(ni.drain(Cycle::new(20)), Some('b'));
        assert_eq!(ni.stall_cycles(), 7);
        assert_eq!(ni.rejected(), 2);
        assert!(ni.audit().is_ok());
    }

    #[test]
    fn saturation_loses_nothing() {
        // A producer far faster than the consumer: every message is
        // eventually delivered, in order, despite constant rejection.
        let mut ni = NiQueue::bounded(2);
        let mut delivered = Vec::new();
        let mut held: Option<u32> = None;
        let mut next = 0u32;
        let mut now = 0u64;
        while delivered.len() < 100 {
            now += 1;
            // Upstream: retry the held-back message first, else a new one.
            if next < 100 || held.is_some() {
                let m = held.take().unwrap_or_else(|| {
                    let m = next;
                    next += 1;
                    m
                });
                if let Err(back) = ni.offer(Cycle::new(now), m) {
                    held = Some(back); // backed up into the network
                }
            }
            // Downstream: drain one message every 3 cycles.
            if now.is_multiple_of(3) {
                if let Some(m) = ni.drain(Cycle::new(now)) {
                    delivered.push(m);
                }
            }
            assert!(ni.audit().is_ok());
        }
        assert_eq!(delivered, (0..100).collect::<Vec<_>>(), "FIFO, no loss");
        assert!(ni.rejected() > 0, "the queue must actually have saturated");
        assert!(ni.stall_cycles() > 0, "backpressure time must be charged");
        assert_eq!(ni.peak(), 2);
        assert_eq!(ni.accepted(), 100);
    }

    #[test]
    fn unbounded_never_stalls() {
        let mut ni = NiQueue::unbounded();
        for i in 0..10_000u64 {
            ni.offer(Cycle::new(i), i).unwrap();
        }
        assert_eq!(ni.rejected(), 0);
        assert_eq!(ni.stall_cycles(), 0);
        assert!(!ni.is_full());
        assert!(ni.audit().is_ok());
    }

    /// Drives a producer/consumer pair against `ni` where the consumer
    /// obeys injector-issued freeze windows: while the injector holds the
    /// queue frozen, nothing drains and offers back up into the network.
    /// Returns (delivered, freeze windows observed).
    fn run_with_freezes(
        ni: &mut NiQueue<u32>,
        plan: &flash_fault::FaultPlan,
        total: u32,
    ) -> (Vec<u32>, u64) {
        use flash_fault::{FaultInjector, NiDir};
        let mut inj = FaultInjector::new(plan).expect("armed plan");
        let mut delivered = Vec::new();
        let mut held: Option<u32> = None;
        let mut next = 0u32;
        let mut now = 0u64;
        let mut frozen_until = 0u64;
        while delivered.len() < total as usize {
            now += 1;
            if next < total || held.is_some() {
                let m = held.take().unwrap_or_else(|| {
                    let m = next;
                    next += 1;
                    m
                });
                if let Err(back) = ni.offer(Cycle::new(now), m) {
                    held = Some(back); // backed up into the network
                }
            }
            // The consumer polls the injector before each drain: a freeze
            // models the PP refusing to service the NI input queue.
            if now >= frozen_until {
                if let Some(until) = inj.ni_freeze(Cycle::new(now), 0, NiDir::In) {
                    frozen_until = until.raw();
                }
            }
            if now >= frozen_until {
                if let Some(m) = ni.drain(Cycle::new(now)) {
                    delivered.push(m);
                }
            }
            assert!(ni.audit().is_ok(), "conservation must hold cycle {now}");
            assert!(now < 1_000_000, "freeze run must terminate");
        }
        (delivered, inj.stats().ni_freezes)
    }

    #[test]
    fn injected_freeze_bounds_occupancy_and_drains_after_lift() {
        // A fault-injector freeze window must never make the bounded NI
        // overflow: occupancy stays <= capacity, rejected offers back up,
        // and once the window lifts every message still arrives in order.
        let mut plan = flash_fault::FaultPlan::zeroed(0xF5EE);
        plan.ni_freeze_p = 0.01;
        plan.ni_freeze_cycles = 40;
        let mut ni = NiQueue::bounded(4);
        let (delivered, freezes) = run_with_freezes(&mut ni, &plan, 200);
        assert_eq!(delivered, (0..200).collect::<Vec<_>>(), "FIFO, no loss");
        assert!(freezes > 0, "plan must actually have frozen the queue");
        assert!(ni.peak() <= 4, "freeze must not overflow the bounded NI");
        assert_eq!(ni.peak(), 4, "a 40-cycle freeze must fill the queue");
        assert!(ni.rejected() > 0, "backpressure during the freeze");
        assert!(ni.stall_cycles() > 0, "freeze time charged as stall time");
        assert_eq!(ni.accepted(), 200);
        assert!(ni.audit().is_ok());
    }

    #[test]
    fn freeze_schedule_replays_byte_identically() {
        // The same seed must produce the identical freeze schedule and
        // therefore identical queue accounting (determinism contract).
        let mut plan = flash_fault::FaultPlan::zeroed(0xD1CE);
        plan.ni_freeze_p = 0.02;
        plan.ni_freeze_cycles = 25;
        let mut a = NiQueue::bounded(3);
        let mut b = NiQueue::bounded(3);
        let (da, fa) = run_with_freezes(&mut a, &plan, 150);
        let (db, fb) = run_with_freezes(&mut b, &plan, 150);
        assert_eq!(da, db);
        assert_eq!(fa, fb);
        assert_eq!(a.stall_cycles(), b.stall_cycles());
        assert_eq!(a.rejected(), b.rejected());
        assert_eq!(a.peak(), b.peak());
    }

    #[test]
    fn zeroed_freeze_plan_is_invisible() {
        // An armed plan with ni_freeze_p = 0 must behave exactly like no
        // injector at all: zero freezes, zero stalls at this drain rate.
        let plan = flash_fault::FaultPlan::zeroed(0xF5EE);
        let mut ni = NiQueue::bounded(4);
        let (delivered, freezes) = run_with_freezes(&mut ni, &plan, 200);
        assert_eq!(delivered, (0..200).collect::<Vec<_>>());
        assert_eq!(freezes, 0);
        assert_eq!(ni.rejected(), 0, "consumer keeps up when never frozen");
        assert_eq!(ni.stall_cycles(), 0);
    }

    #[test]
    fn randomized_producer_consumer_conserves_messages() {
        for stream in 0..4u64 {
            let mut rng = DetRng::for_stream(0x4E71, stream);
            let mut ni = NiQueue::bounded(1 + rng.below(4) as usize);
            let mut pushed = Vec::new();
            let mut delivered = Vec::new();
            let mut next = 0u64;
            for now in 0..5_000u64 {
                if rng.chance(0.6) {
                    if ni.offer(Cycle::new(now), next).is_ok() {
                        pushed.push(next);
                    }
                    next += 1;
                }
                if rng.chance(0.35) {
                    if let Some(m) = ni.drain(Cycle::new(now)) {
                        delivered.push(m);
                    }
                }
                assert!(ni.audit().is_ok(), "stream {stream} cycle {now}");
            }
            while let Some(m) = ni.drain(Cycle::new(6_000)) {
                delivered.push(m);
            }
            assert_eq!(delivered, pushed, "stream {stream}");
            assert_eq!(ni.accepted(), delivered.len() as u64);
        }
    }
}
