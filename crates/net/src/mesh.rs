//! 2-D mesh topology.

use flash_engine::NodeId;

/// A 2-D mesh of nodes, as square as possible for the node count.
///
/// # Examples
///
/// ```
/// use flash_net::Mesh;
/// use flash_engine::NodeId;
///
/// let m = Mesh::for_nodes(16);
/// assert_eq!(m.dims(), (4, 4));
/// assert_eq!(m.hops(NodeId(0), NodeId(15)), 6);
/// // The paper's 16-node average: ~2.6 hops of transit.
/// assert!((m.average_hops() - 2.5).abs() < 0.2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Mesh {
    cols: u16,
    rows: u16,
    nodes: u16,
}

impl Mesh {
    /// Builds the most-square mesh holding `nodes` nodes.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is zero.
    pub fn for_nodes(nodes: u16) -> Self {
        assert!(nodes > 0, "a mesh needs at least one node");
        let mut cols = (nodes as f64).sqrt().ceil() as u16;
        while !nodes.is_multiple_of(cols) && cols < nodes {
            cols += 1;
        }
        let rows = nodes / cols;
        Mesh { cols, rows, nodes }
    }

    /// (columns, rows).
    pub fn dims(&self) -> (u16, u16) {
        (self.cols, self.rows)
    }

    /// Number of nodes.
    pub fn nodes(&self) -> u16 {
        self.nodes
    }

    /// (x, y) coordinates of a node.
    pub fn coords(&self, n: NodeId) -> (u16, u16) {
        (n.0 % self.cols, n.0 / self.cols)
    }

    /// Manhattan hop count between two nodes.
    pub fn hops(&self, a: NodeId, b: NodeId) -> u16 {
        let (ax, ay) = self.coords(a);
        let (bx, by) = self.coords(b);
        ax.abs_diff(bx) + ay.abs_diff(by)
    }

    /// Mean Manhattan distance over all ordered pairs of distinct nodes.
    ///
    /// Closed form: on one axis of length `c`, the ordered-pair distance
    /// sum is `Σ|i−j| = (c³−c)/3` (exactly divisible, since `c³−c` is a
    /// product of three consecutive integers); each axis sum is counted
    /// once per ordered pair of positions on the other axis. O(1) instead
    /// of the O(n²) pair walk — at 1024 nodes that walk was ~1M hop
    /// computations per call.
    pub fn average_hops(&self) -> f64 {
        if self.nodes <= 1 {
            return 0.0;
        }
        let (c, r) = (self.cols as u64, self.rows as u64);
        let total = r * r * (c * c * c - c) / 3 + c * c * (r * r * r - r) / 3;
        total as f64 / (self.nodes as f64 * (self.nodes as f64 - 1.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn square_meshes() {
        assert_eq!(Mesh::for_nodes(16).dims(), (4, 4));
        assert_eq!(Mesh::for_nodes(64).dims(), (8, 8));
        assert_eq!(Mesh::for_nodes(4).dims(), (2, 2));
        assert_eq!(Mesh::for_nodes(1).dims(), (1, 1));
    }

    #[test]
    fn rectangular_meshes() {
        let m = Mesh::for_nodes(8);
        let (c, r) = m.dims();
        assert_eq!(c as u32 * r as u32, 8);
    }

    #[test]
    fn hop_symmetry_and_identity() {
        let m = Mesh::for_nodes(16);
        for a in 0..16 {
            assert_eq!(m.hops(NodeId(a), NodeId(a)), 0);
            for b in 0..16 {
                assert_eq!(m.hops(NodeId(a), NodeId(b)), m.hops(NodeId(b), NodeId(a)));
            }
        }
    }

    /// The brute-force reference the closed form replaced.
    fn average_hops_brute(m: &Mesh) -> f64 {
        if m.nodes <= 1 {
            return 0.0;
        }
        let mut total = 0u64;
        for a in 0..m.nodes {
            for b in 0..m.nodes {
                if a != b {
                    total += m.hops(NodeId(a), NodeId(b)) as u64;
                }
            }
        }
        total as f64 / (m.nodes as f64 * (m.nodes as f64 - 1.0))
    }

    #[test]
    fn closed_form_matches_brute_force() {
        // Both compute an exact integer total before one division, so
        // the match is exact, not approximate. Includes a non-square
        // mesh (8 = 4x2) to exercise the asymmetric term.
        for nodes in [1u16, 2, 4, 8, 16, 64, 256] {
            let m = Mesh::for_nodes(nodes);
            assert_eq!(
                m.average_hops(),
                average_hops_brute(&m),
                "nodes = {nodes}, dims = {:?}",
                m.dims()
            );
        }
    }

    #[test]
    fn average_grows_with_size() {
        let a16 = Mesh::for_nodes(16).average_hops();
        let a64 = Mesh::for_nodes(64).average_hops();
        assert!(a64 > a16);
        // 8x8 mesh: ~5.3 average hops.
        assert!((a64 - 16.0 / 3.0).abs() < 0.3, "a64 = {a64}");
    }
}
