//! The FLASH interconnection network.
//!
//! "Any time a message enters the network, it is charged a fixed network
//! transit latency. This latency is based on the average transit time for
//! a two-dimensional mesh network having a per-hop fall-through time of
//! 40 ns. For our 16-processor simulations, the average message requires
//! latency equivalent to one hop to both enter and exit the network, 2.6
//! hops of network transit, and 3 cycles of network header information,
//! yielding an average transit time of 220 ns, or 22 cycles" (paper §3.2).
//!
//! [`Mesh`] computes topology-derived latencies for arbitrary node counts
//! (so the §4.5 64-processor runs scale correctly) and [`NetModel`]
//! charges them, optionally modelling per-hop distances instead of the
//! fixed average (an ablation the paper's fixed-latency model doesn't
//! attempt — useful for sensitivity studies).

pub mod mesh;
pub mod model;
pub mod ni;

pub use mesh::Mesh;
pub use model::{NetConfig, NetModel};
pub use ni::NiQueue;
