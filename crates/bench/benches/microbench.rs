//! Criterion microbenchmarks for the simulator's core data structures:
//! the event queue, caches, directory, PP toolchain, and handler
//! execution. These measure *simulator* performance (host time), not the
//! simulated machine.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use flash_engine::{Addr, Cycle, DetRng, EventQueue, NodeId};
use flash_mem::{CacheGeometry, MagicCache, MemController, MemTiming};
use flash_pp::{CodegenOptions, SchedOptions};
use flash_protocol::dir::{dir_addr, Directory, DEFAULT_PS_CAPACITY};
use flash_protocol::fields::aux;
use flash_protocol::handlers::{compile, fields_of, MemEnv};
use flash_protocol::msg::{InMsg, MsgType};
use flash_protocol::{CostTable, ProtoMem};

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("event_queue_push_pop_1k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..1000u64 {
                q.push(Cycle::new(i * 7 % 501), i);
            }
            let mut sum = 0u64;
            while let Some((_, e)) = q.pop() {
                sum += e;
            }
            black_box(sum)
        })
    });

    // A reference heap-only queue (what EventQueue was before the timing
    // wheel), so wheel-vs-heap cost is directly comparable under the same
    // arrival patterns.
    struct HeapQueue {
        heap: std::collections::BinaryHeap<std::cmp::Reverse<(u64, u64, u64)>>,
        seq: u64,
    }
    impl HeapQueue {
        fn new() -> Self {
            HeapQueue {
                heap: std::collections::BinaryHeap::new(),
                seq: 0,
            }
        }
        fn push(&mut self, t: u64, e: u64) {
            self.heap.push(std::cmp::Reverse((t, self.seq, e)));
            self.seq += 1;
        }
        fn pop(&mut self) -> Option<(u64, u64)> {
            self.heap.pop().map(|std::cmp::Reverse((t, _, e))| (t, e))
        }
    }

    // Near-future-heavy: the simulator's dominant pattern. A population
    // of in-flight events (one per modelled resource: processors, PPs,
    // memory banks, mesh hops of a 16..64-node machine) each schedules a
    // successor a handful of cycles ahead, staying inside the 128-cycle
    // wheel window.
    const POPULATION: u64 = 256;
    c.bench_function("event_queue_wheel_near_future_4k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for e in 0..POPULATION {
                q.push(Cycle::new(e % 24), e);
            }
            let mut now = 0u64;
            let mut sum = 0u64;
            for _ in 0..4096 {
                let (t, e) = q.pop().unwrap();
                now = t.raw();
                sum += e;
                q.push(Cycle::new(now + 1 + (e * 7) % 24), e + 1);
            }
            black_box((sum, now))
        })
    });
    c.bench_function("event_queue_heap_near_future_4k", |b| {
        b.iter(|| {
            let mut q = HeapQueue::new();
            for e in 0..POPULATION {
                q.push(e % 24, e);
            }
            let mut now = 0u64;
            let mut sum = 0u64;
            for _ in 0..4096 {
                let (t, e) = q.pop().unwrap();
                now = t;
                sum += e;
                q.push(now + 1 + (e * 7) % 24, e + 1);
            }
            black_box((sum, now))
        })
    });

    // Uniform horizon: pushes spread far beyond the wheel window, so most
    // traffic overflows to the heap (the wheel's worst case).
    c.bench_function("event_queue_wheel_uniform_4k", |b| {
        let mut rng = DetRng::for_stream(7, 7);
        let times: Vec<u64> = (0..4096).map(|_| rng.below(1 << 16)).collect();
        b.iter(|| {
            let mut q = EventQueue::new();
            for (i, &t) in times.iter().enumerate() {
                q.push(Cycle::new(t), i as u64);
            }
            let mut sum = 0u64;
            while let Some((_, e)) = q.pop() {
                sum += e;
            }
            black_box(sum)
        })
    });
    c.bench_function("event_queue_heap_uniform_4k", |b| {
        let mut rng = DetRng::for_stream(7, 7);
        let times: Vec<u64> = (0..4096).map(|_| rng.below(1 << 16)).collect();
        b.iter(|| {
            let mut q = HeapQueue::new();
            for (i, &t) in times.iter().enumerate() {
                q.push(t, i as u64);
            }
            let mut sum = 0u64;
            while let Some((_, e)) = q.pop() {
                sum += e;
            }
            black_box(sum)
        })
    });
}

fn bench_end_to_end(c: &mut Criterion) {
    // Whole-simulation throughput: one small FFT run per iteration,
    // uncached (this is the unit of work the run-matrix driver schedules).
    let mut g = c.benchmark_group("sims_per_second");
    g.sample_size(10);
    g.bench_function("fft_2p_scale64_flash", |b| {
        let w = flash_workloads::by_name("FFT", 2, 64);
        let cfg = flash::MachineConfig::flash(2);
        b.iter(|| black_box(flash_workloads::run_workload(&cfg, w.as_ref()).exec_cycles))
    });
    g.bench_function("fft_2p_scale64_ideal", |b| {
        let w = flash_workloads::by_name("FFT", 2, 64);
        let cfg = flash::MachineConfig::ideal(2);
        b.iter(|| black_box(flash_workloads::run_workload(&cfg, w.as_ref()).exec_cycles))
    });
    g.finish();
}

fn bench_caches(c: &mut Criterion) {
    c.bench_function("l2_probe_hit", |b| {
        let mut cache = flash_cpu::L2Cache::new(1 << 20);
        cache.install(Addr::new(0x1000), flash_cpu::LineState::Shared);
        b.iter(|| black_box(cache.probe(Addr::new(0x1000), false)))
    });
    c.bench_function("mdc_access_stream", |b| {
        let mut mdc = MagicCache::new(CacheGeometry::mdc());
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 8) % (1 << 20);
            black_box(mdc.access(i, false))
        })
    });
    c.bench_function("mem_controller_request", |b| {
        let mut mc = MemController::new(MemTiming::default(), Some(1));
        let mut t = 0u64;
        b.iter(|| {
            t += 40;
            black_box(mc.request(Cycle::new(t)))
        })
    });
}

fn bench_directory(c: &mut Criterion) {
    c.bench_function("directory_alloc_free", |b| {
        let mut mem = ProtoMem::new();
        Directory::init_free_list(&mut mem, DEFAULT_PS_CAPACITY);
        b.iter(|| {
            let mut d = Directory::new(&mut mem);
            let e = d.alloc_entry().unwrap();
            d.free_entry(e);
            black_box(e)
        })
    });
}

fn bench_pp_toolchain(c: &mut Criterion) {
    c.bench_function("assemble_and_schedule_protocol", |b| {
        b.iter(|| black_box(compile(CodegenOptions::magic()).unwrap()))
    });
    c.bench_function("schedule_only", |b| {
        let src = format!(
            "{}\n{}",
            flash_protocol::fields::asm_prologue(),
            flash_protocol::handlers::SOURCE
        );
        let module = flash_pp::asm::assemble(&src).unwrap();
        b.iter(|| black_box(flash_pp::sched::schedule(&module, SchedOptions::magic())))
    });
}

fn read_miss_msg() -> InMsg {
    // requester == home: the handler path is idempotent (sets the LOCAL
    // bit), so millions of bench iterations do not grow directory state.
    let a = Addr::new(0x2000);
    InMsg {
        mtype: MsgType::NGet,
        src: NodeId(0),
        addr: a,
        aux: aux::pack(NodeId(0), MsgType::NGet, NodeId(0)),
        spec: true,
        self_node: NodeId(0),
        home: NodeId(0),
        diraddr: dir_addr(a),
        with_data: false,
    }
}

fn bench_handlers(c: &mut Criterion) {
    let program = compile(CodegenOptions::magic()).unwrap();
    let entry = program.entry("ni_get").unwrap();
    c.bench_function("emulated_ni_get_handler", |b| {
        let mut mem = ProtoMem::new();
        Directory::init_free_list(&mut mem, DEFAULT_PS_CAPACITY);
        let msg = read_miss_msg();
        let fields = fields_of(&msg);
        b.iter(|| {
            let mut env = MemEnv {
                mem: &mut mem,
                fields,
            };
            black_box(flash_pp::emu::run(&program, entry, &mut env, 100_000).unwrap())
        })
    });
    c.bench_function("native_ni_get_handler", |b| {
        let mut mem = ProtoMem::new();
        Directory::init_free_list(&mut mem, DEFAULT_PS_CAPACITY);
        let msg = read_miss_msg();
        let costs = CostTable::paper();
        let mut out = Vec::new();
        b.iter(|| {
            out.clear();
            black_box(flash_protocol::native::handle(
                &msg, &mut mem, &costs, &mut out,
            ))
        })
    });
}

fn bench_rng(c: &mut Criterion) {
    c.bench_function("det_rng_below", |b| {
        let mut r = DetRng::for_stream(1, 2);
        b.iter(|| black_box(r.below(1000)))
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_event_queue,
    bench_end_to_end,
    bench_caches,
    bench_directory,
    bench_pp_toolchain,
    bench_handlers,
    bench_rng
);
criterion_main!(benches);
