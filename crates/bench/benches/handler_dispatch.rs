//! Handler-execution microbenchmarks: the reference per-pair emulator vs
//! the translated native fast path, per handler and on realistic state.
//!
//! Three groups:
//!
//! * `handler_dispatch/<handler>_{emu,translated}` — every protocol
//!   handler under a deterministic zero-memory environment (loads return
//!   0, stores are discarded), so each iteration executes the identical
//!   clean-directory path and nothing accumulates across the millions of
//!   calibration iterations. This isolates pure dispatch + step-execution
//!   cost, the quantity the translation exists to shrink.
//! * `ni_get_realistic/*` — the read-miss handler on a real directory
//!   (idempotent requester==home message, as `microbench.rs` uses), with
//!   the hand-written native handler as the floor.
//! * `alloc_reuse/*` — the allocating `run()` wrapper (the pre-translation
//!   hot-path shape: fresh `Regs` + effect vector per invocation) against
//!   `run_into` with persistent scratch state, on both backends. This is
//!   the before/after for the hot-path allocation elimination.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use flash_engine::{Addr, NodeId};
use flash_pp::emu::{self, EffectSink, Env, MdcMiss, Regs};
use flash_pp::isa::MemSize;
use flash_pp::translate::translate_shared;
use flash_pp::CodegenOptions;
use flash_protocol::dir::{dir_addr, Directory, DEFAULT_PS_CAPACITY};
use flash_protocol::fields::aux;
use flash_protocol::handlers::{compile_shared, fields_of, MemEnv, HANDLER_NAMES};
use flash_protocol::msg::{InMsg, MsgType};
use flash_protocol::ProtoMem;

const BUDGET: u64 = 100_000;

/// Loads return zero, stores vanish: every iteration runs the identical
/// clean-directory path with zero state growth.
struct ZeroEnv {
    fields: [u64; 16],
}

impl Env for ZeroEnv {
    #[inline]
    fn load(&mut self, _addr: u64, _size: MemSize) -> (u64, Option<MdcMiss>) {
        (0, None)
    }

    #[inline]
    fn store(&mut self, _addr: u64, _val: u64, _size: MemSize) -> Option<MdcMiss> {
        None
    }

    #[inline]
    fn msg_field(&mut self, field: u8) -> u64 {
        self.fields[field as usize]
    }
}

fn read_miss_msg() -> InMsg {
    // requester == home: the ni_get path is idempotent (sets the LOCAL
    // bit), so millions of bench iterations do not grow directory state.
    let a = Addr::new(0x2000);
    InMsg {
        mtype: MsgType::NGet,
        src: NodeId(0),
        addr: a,
        aux: aux::pack(NodeId(0), MsgType::NGet, NodeId(0)),
        spec: true,
        self_node: NodeId(0),
        home: NodeId(0),
        diraddr: dir_addr(a),
        with_data: false,
    }
}

fn bench_per_handler(c: &mut Criterion) {
    let program = compile_shared(CodegenOptions::magic());
    let translated = translate_shared(&program);
    assert!(translated.fully_translated());
    let fields = fields_of(&read_miss_msg());

    let mut g = c.benchmark_group("handler_dispatch");
    g.sample_size(10);
    for handler in HANDLER_NAMES {
        let entry = program.entry(handler).unwrap();
        g.bench_function(format!("{handler}_emu"), |b| {
            let mut env = ZeroEnv { fields };
            let mut regs = Regs::new();
            let mut sink = EffectSink::new();
            b.iter(|| {
                black_box(emu::run_into(
                    &program, entry, &mut env, BUDGET, &mut regs, &mut sink,
                ))
            })
        });
        g.bench_function(format!("{handler}_translated"), |b| {
            let mut env = ZeroEnv { fields };
            let mut regs = Regs::new();
            let mut sink = EffectSink::new();
            b.iter(|| black_box(translated.run_into(entry, &mut env, BUDGET, &mut regs, &mut sink)))
        });
    }
    g.finish();
}

fn bench_ni_get_realistic(c: &mut Criterion) {
    let program = compile_shared(CodegenOptions::magic());
    let translated = translate_shared(&program);
    let entry = program.entry("ni_get").unwrap();
    let msg = read_miss_msg();
    let fields = fields_of(&msg);

    let mut g = c.benchmark_group("ni_get_realistic");
    g.bench_function("emu", |b| {
        let mut mem = ProtoMem::new();
        Directory::init_free_list(&mut mem, DEFAULT_PS_CAPACITY);
        let mut regs = Regs::new();
        let mut sink = EffectSink::new();
        b.iter(|| {
            let mut env = MemEnv {
                mem: &mut mem,
                fields,
            };
            black_box(
                emu::run_into(&program, entry, &mut env, BUDGET, &mut regs, &mut sink).unwrap(),
            )
        })
    });
    g.bench_function("translated", |b| {
        let mut mem = ProtoMem::new();
        Directory::init_free_list(&mut mem, DEFAULT_PS_CAPACITY);
        let mut regs = Regs::new();
        let mut sink = EffectSink::new();
        b.iter(|| {
            let mut env = MemEnv {
                mem: &mut mem,
                fields,
            };
            black_box(
                translated
                    .run_into(entry, &mut env, BUDGET, &mut regs, &mut sink)
                    .unwrap(),
            )
        })
    });
    g.bench_function("native_floor", |b| {
        let mut mem = ProtoMem::new();
        Directory::init_free_list(&mut mem, DEFAULT_PS_CAPACITY);
        let costs = flash_protocol::CostTable::paper();
        let mut out = Vec::new();
        b.iter(|| {
            out.clear();
            black_box(flash_protocol::native::handle(
                &msg, &mut mem, &costs, &mut out,
            ))
        })
    });
    g.finish();
}

fn bench_alloc_reuse(c: &mut Criterion) {
    let program = compile_shared(CodegenOptions::magic());
    let translated = translate_shared(&program);
    let entry = program.entry("ni_get").unwrap();
    let fields = fields_of(&read_miss_msg());

    let mut g = c.benchmark_group("alloc_reuse");
    g.bench_function("emu_alloc_per_call", |b| {
        let mut env = ZeroEnv { fields };
        b.iter(|| black_box(emu::run(&program, entry, &mut env, BUDGET)))
    });
    g.bench_function("emu_scratch_reuse", |b| {
        let mut env = ZeroEnv { fields };
        let mut regs = Regs::new();
        let mut sink = EffectSink::new();
        b.iter(|| {
            black_box(emu::run_into(
                &program, entry, &mut env, BUDGET, &mut regs, &mut sink,
            ))
        })
    });
    g.bench_function("translated_alloc_per_call", |b| {
        let mut env = ZeroEnv { fields };
        b.iter(|| black_box(translated.run(entry, &mut env, BUDGET)))
    });
    g.bench_function("translated_scratch_reuse", |b| {
        let mut env = ZeroEnv { fields };
        let mut regs = Regs::new();
        let mut sink = EffectSink::new();
        b.iter(|| black_box(translated.run_into(entry, &mut env, BUDGET, &mut regs, &mut sink)))
    });
    g.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_per_handler,
    bench_ni_get_realistic,
    bench_alloc_reuse
);
criterion_main!(benches);
