//! End-to-end table-regeneration benchmarks: each benchmark runs the
//! simulation behind one of the paper's tables/figures at reduced scale,
//! so `cargo bench` both regenerates the result shapes and tracks the
//! simulator's own performance on them. Full-size reproductions come from
//! the `src/bin/` binaries (`FLASH_FULL=1 cargo run --bin repro_all`).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use flash::{ControllerKind, MachineConfig};
use flash_bench::{measure_latency_table, MissClass};
use flash_workloads::{by_name, run_workload};

const PROCS: u16 = 4;
const SCALE: u32 = 32;

fn bench_table_3_3(c: &mut Criterion) {
    // The no-contention latency measurement behind Table 3.3.
    c.bench_function("table_3_3_latency_measurement", |b| {
        b.iter(|| {
            black_box(flash_bench::measure_class(
                ControllerKind::FlashEmulated,
                MissClass::RemoteClean,
            ))
        })
    });
    // Verify the full table once per bench run.
    let t = measure_latency_table(ControllerKind::FlashEmulated);
    assert!(t.remote_clean > t.local_clean);
}

fn bench_fig_4_1(c: &mut Criterion) {
    // One FLASH-vs-ideal pair per representative app (the figure's bars).
    let mut g = c.benchmark_group("fig_4_1");
    g.sample_size(10);
    for app in ["FFT", "Radix"] {
        g.bench_function(format!("{app}_flash"), |b| {
            b.iter(|| {
                let w = by_name(app, PROCS, SCALE);
                black_box(run_workload(&MachineConfig::flash(PROCS), w.as_ref()).exec_cycles)
            })
        });
        g.bench_function(format!("{app}_ideal"), |b| {
            b.iter(|| {
                let w = by_name(app, PROCS, SCALE);
                black_box(run_workload(&MachineConfig::ideal(PROCS), w.as_ref()).exec_cycles)
            })
        });
    }
    g.finish();
}

fn bench_table_4_2(c: &mut Criterion) {
    let mut g = c.benchmark_group("table_4_2_small_caches");
    g.sample_size(10);
    for cache in [64u64 << 10, 4 << 10] {
        g.bench_function(format!("fft_{}k", cache >> 10), |b| {
            b.iter(|| {
                let w = by_name("FFT", PROCS, SCALE);
                black_box(
                    run_workload(
                        &MachineConfig::flash(PROCS).with_cache_bytes(cache),
                        w.as_ref(),
                    )
                    .miss_rate,
                )
            })
        });
    }
    g.finish();
}

fn bench_table_5_1(c: &mut Criterion) {
    let mut g = c.benchmark_group("table_5_1_speculation");
    g.sample_size(10);
    for (name, spec) in [("spec_on", true), ("spec_off", false)] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let w = by_name("FFT", PROCS, SCALE);
                black_box(
                    run_workload(
                        &MachineConfig::flash(PROCS).with_speculation(spec),
                        w.as_ref(),
                    )
                    .exec_cycles,
                )
            })
        });
    }
    g.finish();
}

fn bench_sec_5_3(c: &mut Criterion) {
    let mut g = c.benchmark_group("sec_5_3_pp_extensions");
    g.sample_size(10);
    g.bench_function("deoptimized_pp", |b| {
        b.iter(|| {
            let w = by_name("FFT", PROCS, SCALE);
            let cfg =
                MachineConfig::flash(PROCS).with_codegen(flash_pp::CodegenOptions::deoptimized());
            black_box(run_workload(&cfg, w.as_ref()).exec_cycles)
        })
    });
    g.finish();
}

criterion_group!(
    name = tables;
    config = Criterion::default().sample_size(10);
    targets = bench_table_3_3, bench_fig_4_1, bench_table_4_2, bench_table_5_1, bench_sec_5_3
);
criterion_main!(tables);
