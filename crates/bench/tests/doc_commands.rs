//! Smoke tests for the commands the documentation tells users to run.
//!
//! README.md and METRICS.md promise specific invocations
//! (`observe_breakdown`, `FLASH_OBSERVE_OUT=... table_3_3`,
//! `FLASH_TRACE_OUT=...`); this suite runs each as a real subprocess so
//! a doc command can never rot into a silent lie. Environment variables
//! are per-subprocess, so the suite is safe under parallel test
//! execution.

use std::process::Command;

fn temp_dir(name: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("flash-doc-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

/// `cargo run --release -p flash-bench --bin observe_breakdown`
/// (README "Observability", METRICS.md "Exports").
#[test]
fn observe_breakdown_renders_all_classes_and_segments() {
    let out = Command::new(env!("CARGO_BIN_EXE_observe_breakdown"))
        .output()
        .expect("spawn observe_breakdown");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "{stdout}");
    for title in ["FLASH:", "Ideal:"] {
        assert!(stdout.contains(title), "missing column {title}\n{stdout}");
    }
    for seg in ["pi", "inbox_wait", "handler", "mem", "ni_wait", "mesh"] {
        assert!(stdout.contains(seg), "missing segment {seg}\n{stdout}");
    }
    assert!(
        stdout.contains("Local read miss, clean in local memory")
            && stdout.contains("Remote read miss, dirty in 3rd node"),
        "all five Table 3.3 rows expected\n{stdout}"
    );
}

/// `FLASH_OBSERVE_OUT=<dir> cargo run ... --bin table_3_3`
/// (METRICS.md "Exports"): table output unchanged, one schema-tagged
/// JSON per job.
#[test]
fn observe_out_exports_schema_tagged_json_per_job() {
    let dir = temp_dir("observe-out");
    let base = Command::new(env!("CARGO_BIN_EXE_table_3_3"))
        .env_remove("FLASH_OBSERVE_OUT")
        .output()
        .expect("spawn table_3_3");
    let observed = Command::new(env!("CARGO_BIN_EXE_table_3_3"))
        .env("FLASH_OBSERVE_OUT", &dir)
        .output()
        .expect("spawn table_3_3 observed");
    assert!(observed.status.success());
    assert_eq!(
        base.stdout, observed.stdout,
        "FLASH_OBSERVE_OUT must not change table output"
    );
    let files: Vec<_> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .collect();
    assert_eq!(
        files.len(),
        10,
        "table_3_3 has 10 latency jobs (2 kinds x 5 classes): {files:?}"
    );
    for f in &files {
        let name = f.file_name().unwrap().to_string_lossy().into_owned();
        assert!(
            name.starts_with("observe_") && name.ends_with(".json"),
            "{name}"
        );
        let body = std::fs::read_to_string(f).unwrap();
        assert!(body.contains("\"schema\": \"flash-observe-v1\""), "{name}");
        assert!(body.contains("\"sum_mismatches\": 0"), "{name}: {body}");
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// `FLASH_TRACE_OUT=<file>.json` (README "Observability", METRICS.md
/// "Exports"): an observed run writes a Chrome trace_event file.
#[test]
fn trace_out_writes_chrome_trace_json() {
    let dir = temp_dir("trace-out");
    let path = dir.join("trace.json");
    let out = Command::new(env!("CARGO_BIN_EXE_observe_breakdown"))
        .env("FLASH_TRACE_OUT", &path)
        .output()
        .expect("spawn observe_breakdown with FLASH_TRACE_OUT");
    assert!(out.status.success());
    let body = std::fs::read_to_string(&path).expect("trace file written");
    assert!(body.starts_with("{\"displayTimeUnit\""), "{body}");
    assert!(body.contains("\"traceEvents\""));
    assert!(body.contains("\"ph\":\"X\""));
    std::fs::remove_dir_all(&dir).ok();
}

/// `FLASH_PP_BACKEND=emu|translated` (README "PP execution backend"):
/// the backend is a host-performance knob, never a model knob, so the
/// observability artifact must produce byte-identical stdout under both.
#[test]
fn observe_breakdown_stdout_identical_across_backends() {
    let emu = Command::new(env!("CARGO_BIN_EXE_observe_breakdown"))
        .env("FLASH_PP_BACKEND", "emu")
        .output()
        .expect("spawn observe_breakdown emu");
    let translated = Command::new(env!("CARGO_BIN_EXE_observe_breakdown"))
        .env("FLASH_PP_BACKEND", "translated")
        .output()
        .expect("spawn observe_breakdown translated");
    assert!(emu.status.success() && translated.status.success());
    assert_eq!(
        emu.stdout, translated.stdout,
        "observe_breakdown stdout must be byte-identical across PP backends"
    );
}

/// Same contract for a repro binary: Table 3.3 regenerates byte-identical
/// latency tables under both PP backends (the emulated-FLASH column runs
/// every handler through the selected backend).
#[test]
fn repro_stdout_identical_across_backends() {
    let emu = Command::new(env!("CARGO_BIN_EXE_table_3_3"))
        .env("FLASH_PP_BACKEND", "emu")
        .output()
        .expect("spawn table_3_3 emu");
    let translated = Command::new(env!("CARGO_BIN_EXE_table_3_3"))
        .env("FLASH_PP_BACKEND", "translated")
        .output()
        .expect("spawn table_3_3 translated");
    assert!(emu.status.success() && translated.status.success());
    assert_eq!(
        emu.stdout, translated.stdout,
        "table_3_3 stdout must be byte-identical across PP backends"
    );
}

/// The pinned golden transcript for a bin, from `tests/golden/` at the
/// workspace root.
fn golden(name: &str) -> Vec<u8> {
    let p = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../tests/golden")
        .join(name);
    std::fs::read(&p).unwrap_or_else(|e| panic!("golden transcript {p:?}: {e}"))
}

/// `observe_breakdown` stdout is pinned byte-for-byte against the golden
/// transcript across the shard-count x PP-backend matrix: the sharded
/// engine, the inline run fast path, and the backend choice are host
/// implementation details that must never reach an observable.
#[test]
fn observe_breakdown_stdout_matches_golden_across_shards_and_backends() {
    let want = golden("observe_breakdown.txt");
    for shards in ["1", "4"] {
        for backend in ["emu", "translated"] {
            let out = Command::new(env!("CARGO_BIN_EXE_observe_breakdown"))
                .env("FLASH_SHARDS", shards)
                .env("FLASH_PP_BACKEND", backend)
                .output()
                .expect("spawn observe_breakdown");
            assert!(out.status.success(), "{shards} shards / {backend}");
            assert_eq!(
                out.stdout, want,
                "observe_breakdown stdout drifted from tests/golden/observe_breakdown.txt \
                 ({shards} shards, {backend} backend)"
            );
        }
    }
}

/// `repro_all` — the full paper-reproduction sweep — is pinned against
/// its golden transcript under the sharded engine. (The release-mode
/// `bench_pr8` bin re-checks this under the default serial config on
/// every CI perf-smoke run; here the 4-shard config exercises the
/// boundary machinery end to end.)
#[test]
fn repro_all_stdout_matches_golden_sharded() {
    let out = Command::new(env!("CARGO_BIN_EXE_repro_all"))
        .env("FLASH_SHARDS", "4")
        .output()
        .expect("spawn repro_all");
    assert!(out.status.success());
    assert_eq!(
        out.stdout,
        golden("repro_all.txt"),
        "repro_all stdout drifted from tests/golden/repro_all.txt (4 shards)"
    );
}

/// `FLASH_HOSTPROF_OUT=<file>.json` (README "Observability", METRICS.md
/// "Exports"): arming the host-time profiler writes the
/// `flash-hostprof-v1` JSON *and* leaves stdout byte-identical — the
/// profiler is timing-invisible.
#[test]
fn hostprof_out_writes_schema_tagged_json_and_stdout_is_unchanged() {
    let dir = temp_dir("hostprof-out");
    let path = dir.join("hostprof.json");
    let out = Command::new(env!("CARGO_BIN_EXE_observe_breakdown"))
        .env("FLASH_HOSTPROF_OUT", &path)
        .output()
        .expect("spawn observe_breakdown with FLASH_HOSTPROF_OUT");
    assert!(out.status.success());
    assert_eq!(
        out.stdout,
        golden("observe_breakdown.txt"),
        "FLASH_HOSTPROF_OUT must not change stdout"
    );
    let body = std::fs::read_to_string(&path).expect("hostprof file written");
    assert!(body.contains("\"schema\": \"flash-hostprof-v1\""), "{body}");
    for seg in [
        "proc_cache",
        "magic_dispatch",
        "protocol",
        "net_mesh",
        "event_queue",
        "observe_check",
        "boundary",
    ] {
        assert!(
            body.contains(&format!("\"{seg}\"")),
            "missing {seg}\n{body}"
        );
    }
    assert!(body.contains("\"wall_ns\""), "{body}");
    std::fs::remove_dir_all(&dir).ok();
}

/// The README quick-start commands build: every documented example and
/// repro binary name resolves to a real target (compile-time check via
/// `CARGO_BIN_EXE_*` for the bins this crate owns, plus a live run of
/// the suite driver's `--help`-free happy path on the cheapest bin).
#[test]
fn documented_binaries_exist() {
    // Compile-time: env!() fails the build if a documented binary is
    // renamed or dropped.
    for bin in [
        env!("CARGO_BIN_EXE_repro_all"),
        env!("CARGO_BIN_EXE_table_3_2"),
        env!("CARGO_BIN_EXE_table_3_3"),
        env!("CARGO_BIN_EXE_table_3_4"),
        env!("CARGO_BIN_EXE_fig_4_1"),
        env!("CARGO_BIN_EXE_table_4_1"),
        env!("CARGO_BIN_EXE_fig_4_2"),
        env!("CARGO_BIN_EXE_fig_4_3"),
        env!("CARGO_BIN_EXE_table_4_2"),
        env!("CARGO_BIN_EXE_sec_4_3_hotspot"),
        env!("CARGO_BIN_EXE_sec_4_5_scale64"),
        env!("CARGO_BIN_EXE_table_5_1"),
        env!("CARGO_BIN_EXE_sec_5_2_mdc"),
        env!("CARGO_BIN_EXE_table_5_2"),
        env!("CARGO_BIN_EXE_table_5_3"),
        env!("CARGO_BIN_EXE_sec_5_3_ppext"),
        env!("CARGO_BIN_EXE_ablations"),
        env!("CARGO_BIN_EXE_observe_breakdown"),
    ] {
        assert!(
            std::path::Path::new(bin).exists(),
            "documented binary missing: {bin}"
        );
    }
    // Runtime: the cheapest artifact renders headers on a real run.
    let out = Command::new(env!("CARGO_BIN_EXE_table_3_2"))
        .output()
        .expect("spawn table_3_2");
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("Table 3.2"));
}
