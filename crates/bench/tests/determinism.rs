//! Determinism under parallelism: a simulation point must produce a
//! field-for-field identical [`MachineReport`] whether it is run directly
//! on the caller's thread, prefetched by a single runner worker, or
//! prefetched by a pool of four workers. This is the property that makes
//! the parallel run-matrix driver safe: table output is byte-identical
//! for any `FLASH_JOBS`.

use flash::MachineConfig;
use flash_bench::{cached_run, clear_caches, prefetch_with_jobs, Job, RunSpec, WorkSpec};
use flash_workloads::{by_name, run_workload};

#[test]
fn reports_identical_serial_one_worker_four_workers() {
    let specs: Vec<RunSpec> = [
        (
            WorkSpec::Named {
                app: "FFT",
                procs: 2,
                scale: 64,
            },
            MachineConfig::flash(2),
        ),
        (
            WorkSpec::Named {
                app: "FFT",
                procs: 2,
                scale: 64,
            },
            MachineConfig::ideal(2),
        ),
        (
            WorkSpec::Named {
                app: "Radix",
                procs: 2,
                scale: 64,
            },
            MachineConfig::flash(2).with_cache_bytes(4 << 10),
        ),
    ]
    .into_iter()
    .map(|(work, cfg)| RunSpec { work, cfg })
    .collect();

    // Serial reference: exactly what the pre-runner code path did.
    let serial: Vec<_> = specs
        .iter()
        .map(|s| {
            let WorkSpec::Named { app, procs, scale } = s.work else {
                unreachable!()
            };
            let w = by_name(app, procs, scale);
            run_workload(&s.cfg, w.as_ref())
        })
        .collect();

    let jobs: Vec<Job> = specs.iter().cloned().map(Job::Run).collect();

    // One worker: jobs run inline on this thread through the memo cache.
    clear_caches();
    let ran = prefetch_with_jobs(&jobs, 1);
    assert_eq!(ran, specs.len(), "every unique point should simulate once");
    let one_worker: Vec<_> = specs.iter().map(cached_run).collect();

    // Four workers: jobs run on scoped worker threads.
    clear_caches();
    let ran = prefetch_with_jobs(&jobs, 4);
    assert_eq!(ran, specs.len());
    let four_workers: Vec<_> = specs.iter().map(cached_run).collect();

    for ((s, w1), w4) in serial.iter().zip(&one_worker).zip(&four_workers) {
        assert_eq!(s, w1, "serial vs 1-worker report mismatch");
        assert_eq!(w1, w4, "1-worker vs 4-worker report mismatch");
    }

    // And the memo cache really memoizes: a second prefetch is a no-op.
    assert_eq!(prefetch_with_jobs(&jobs, 4), 0);
}
