//! The documentation CI: every relative markdown link resolves, every
//! anchor points at a real heading, and the README's `FLASH_*` table and
//! the source tree agree on the set of environment variables.
//!
//! Hand-rolled scanners (no regex/markdown deps, per the frozen-deps
//! rule): fenced code blocks are stripped before link extraction, and
//! anchors are slugified the way GitHub renders heading ids.

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

/// The documentation set under link checking: every tracked markdown
/// file at the workspace root.
const DOCS: &[&str] = &[
    "README.md",
    "ARCHITECTURE.md",
    "DESIGN.md",
    "METRICS.md",
    "EXPERIMENTS.md",
    "ROADMAP.md",
    "CHANGES.md",
];

/// Drops fenced code blocks (``` ... ```) so shell snippets and JSON
/// examples can't fake or hide a markdown link.
fn strip_fences(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    let mut in_fence = false;
    for line in text.lines() {
        if line.trim_start().starts_with("```") {
            in_fence = !in_fence;
            continue;
        }
        if !in_fence {
            out.push_str(line);
            out.push('\n');
        }
    }
    out
}

/// Extracts the `(target)` of every markdown `[text](target)` link.
fn links(text: &str) -> Vec<String> {
    let bytes = text.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i + 1 < bytes.len() {
        if bytes[i] == b']' && bytes[i + 1] == b'(' {
            let start = i + 2;
            if let Some(rel_end) = text[start..].find(')') {
                out.push(text[start..start + rel_end].to_string());
                i = start + rel_end;
            }
        }
        i += 1;
    }
    out
}

/// GitHub's heading-id slug: lowercase, punctuation removed, spaces to
/// hyphens (so `## JSON schema: \`flash-latency-v1\`` gets the id
/// `json-schema-flash-latency-v1`).
fn slugify(heading: &str) -> String {
    heading
        .to_lowercase()
        .chars()
        .filter(|c| c.is_alphanumeric() || *c == ' ' || *c == '-' || *c == '_')
        .map(|c| if c == ' ' { '-' } else { c })
        .collect()
}

/// All heading anchors a markdown file exports.
fn anchors(text: &str) -> BTreeSet<String> {
    let mut in_fence = false;
    let mut out = BTreeSet::new();
    for line in text.lines() {
        if line.trim_start().starts_with("```") {
            in_fence = !in_fence;
            continue;
        }
        if !in_fence && line.starts_with('#') {
            let title = line.trim_start_matches('#').trim();
            out.insert(slugify(title));
        }
    }
    out
}

/// Every relative link in the documentation set resolves to an existing
/// file, and every `file#anchor` (or same-file `#anchor`) names a real
/// heading in its target. External (`http`/`https`/`mailto`) links are
/// out of scope.
#[test]
fn relative_links_and_anchors_resolve() {
    let root = workspace_root();
    let mut failures = Vec::new();
    for doc in DOCS {
        let path = root.join(doc);
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("documentation file {doc} unreadable: {e}"));
        for link in links(&strip_fences(&text)) {
            if link.starts_with("http://")
                || link.starts_with("https://")
                || link.starts_with("mailto:")
            {
                continue;
            }
            let (file_part, anchor) = match link.split_once('#') {
                Some((f, a)) => (f, Some(a)),
                None => (link.as_str(), None),
            };
            let target = if file_part.is_empty() {
                path.clone()
            } else {
                root.join(doc).parent().unwrap().join(file_part)
            };
            if !target.exists() {
                failures.push(format!("{doc}: dangling link ({link}) -> {target:?}"));
                continue;
            }
            if let Some(anchor) = anchor {
                let target_text = std::fs::read_to_string(&target).unwrap();
                if !anchors(&target_text).contains(anchor) {
                    failures.push(format!("{doc}: dangling anchor ({link})"));
                }
            }
        }
    }
    assert!(
        failures.is_empty(),
        "dangling links:\n{}",
        failures.join("\n")
    );
}

/// Every document in the checked set is reachable by following relative
/// links from README.md — no orphaned documentation. (ARCHITECTURE.md in
/// particular must stay linked from the README.)
#[test]
fn every_doc_is_reachable_from_the_readme() {
    let root = workspace_root();
    let mut reachable: BTreeSet<&str> = BTreeSet::new();
    let mut frontier = vec!["README.md"];
    while let Some(doc) = frontier.pop() {
        if !reachable.insert(doc) {
            continue;
        }
        let text = std::fs::read_to_string(root.join(doc)).unwrap();
        for link in links(&strip_fences(&text)) {
            let file = link.split('#').next().unwrap();
            if let Some(&known) = DOCS.iter().find(|d| **d == file) {
                frontier.push(known);
            }
        }
    }
    for doc in DOCS {
        assert!(
            reachable.contains(doc),
            "{doc} is not linked (directly or transitively) from README.md"
        );
    }
}

/// All `FLASH_[A-Z_0-9]*` tokens occurring in a text.
fn flash_tokens(text: &str) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    let bytes = text.as_bytes();
    let mut i = 0;
    while let Some(rel) = text[i..].find("FLASH_") {
        let start = i + rel;
        let mut end = start + "FLASH_".len();
        while end < bytes.len()
            && (bytes[end].is_ascii_uppercase()
                || bytes[end] == b'_'
                || bytes[end].is_ascii_digit())
        {
            end += 1;
        }
        let tok = text[start..end].trim_end_matches('_');
        if tok.len() > "FLASH_".len() {
            out.insert(tok.to_string());
        }
        i = end;
    }
    out
}

/// Env-var tokens actually present in the Rust source tree.
fn source_tokens(root: &Path) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    let mut dirs = vec![root.join("crates"), root.join("tests")];
    while let Some(dir) = dirs.pop() {
        for entry in std::fs::read_dir(&dir).unwrap() {
            let path = entry.unwrap().path();
            if path.is_dir() {
                if !path.ends_with("target") {
                    dirs.push(path);
                }
            } else if path.extension().is_some_and(|e| e == "rs") {
                out.extend(flash_tokens(&std::fs::read_to_string(&path).unwrap()));
            }
        }
    }
    out
}

/// Rows of the README's operator table (lines opening with a
/// backtick-quoted variable cell).
fn readme_table_vars(readme: &str) -> BTreeSet<String> {
    readme
        .lines()
        .filter(|l| l.starts_with("| `FLASH_"))
        .flat_map(|l| {
            let name = l.trim_start_matches("| `");
            name.split('`').next().map(str::to_string)
        })
        .collect()
}

/// The README's `FLASH_*` operator table and the source tree agree both
/// ways: every documented variable is grep-able in the code (no rot),
/// and every variable the code reads appears in the table (no
/// undocumented knobs).
#[test]
fn readme_env_table_matches_the_source_tree() {
    let root = workspace_root();
    let readme = std::fs::read_to_string(root.join("README.md")).unwrap();
    let documented = readme_table_vars(&readme);
    let in_source = source_tokens(&root);
    assert!(
        documented.len() >= 20,
        "README operator table looks truncated: {documented:?}"
    );
    let undocumented: Vec<_> = in_source.difference(&documented).collect();
    assert!(
        undocumented.is_empty(),
        "env vars in source but missing from the README operator table: {undocumented:?}"
    );
    let rotten: Vec<_> = documented.difference(&in_source).collect();
    assert!(
        rotten.is_empty(),
        "README operator table documents vars no source file mentions: {rotten:?}"
    );
}
