//! End-to-end tests of the hardened run-matrix supervisor and the repro
//! process boundary.
//!
//! The library-level tests drive [`flash_bench::prefetch_supervised`]
//! directly with the self-test hooks (`FLASH_INJECT_PANIC`,
//! `FLASH_INJECT_HANG`) and assert that a poisoned job is isolated,
//! retried, recorded, and never takes the rest of the matrix down. The
//! subprocess tests run a real repro binary and pin the process contract:
//! healthy runs exit zero with no failure tail; poisoned runs exit
//! nonzero with the per-job failure table on stdout.

use flash::MachineConfig;
use flash_bench::runner::{
    clear_caches, drain_failures, prefetch_supervised, Job, RunSpec, SuperviseOptions, WorkSpec,
};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Serializes the env-mutating tests: the hooks are process-global.
fn env_lock() -> &'static Mutex<()> {
    static LOCK: Mutex<()> = Mutex::new(());
    &LOCK
}

fn run_job(app: &'static str, scale: u32) -> Job {
    Job::Run(RunSpec {
        work: WorkSpec::Named {
            app,
            procs: 2,
            scale,
        },
        cfg: MachineConfig::flash(2),
    })
}

#[test]
fn injected_panic_is_isolated_retried_and_recorded() {
    let _g = env_lock().lock().unwrap_or_else(|e| e.into_inner());
    clear_caches();
    drain_failures();
    // Poison exactly the FFT point; the LU point must be unaffected.
    std::env::set_var("FLASH_INJECT_PANIC", "app: \"FFT\", procs: 2, scale: 63");
    let jobs = vec![run_job("FFT", 63), run_job("LU", 63)];
    let ran = prefetch_supervised(
        &jobs,
        2,
        &SuperviseOptions {
            timeout: None,
            retries: 1,
        },
    );
    std::env::remove_var("FLASH_INJECT_PANIC");
    assert_eq!(ran, 2, "both points must be attempted");
    let failures = drain_failures();
    assert_eq!(
        failures.len(),
        1,
        "only the poisoned job fails: {failures:?}"
    );
    assert!(failures[0].key.contains("FFT"));
    assert_eq!(failures[0].attempts, 2, "one retry after the first panic");
    assert!(failures[0].error.contains("FLASH_INJECT_PANIC"));
    // The healthy point is cached; re-prefetching it is a no-op.
    assert_eq!(
        prefetch_supervised(&[run_job("LU", 63)], 2, &SuperviseOptions::from_env()),
        0,
        "healthy job must have been cached despite its neighbour panicking"
    );
    // The poisoned point was never cached — with the hook gone it runs
    // cleanly, proving a failure does not poison the memo cache.
    assert_eq!(
        prefetch_supervised(&[run_job("FFT", 63)], 2, &SuperviseOptions::from_env()),
        1
    );
    assert!(drain_failures().is_empty());
}

#[test]
fn hung_job_times_out_and_the_matrix_completes() {
    let _g = env_lock().lock().unwrap_or_else(|e| e.into_inner());
    clear_caches();
    drain_failures();
    // Hang exactly the LU point (a runaway simulation that ignores its
    // cycle budget); the supervisor must abandon it on wall clock and
    // still finish the FFT point.
    std::env::set_var("FLASH_INJECT_HANG", "app: \"LU\", procs: 2, scale: 62");
    let t0 = Instant::now();
    let ran = prefetch_supervised(
        &[run_job("LU", 62), run_job("FFT", 62)],
        2,
        &SuperviseOptions {
            timeout: Some(Duration::from_millis(300)),
            retries: 1,
        },
    );
    std::env::remove_var("FLASH_INJECT_HANG");
    assert_eq!(ran, 2);
    assert!(
        t0.elapsed() < Duration::from_secs(60),
        "supervisor must not wait out the hour-long hang"
    );
    let failures = drain_failures();
    assert_eq!(failures.len(), 1, "{failures:?}");
    assert!(failures[0].key.contains("LU"));
    assert!(failures[0].error.contains("timed out"));
    assert_eq!(failures[0].attempts, 2, "the overdue attempt was retried");
    // The healthy point completed and is cached.
    assert_eq!(
        prefetch_supervised(&[run_job("FFT", 62)], 2, &SuperviseOptions::from_env()),
        0
    );
}

#[test]
fn repro_binary_healthy_run_exits_zero_without_failure_tail() {
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_table_3_3"))
        .env_remove("FLASH_INJECT_PANIC")
        .env_remove("FLASH_INJECT_HANG")
        .output()
        .expect("spawn table_3_3");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "healthy repro must exit zero\n{stdout}"
    );
    assert!(
        !stdout.contains("== FAILURES =="),
        "healthy repro output must carry no failure tail\n{stdout}"
    );
    assert!(stdout.contains("Table 3.3"), "{stdout}");
}

#[test]
fn repro_binary_poisoned_run_exits_nonzero_with_failure_table() {
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_table_3_3"))
        .env("FLASH_INJECT_PANIC", "lat|")
        .env("FLASH_JOB_RETRIES", "0")
        .output()
        .expect("spawn table_3_3");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        !out.status.success(),
        "poisoned repro must exit nonzero\n{stdout}"
    );
    assert!(stdout.contains("== FAILURES =="), "{stdout}");
    assert!(
        stdout.contains("simulation job(s) failed"),
        "per-job failure table expected\n{stdout}"
    );
    assert!(stdout.contains("lat|"), "failed job keys listed\n{stdout}");
    assert!(
        stdout.contains("table_3_3"),
        "the artifact itself is reported incomplete\n{stdout}"
    );
}
