//! One regeneration function per table/figure in the paper's evaluation.
//!
//! Each function prints its artifact to stdout in plain text, with the
//! paper's published value alongside the measured value wherever the paper
//! reports one. The `src/bin/` wrappers call exactly one function each;
//! `repro_all` calls all of them.

use crate::{
    apps_at, base_cfg, cached_run, latency_jobs, measure_latency_table, os_procs, parallel_procs,
    pct, prefetch, run_app, run_spec, scale, Job, MissClass, RunSpec, WorkSpec,
};
use flash::config::node_addr;
use flash::{
    compare, format_table, ControllerKind, LatencyTable, MachineConfig, MachineReport, RunResult,
};
use flash_engine::NodeId;
use flash_pp::{CodegenOptions, Instr, Reg};
use flash_protocol::dir::{dir_addr, DirHeader, Directory, PtrEntry, DEFAULT_PS_CAPACITY};
use flash_protocol::fields::aux;
use flash_protocol::handlers::{compile_shared, MemEnv};
use flash_protocol::msg::{InMsg, MsgType};
use flash_protocol::ProtoMem;
use flash_workloads::Fft;

fn banner(title: &str) {
    println!("\n================================================================");
    println!("{title}");
    println!(
        "  (scale divisor {}, {} processors)",
        scale(),
        parallel_procs()
    );
    println!("================================================================");
}

/// Table 3.2: sub-operation latencies (the machine configuration).
pub fn table_3_2() {
    banner("Table 3.2: Suboperation Latencies in 10 ns Cycles");
    let rows = vec![
        ("Miss detect to request on bus", 5, 5),
        ("Bus transit", 1, 1),
        ("PI inbound processing", 1, 1),
        ("PI outbound processing", 4, 2),
        ("Outbound bus arbitration", 1, 1),
        ("Outbound bus transit for 1st word", 1, 1),
        ("Retrieve state from processor cache", 15, 15),
        ("Retrieve first double word from cache", 20, 20),
        ("NI inbound processing", 8, 8),
        ("NI outbound processing", 4, 4),
        ("Inbox queue selection and arbitration", 1, 1),
        ("Jump table lookup", 2, 0),
        ("MDC miss penalty", 29, 0),
        ("Outbox outbound processing", 1, 0),
        ("Network transit, average (16 nodes)", 22, 22),
        ("Memory access, time to first 8 bytes", 14, 14),
    ];
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|(n, f, i)| {
            vec![
                n.to_string(),
                f.to_string(),
                if *i == 0 { "N/A".into() } else { i.to_string() },
            ]
        })
        .collect();
    println!(
        "{}",
        format_table(&["Suboperation", "MAGIC", "Ideal"], &table)
    );
}

/// Table 3.3: no-contention read-miss latencies, measured on this
/// simulator vs the paper's published values.
pub fn table_3_3() {
    banner("Table 3.3: Memory Latencies, No Contention (cycles)");
    prefetch(&latency_jobs());
    let mf = measure_latency_table(ControllerKind::FlashEmulated);
    let mi = measure_latency_table(ControllerKind::Ideal);
    let pf = LatencyTable::paper_flash();
    let pi = LatencyTable::paper_ideal();
    let rows: Vec<Vec<String>> = MissClass::ALL
        .iter()
        .zip(mf.as_array().iter().zip(mi.as_array()))
        .zip(pf.as_array().iter().zip(pi.as_array()))
        .map(|((c, (f, i)), (pfv, piv))| {
            vec![
                c.label().to_string(),
                format!("{i:.0}"),
                format!("{piv:.0}"),
                format!("{f:.0}"),
                format!("{pfv:.0}"),
            ]
        })
        .collect();
    println!(
        "{}",
        format_table(
            &["Operation", "Ideal", "(paper)", "FLASH", "(paper)"],
            &rows
        )
    );
}

fn mk_msg(mtype: MsgType, me: u16, home: u16, req: u16, src: u16, spec: bool, addr: u64) -> InMsg {
    let a = flash_engine::Addr::new(addr);
    InMsg {
        mtype,
        src: NodeId(src),
        addr: a,
        aux: aux::pack(
            NodeId(req),
            match mtype {
                MsgType::NGet | MsgType::NFwdGet => MsgType::NGet,
                _ => MsgType::NGetX,
            },
            NodeId(home),
        ),
        spec,
        self_node: NodeId(me),
        home: NodeId(home),
        diraddr: dir_addr(a),
        with_data: mtype.carries_data(),
    }
}

fn handler_cycles(name: &str, msg: &InMsg, setup: impl FnOnce(&mut Directory<'_>)) -> u64 {
    let program = compile_shared(CodegenOptions::magic());
    let mut mem = ProtoMem::new();
    Directory::init_free_list(&mut mem, DEFAULT_PS_CAPACITY);
    {
        let mut d = Directory::new(&mut mem);
        setup(&mut d);
    }
    let mut env = MemEnv::new(&mut mem, msg);
    let run = flash_pp::emu::run(
        &program,
        program
            .entry(name)
            .unwrap_or_else(|| panic!("no handler {name}")),
        &mut env,
        flash_pp::emu::DEFAULT_PAIR_BUDGET,
    )
    .unwrap_or_else(|e| panic!("{name}: {e}"));
    run.exec_cycles
}

fn sharers(d: &mut Directory<'_>, daddr: u64, nodes: &[u16]) {
    let mut h = DirHeader::default();
    for &n in nodes {
        let idx = d.alloc_entry().expect("free entry");
        d.set_entry(idx, PtrEntry::new(NodeId(n), h.head()));
        h = h.with_head(idx);
    }
    d.set_header(daddr, h);
}

/// Table 3.4: PP occupancies for common operations, measured from the
/// emulated handlers vs the paper's values.
pub fn table_3_4() {
    banner("Table 3.4: PP Occupancies for Common Operations (cycles)");
    let addr = 0x2000u64;
    let da = dir_addr(flash_engine::Addr::new(addr));
    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut row = |name: &str, measured: String, paper: &str| {
        rows.push(vec![name.to_string(), measured, paper.to_string()]);
    };

    // Service read miss from main memory.
    let c = handler_cycles(
        "pi_get_local",
        &mk_msg(MsgType::PiGet, 0, 0, 0, 0, true, addr),
        |_| {},
    );
    row("Service read miss from main memory", c.to_string(), "11");

    // Service write miss: base and per-invalidation increment.
    let base = handler_cycles(
        "pi_getx_local",
        &mk_msg(MsgType::PiGetX, 0, 0, 0, 0, true, addr),
        |_| {},
    );
    let with3 = handler_cycles(
        "pi_getx_local",
        &mk_msg(MsgType::PiGetX, 0, 0, 0, 0, true, addr),
        |d| sharers(d, da, &[1, 2, 3]),
    );
    let per_inval = (with3 - base) as f64 / 3.0;
    row(
        "Service write miss from main memory",
        format!("{base} + {per_inval:.0}/inval"),
        "14 + 10..15/inval",
    );

    let c = handler_cycles(
        "pi_get_remote",
        &mk_msg(MsgType::PiGet, 0, 1, 0, 0, false, addr),
        |_| {},
    );
    row("Forward request to home node", c.to_string(), "3");

    let c = handler_cycles(
        "ni_get",
        &mk_msg(MsgType::NGet, 1, 1, 0, 0, true, addr | (1 << 32)),
        |d| {
            d.set_header(
                dir_addr(flash_engine::Addr::new(addr | (1 << 32))),
                DirHeader::default().with_dirty(true).with_owner(NodeId(2)),
            );
        },
    );
    row(
        "Forward request from home to dirty node",
        c.to_string(),
        "18",
    );

    // The intervention pair: the forward receipt plus the cache-data
    // reply handler (measured for the home-node case, which also updates
    // the directory and sharer list — the fuller variant).
    let fwd = handler_cycles(
        "ni_fwd_getx",
        &mk_msg(MsgType::NFwdGetX, 2, 1, 0, 1, false, addr),
        |_| {},
    );
    let reply = handler_cycles(
        "pi_interv_reply",
        &mk_msg(MsgType::PiIntervReply, 1, 1, 0, 1, true, addr),
        |d| {
            d.set_header(
                da,
                DirHeader::default()
                    .with_dirty(true)
                    .with_owner(NodeId(1))
                    .with_pending(true),
            );
        },
    );
    row(
        "Retrieve data from processor cache",
        format!("{}", fwd + reply),
        "38",
    );

    let c = handler_cycles(
        "ni_put",
        &mk_msg(MsgType::NPut, 0, 1, 0, 1, false, addr),
        |_| {},
    );
    row(
        "Forward reply from network to processor",
        c.to_string(),
        "2",
    );

    let c = handler_cycles(
        "pi_wb_local",
        &mk_msg(MsgType::PiWriteback, 0, 0, 0, 0, false, addr),
        |d| {
            d.set_header(
                da,
                DirHeader::default()
                    .with_dirty(true)
                    .with_owner(NodeId(0))
                    .with_local(true),
            );
        },
    );
    row("Local writeback", c.to_string(), "10");

    let c = handler_cycles(
        "pi_hint_local",
        &mk_msg(MsgType::PiRplHint, 0, 0, 0, 0, false, addr),
        |d| {
            d.set_header(da, DirHeader::default().with_local(true));
        },
    );
    row("Local replacement hint", c.to_string(), "7");

    let c = handler_cycles(
        "ni_wb",
        &mk_msg(MsgType::NWriteback, 1, 1, 2, 2, false, addr),
        |d| {
            d.set_header(
                da,
                DirHeader::default().with_dirty(true).with_owner(NodeId(2)),
            );
        },
    );
    row("Writeback from a remote processor", c.to_string(), "8");

    let c = handler_cycles(
        "ni_hint",
        &mk_msg(MsgType::NRplHint, 1, 1, 2, 2, false, addr),
        |d| {
            sharers(d, da, &[2]);
        },
    );
    row("Replacement hint, only node on list", c.to_string(), "17");

    // Nth-node hint: node is at the tail of an N-entry list.
    let n = 5u16;
    let c = handler_cycles(
        "ni_hint",
        &mk_msg(MsgType::NRplHint, 1, 1, 2, 2, false, addr),
        |d| {
            // LIFO list: push the hinting node first so it ends up Nth.
            let order: Vec<u16> = (2..2 + n).collect();
            sharers(d, da, &order);
        },
    );
    row(
        &format!("Replacement hint, {n}th node on list"),
        c.to_string(),
        &format!("{}", 23 + 14 * n),
    );

    println!(
        "{}",
        format_table(&["Operation", "Measured", "Paper"], &rows)
    );
}

fn breakdown_row(app: &str, r: &MachineReport, norm: f64) -> Vec<String> {
    let t = 100.0 * r.exec_cycles as f64 / norm;
    let b = r.breakdown;
    vec![
        app.to_string(),
        format!("{:?}", r.controller),
        format!("{:.0}", t),
        format!("{:.0}", t * b[0]),
        format!("{:.0}", t * b[1]),
        format!("{:.0}", t * b[2]),
        format!("{:.0}", t * b[3]),
        format!("{:.0}", t * b[4]),
    ]
}

/// Apps shown in the Figure 4.x breakdowns at `cache_bytes` (the parallel
/// suite, plus OS at 1 MB).
fn figure_apps(cache_bytes: u64) -> Vec<&'static str> {
    let mut apps = apps_at(cache_bytes);
    if cache_bytes >= (1 << 20) {
        apps.push("OS");
    }
    apps
}

/// Every run one Figure 4.x breakdown needs: FLASH and ideal per app.
fn figure_jobs(cache_bytes: u64) -> Vec<Job> {
    figure_apps(cache_bytes)
        .into_iter()
        .flat_map(|app| {
            [
                Job::Run(run_spec(app, ControllerKind::FlashEmulated, cache_bytes)),
                Job::Run(run_spec(app, ControllerKind::Ideal, cache_bytes)),
            ]
        })
        .collect()
}

fn figure_runs(cache_bytes: u64, title: &str) {
    banner(title);
    prefetch(&figure_jobs(cache_bytes));
    let mut rows = Vec::new();
    for app in figure_apps(cache_bytes) {
        let f = run_app(app, ControllerKind::FlashEmulated, cache_bytes);
        let i = run_app(app, ControllerKind::Ideal, cache_bytes);
        let norm = f.exec_cycles as f64;
        rows.push(breakdown_row(app, &f, norm));
        rows.push(breakdown_row(app, &i, norm));
        let c = compare(&f, &i);
        rows.push(vec![
            String::new(),
            format!("FLASH +{:.1}% over ideal", c.slowdown_pct),
            String::new(),
            String::new(),
            String::new(),
            String::new(),
            String::new(),
            String::new(),
        ]);
    }
    println!(
        "{}",
        format_table(
            &["App", "Machine", "Total", "Busy", "Cont", "Read", "Write", "Sync"],
            &rows
        )
    );
    println!("(execution time normalized to FLASH = 100 per app, as in the paper's figures)");
}

/// Figure 4.1: execution-time breakdown, 1 MB caches.
pub fn fig_4_1() {
    figure_runs(
        1 << 20,
        "Figure 4.1: Execution times, FLASH vs ideal, 1 MB caches",
    );
}

/// Figure 4.2: execution-time breakdown, 64 KB caches.
pub fn fig_4_2() {
    figure_runs(
        64 << 10,
        "Figure 4.2: Execution times, FLASH vs ideal, 64 KB caches",
    );
}

/// Figure 4.3: execution-time breakdown, 4 KB caches (16 KB Ocean).
pub fn fig_4_3() {
    figure_runs(
        4 << 10,
        "Figure 4.3: Execution times, FLASH vs ideal, 4 KB caches",
    );
}

/// Apps in one Table 4.x distribution (OS only in the 1 MB table).
fn distribution_apps(cache_bytes: u64, include_os: bool) -> Vec<&'static str> {
    let mut apps = apps_at(cache_bytes);
    if include_os {
        apps.push("OS");
    }
    apps
}

/// Every measurement one Table 4.x distribution needs: the latency
/// columns plus one FLASH run per app.
fn distribution_jobs(cache_bytes: u64, include_os: bool) -> Vec<Job> {
    let mut v = latency_jobs();
    for app in distribution_apps(cache_bytes, include_os) {
        v.push(Job::Run(run_spec(
            app,
            ControllerKind::FlashEmulated,
            cache_bytes,
        )));
    }
    v
}

fn distribution_table(cache_bytes: u64, title: &str, include_os: bool) {
    banner(title);
    prefetch(&distribution_jobs(cache_bytes, include_os));
    let lat_f = measure_latency_table(ControllerKind::FlashEmulated);
    let lat_i = measure_latency_table(ControllerKind::Ideal);
    let mut rows = Vec::new();
    for app in distribution_apps(cache_bytes, include_os) {
        let r = run_app(app, ControllerKind::FlashEmulated, cache_bytes);
        let cf = r.class_fractions();
        rows.push(vec![
            app.to_string(),
            pct(r.miss_rate),
            pct(cf[0]),
            pct(cf[1]),
            pct(cf[2]),
            pct(cf[3]),
            pct(cf[4]),
            format!("{:.0}", r.crmt(&lat_f)),
            format!("{:.0}", r.crmt(&lat_i)),
            pct(r.mem_occupancy.0),
            pct(r.pp_occupancy.0),
        ]);
    }
    println!(
        "{}",
        format_table(
            &[
                "App", "Miss", "LClean", "LDirtyR", "RClean", "RDirtyH", "RDirtyR", "CRMT-F",
                "CRMT-I", "MemOcc", "PPOcc",
            ],
            &rows
        )
    );
}

/// Table 4.1: read-miss distributions and CRMT, 1 MB caches.
pub fn table_4_1() {
    distribution_table(
        1 << 20,
        "Table 4.1: Read Miss Distributions and CRMT, 1 MB caches",
        true,
    );
}

/// Table 4.2: read-miss distributions and CRMT at 64 KB and 4 KB.
pub fn table_4_2() {
    distribution_table(64 << 10, "Table 4.2 (left): 64 KB caches", false);
    distribution_table(
        4 << 10,
        "Table 4.2 (right): 4 KB caches (16 KB Ocean)",
        false,
    );
}

/// The §4.3 original-IRIX-port runs (FLASH and ideal).
fn hotspot_os_jobs() -> Vec<Job> {
    let work = WorkSpec::OsOriginalPort {
        procs: os_procs(),
        scale: scale(),
    };
    vec![
        Job::Run(RunSpec {
            work,
            cfg: base_cfg(ControllerKind::FlashEmulated, os_procs()),
        }),
        Job::Run(RunSpec {
            work,
            cfg: base_cfg(ControllerKind::Ideal, os_procs()),
        }),
    ]
}

/// §4.3: PP occupancy hurts only when memory occupancy is low.
///
/// The FFT-on-node-0 half stays on the caller's thread: it reads
/// chip-level occupancies straight off the live [`flash::Machine`], which
/// the memoized [`MachineReport`] does not carry.
pub fn sec_4_3_hotspot() {
    banner("Section 4.3: PP occupancy and hot-spotting");
    prefetch(&hotspot_os_jobs());
    // FFT with all memory on node 0 (high PP occupancy AND high memory
    // occupancy at node 0: small FLASH/ideal gap).
    let procs = parallel_procs();
    let hot = Fft::hotspot(procs, scale().min(2));
    let cache = 4 << 10;
    let runs: Vec<(&str, MachineReport)> = [ControllerKind::FlashEmulated, ControllerKind::Ideal]
        .iter()
        .map(|&k| {
            let cfg = base_cfg(k, procs).with_cache_bytes(cache);
            let mut m = flash_workloads::build_machine(&cfg, &hot);
            let RunResult::Completed { .. } = m.run(flash_workloads::DEFAULT_BUDGET) else {
                panic!("hotspot run stuck");
            };
            let end = flash_engine::Cycle::new(m.exec_cycles());
            let node0_pp = m.chips()[0].pp_occupancy(end);
            let node0_mem = m.chips()[0].memory().occupancy(end);
            println!(
                "FFT-on-node-0 [{k:?}]: exec {} cycles; node0 PP occ {} mem occ {}",
                m.exec_cycles(),
                pct(node0_pp),
                pct(node0_mem)
            );
            ("fft", MachineReport::from_machine(&m))
        })
        .collect();
    let gap = runs[0].1.exec_cycles as f64 / runs[1].1.exec_cycles.max(1) as f64 - 1.0;
    println!(
        "FFT-on-node-0: FLASH +{:.1}% over ideal (paper: 2.6% despite 81.6% PP occupancy,\n  because node 0's memory occupancy was also high at 67.7%)",
        gap * 100.0
    );

    // The original (first-node) IRIX port: high PP occupancy with LOW
    // memory occupancy elsewhere: a large FLASH/ideal gap.
    let work = WorkSpec::OsOriginalPort {
        procs: os_procs(),
        scale: scale(),
    };
    let f = cached_run(&RunSpec {
        work,
        cfg: base_cfg(ControllerKind::FlashEmulated, os_procs()),
    });
    let i = cached_run(&RunSpec {
        work,
        cfg: base_cfg(ControllerKind::Ideal, os_procs()),
    });
    let c = compare(&f, &i);
    println!(
        "OS original port (first-node pages): FLASH +{:.1}% over ideal;\n  max PP occ {} vs max mem occ {} (paper: 29% degradation, 81% PP vs 33% mem)",
        c.slowdown_pct,
        pct(f.pp_occupancy.1),
        pct(f.mem_occupancy.1)
    );
}

/// The §4.5 64-processor matrix dimension for the scaled-data FFT run.
fn scale64_fft_dim() -> u64 {
    (256 / scale() as u64 * 2).max(128)
}

/// Every §4.5 64-processor run: three apps plus the scaled-data FFT, each
/// on FLASH and ideal.
fn scale64_jobs() -> Vec<Job> {
    let mut works: Vec<WorkSpec> = ["FFT", "Ocean", "LU"]
        .into_iter()
        .map(|app| WorkSpec::Named {
            app,
            procs: 64,
            scale: scale(),
        })
        .collect();
    works.push(WorkSpec::FftDim {
        procs: 64,
        dim: scale64_fft_dim(),
    });
    works
        .into_iter()
        .flat_map(|work| {
            [
                Job::Run(RunSpec {
                    work,
                    cfg: MachineConfig::flash(64),
                }),
                Job::Run(RunSpec {
                    work,
                    cfg: MachineConfig::ideal(64),
                }),
            ]
        })
        .collect()
}

/// §4.5: 64-processor scaling with unscaled problem sizes.
pub fn sec_4_5_scale64() {
    banner("Section 4.5: Scaling to 64 processors (same problem sizes)");
    prefetch(&scale64_jobs());
    let mut rows = Vec::new();
    for app in ["FFT", "Ocean", "LU"] {
        let work = WorkSpec::Named {
            app,
            procs: 64,
            scale: scale(),
        };
        let f = cached_run(&RunSpec {
            work,
            cfg: MachineConfig::flash(64),
        });
        let i = cached_run(&RunSpec {
            work,
            cfg: MachineConfig::ideal(64),
        });
        let c = compare(&f, &i);
        rows.push(vec![
            app.to_string(),
            c.flash_cycles.to_string(),
            c.ideal_cycles.to_string(),
            format!("+{:.1}%", c.slowdown_pct),
            match app {
                "FFT" => "17%".to_string(),
                "Ocean" => "12%".to_string(),
                _ => "0.7%".to_string(),
            },
        ]);
    }
    // FFT with the data set scaled proportionally (4x the 16-node size).
    let work = WorkSpec::FftDim {
        procs: 64,
        dim: scale64_fft_dim(),
    };
    let f = cached_run(&RunSpec {
        work,
        cfg: MachineConfig::flash(64),
    });
    let i = cached_run(&RunSpec {
        work,
        cfg: MachineConfig::ideal(64),
    });
    let c = compare(&f, &i);
    rows.push(vec![
        "FFT (scaled data)".into(),
        c.flash_cycles.to_string(),
        c.ideal_cycles.to_string(),
        format!("+{:.1}%", c.slowdown_pct),
        "12%".into(),
    ]);
    println!(
        "{}",
        format_table(&["App (64p)", "FLASH", "Ideal", "Slowdown", "Paper"], &rows)
    );
}

/// The speculation-on / speculation-off pair of run points for one Table
/// 5.1 cell. The "on" spec is exactly the standard [`run_spec`] point, so
/// it dedupes against the Figure 4.x and Table 4.x runs.
fn speculation_specs(app: &'static str, cache: u64) -> (RunSpec, RunSpec) {
    let on = run_spec(app, ControllerKind::FlashEmulated, cache);
    let off = RunSpec {
        work: on.work,
        cfg: on.cfg.clone().with_speculation(false),
    };
    (on, off)
}

/// Every run Table 5.1 needs.
fn table_5_1_jobs() -> Vec<Job> {
    [1u64 << 20, 4 << 10]
        .into_iter()
        .flat_map(|cache| {
            distribution_apps(cache, cache >= (1 << 20))
                .into_iter()
                .flat_map(move |app| {
                    let (on, off) = speculation_specs(app, cache);
                    [Job::Run(on), Job::Run(off)]
                })
        })
        .collect()
}

/// Table 5.1: impact of speculative memory operations.
pub fn table_5_1() {
    banner("Table 5.1: Impact of Speculative Memory Operations");
    prefetch(&table_5_1_jobs());
    let mut rows = Vec::new();
    for (cache, label) in [(1u64 << 20, "1 MB"), (4 << 10, "4 KB")] {
        for app in distribution_apps(cache, cache >= (1 << 20)) {
            let (on_spec, off_spec) = speculation_specs(app, cache);
            let on = cached_run(&on_spec);
            let off = cached_run(&off_spec);
            let slowdown = off.exec_cycles as f64 / on.exec_cycles.max(1) as f64 - 1.0;
            rows.push(vec![
                format!("{app} @ {label}"),
                pct(on.useless_spec_fraction()),
                format!("+{:.1}%", slowdown * 100.0),
            ]);
        }
    }
    println!(
        "{}",
        format_table(
            &["App", "Useless spec reads", "Exec increase w/o speculation"],
            &rows
        )
    );
    println!("(paper: useless 20%-68%, exec increase 0.2%-12.7% at 1 MB; up to 21% at 4 KB)");
}

/// The §5.2 uniprocessor MDC stress point (with or without the MDC
/// penalty modelled).
fn mdc_stress_spec(mdc_on: bool) -> RunSpec {
    RunSpec {
        work: WorkSpec::MdcStress {
            data_mb: 16,
            scale: scale(),
        },
        cfg: MachineConfig::flash(1).with_mdc(mdc_on),
    }
}

/// Every run §5.2 needs: the 1 MB parallel suite (shared with Figure
/// 4.1), the two stress runs, and the OS workload.
fn mdc_jobs() -> Vec<Job> {
    let mut v: Vec<Job> = apps_at(1 << 20)
        .into_iter()
        .map(|app| Job::Run(run_spec(app, ControllerKind::FlashEmulated, 1 << 20)))
        .collect();
    v.push(Job::Run(mdc_stress_spec(true)));
    v.push(Job::Run(mdc_stress_spec(false)));
    v.push(Job::Run(run_spec(
        "OS",
        ControllerKind::FlashEmulated,
        1 << 20,
    )));
    v
}

/// §5.2: MAGIC data cache behaviour.
pub fn sec_5_2_mdc() {
    banner("Section 5.2: MAGIC Data Cache");
    prefetch(&mdc_jobs());
    // Parallel application suite at 1 MB: MDC rates too small to matter.
    let mut misses = 0u64;
    let mut accesses = 0u64;
    for app in apps_at(1 << 20) {
        let r = run_app(app, ControllerKind::FlashEmulated, 1 << 20);
        misses += r.mdc.misses;
        accesses += r.mdc.accesses;
    }
    println!(
        "Parallel suite, 1 MB: overall MDC miss rate {} (paper: 0.84%)",
        pct(misses as f64 / accesses.max(1) as f64)
    );

    // Uniprocessor 16 MB radix-2048 stress (paper: 14.9% MDC miss rate,
    // 14% slowdown vs no MDC penalty).
    let s = scale();
    for mdc_on in [true, false] {
        let r = cached_run(&mdc_stress_spec(mdc_on));
        let exec_cycles = r.exec_cycles;
        if mdc_on {
            println!(
                "Radix stress (16 MB / scale {s}, radix 2048, 1 processor):\n  MDC miss rate {} read miss rate {} (paper: 14.9% / 30%); exec {} cycles",
                pct(r.mdc.miss_rate),
                pct(r.mdc.read_miss_rate),
                exec_cycles
            );
        } else {
            println!("  without MDC penalty: exec {exec_cycles} cycles");
        }
    }
    // OS workload MDC rates (paper: 4.1% overall, 8.7% read).
    let r = run_app("OS", ControllerKind::FlashEmulated, 1 << 20);
    println!(
        "OS workload: MDC miss rate {} read miss rate {} (paper: 4.1% / 8.7%)",
        pct(r.mdc.miss_rate),
        pct(r.mdc.read_miss_rate)
    );
}

/// Every run Table 5.2 aggregates: the FLASH suite at all three cache
/// sizes (all shared with the Figure 4.x jobs).
fn table_5_2_jobs() -> Vec<Job> {
    [1u64 << 20, 64 << 10, 4 << 10]
        .into_iter()
        .flat_map(|cache| {
            apps_at(cache)
                .into_iter()
                .map(move |app| Job::Run(run_spec(app, ControllerKind::FlashEmulated, cache)))
        })
        .collect()
}

/// Table 5.2: PP architecture statistics.
pub fn table_5_2() {
    banner("Table 5.2: PP Architecture Evaluation");
    prefetch(&table_5_2_jobs());
    let program = compile_shared(CodegenOptions::magic());
    println!(
        "Static code size of fully-scheduled handlers (with NOPs): {:.1} KB (paper: 14.8 KB)",
        program.static_bytes() as f64 / 1024.0
    );
    let mut rows = Vec::new();
    for (cache, label, paper) in [
        (1u64 << 20, "1 MB", (1.53, 0.38, 13.5, 3.69)),
        (64 << 10, "64 KB", (1.54, 0.37, 13.1, 3.87)),
        (4 << 10, "4 KB", (1.43, 0.43, 10.8, 3.51)),
    ] {
        let mut pp = flash_pp::RunStats::default();
        let mut misses = 0f64;
        for app in apps_at(cache) {
            let r = run_app(app, ControllerKind::FlashEmulated, cache);
            pp.merge(&r.pp_stats);
            misses += r.references as f64 * r.miss_rate;
        }
        rows.push(vec![
            label.to_string(),
            format!("{:.2} ({:.2})", pp.dual_issue_efficiency(), paper.0),
            format!(
                "{:.0}% ({:.0}%)",
                pp.special_fraction() * 100.0,
                paper.1 * 100.0
            ),
            format!("{:.1} ({:.1})", pp.pairs_per_invocation(), paper.2),
            format!(
                "{:.2} ({:.2})",
                pp.invocations as f64 / misses.max(1.0),
                paper.3
            ),
        ]);
    }
    println!(
        "{}",
        format_table(
            &[
                "Caches",
                "Dual-issue eff (paper)",
                "Special use (paper)",
                "Pairs/handler (paper)",
                "Handlers/miss (paper)",
            ],
            &rows
        )
    );
}

/// Table 5.3: special instructions vs their DLX substitution sequences.
pub fn table_5_3() {
    banner("Table 5.3: Special Instructions vs DLX Substitution");
    use flash_pp::dlx::expansion_len;
    let r = Reg(1);
    let s = Reg(2);
    let bbs_lo = expansion_len(Instr::BranchBit {
        set: true,
        rs: s,
        bit: 3,
        target: flash_pp::isa::Label(0),
    });
    let bbs_hi = expansion_len(Instr::BranchBit {
        set: true,
        rs: s,
        bit: 40,
        target: flash_pp::isa::Label(0),
    });
    let ffs = expansion_len(Instr::Ffs { rd: r, rs: s });
    let fi_min = (0..4)
        .map(|i| {
            expansion_len(Instr::FieldImm {
                op: [
                    flash_pp::isa::FieldOp::AndMask,
                    flash_pp::isa::FieldOp::OrMask,
                    flash_pp::isa::FieldOp::XorMask,
                    flash_pp::isa::FieldOp::AndNotMask,
                ][i],
                rd: r,
                rs: s,
                pos: 0,
                width: 8,
            })
        })
        .min()
        .unwrap();
    let fi_max = (0..4)
        .map(|i| {
            expansion_len(Instr::FieldImm {
                op: [
                    flash_pp::isa::FieldOp::AndMask,
                    flash_pp::isa::FieldOp::OrMask,
                    flash_pp::isa::FieldOp::XorMask,
                    flash_pp::isa::FieldOp::AndNotMask,
                ][i],
                rd: r,
                rs: s,
                pos: 30,
                width: 20,
            })
        })
        .max()
        .unwrap();
    let bfins = expansion_len(Instr::BfIns {
        rd: r,
        rs: s,
        pos: 8,
        width: 4,
    });
    let bfext = expansion_len(Instr::BfExt {
        rd: r,
        rs: s,
        pos: 4,
        width: 8,
    });
    let rows = vec![
        vec![
            "Find first set bit".into(),
            format!("{ffs} instructions (loop)"),
            "6 instrs, 2 + 4/bit".into(),
        ],
        vec![
            "Branch on bit".into(),
            format!("{bbs_lo} or {bbs_hi} instructions"),
            "2 or 4 instructions".into(),
        ],
        vec![
            "ALU field immediate".into(),
            format!("{fi_min}-{fi_max} instructions"),
            "1-5 instructions".into(),
        ],
        vec![
            "Insert field".into(),
            format!("{bfins} instructions"),
            "two field imms + or".into(),
        ],
        vec![
            "Extract field".into(),
            format!("{bfext} instructions"),
            "(shifts)".into(),
        ],
    ];
    println!(
        "{}",
        format_table(&["Instr type", "This repo", "Paper"], &rows)
    );
}

/// The optimized / de-optimized PP run pair for one §5.3 app. The fast
/// spec is the standard 1 MB FLASH point (shared with Figure 4.1).
fn ppext_specs(app: &'static str) -> (RunSpec, RunSpec) {
    let fast = run_spec(app, ControllerKind::FlashEmulated, 1 << 20);
    let slow = RunSpec {
        work: fast.work,
        cfg: fast.cfg.clone().with_codegen(CodegenOptions::deoptimized()),
    };
    (fast, slow)
}

/// Every run §5.3 needs.
fn ppext_jobs() -> Vec<Job> {
    apps_at(1 << 20)
        .into_iter()
        .flat_map(|app| {
            let (fast, slow) = ppext_specs(app);
            [Job::Run(fast), Job::Run(slow)]
        })
        .collect()
}

/// §5.3: performance without the PP ISA extensions (single-issue, no
/// special instructions). Paper: 40% average, 137% maximum degradation.
pub fn sec_5_3_ppext() {
    banner("Section 5.3: de-optimized PP (single-issue, no special instructions)");
    prefetch(&ppext_jobs());
    let mut rows = Vec::new();
    let mut total = 0.0;
    let mut maxd: (f64, &str) = (0.0, "");
    let apps = apps_at(1 << 20);
    for &app in &apps {
        let (fast_spec, slow_spec) = ppext_specs(app);
        let fast = cached_run(&fast_spec);
        let slow = cached_run(&slow_spec);
        let d = slow.exec_cycles as f64 / fast.exec_cycles.max(1) as f64 - 1.0;
        total += d;
        if d > maxd.0 {
            maxd = (d, app);
        }
        rows.push(vec![app.to_string(), format!("+{:.1}%", d * 100.0)]);
    }
    println!("{}", format_table(&["App", "Degradation"], &rows));
    println!(
        "average +{:.1}%, maximum +{:.1}% ({}) — paper: average 40%, maximum 137% (MP3D)",
        total / apps.len() as f64 * 100.0,
        maxd.0 * 100.0,
        maxd.1
    );
}

/// Sanity line proving the custom-protocol hook exists (used by the
/// `custom_protocol` example; exercised here so `repro_all` covers it).
pub fn flexibility_note() {
    let mut jt = flash_protocol::JumpTable::dpa_protocol();
    jt.reprogram(
        MsgType::NGet,
        true,
        flash_protocol::JumpEntry {
            handler: "ni_get",
            speculative: false,
        },
    );
    let _ = node_addr(NodeId(0), 0);
}

/// The ablation variant list: display name plus the exact configuration.
/// The first entry is the baseline every other row is normalized to
/// (identical to the Figure 4.1 FFT FLASH point, so it is shared).
fn ablation_variants() -> Vec<(String, MachineConfig)> {
    let base = base_cfg(ControllerKind::FlashEmulated, parallel_procs());
    let mut v = vec![("baseline".to_string(), base.clone())];
    // Per-hop network latencies instead of the paper's fixed average.
    let mut cfg = base.clone();
    cfg.net.fixed_average = false;
    v.push(("per-hop network latency".into(), cfg));
    // A memory bank that overlaps row access with data transfer.
    let mut cfg = base.clone();
    cfg.mem_timing = flash_mem::MemTiming::pipelined();
    v.push(("pipelined memory bank".into(), cfg));
    // No MAGIC data cache penalty.
    v.push(("MDC disabled".into(), base.clone().with_mdc(false)));
    // Monitoring protocol overhead.
    v.push((
        "monitoring protocol".into(),
        base.clone().with_monitoring(true),
    ));
    // MSHR depth sweep.
    for mshrs in [1usize, 2, 8] {
        let mut cfg = base.clone();
        cfg.mshrs = mshrs;
        v.push((format!("{mshrs} MSHRs"), cfg));
    }
    v
}

/// The FFT workload point every ablation variant runs.
fn ablation_work() -> WorkSpec {
    WorkSpec::Named {
        app: "FFT",
        procs: parallel_procs(),
        scale: scale(),
    }
}

/// Every run the ablation study needs.
fn ablation_jobs() -> Vec<Job> {
    let work = ablation_work();
    ablation_variants()
        .into_iter()
        .map(|(_, cfg)| Job::Run(RunSpec { work, cfg }))
        .collect()
}

/// Ablations of this simulator's own design choices (DESIGN.md): network
/// latency model, memory bank pipelining, MDC, MSHR depth, and the
/// monitoring-protocol overhead. Not a paper artifact — a sensitivity
/// study of the reproduction itself.
pub fn ablations() {
    banner("Ablations: model sensitivity (FFT, detailed FLASH)");
    prefetch(&ablation_jobs());
    let work = ablation_work();
    let variants = ablation_variants();
    let run = |cfg: &MachineConfig| {
        cached_run(&RunSpec {
            work,
            cfg: cfg.clone(),
        })
        .exec_cycles
    };

    let base = run(&variants[0].1);
    let mut rows: Vec<Vec<String>> = vec![vec!["baseline".into(), base.to_string(), "-".into()]];
    for (name, cfg) in &variants[1..] {
        let cycles = run(cfg);
        rows.push(vec![
            name.clone(),
            cycles.to_string(),
            format!("{:+.1}%", (cycles as f64 / base as f64 - 1.0) * 100.0),
        ]);
    }

    println!(
        "{}",
        format_table(&["Variant", "Cycles", "vs baseline"], &rows)
    );
}

/// The full `repro_all` run matrix: one [`Job`] per simulation point each
/// artifact consults, concatenated in artifact order and *not*
/// deduplicated (the per-artifact duplication is exactly what the serial
/// pre-runner code re-simulated; [`crate::runner::prefetch`] collapses
/// it).
pub fn repro_all_jobs() -> Vec<Job> {
    let mut v = latency_jobs();
    for cache in [1u64 << 20, 64 << 10, 4 << 10] {
        v.extend(figure_jobs(cache));
    }
    v.extend(distribution_jobs(1 << 20, true));
    v.extend(distribution_jobs(64 << 10, false));
    v.extend(distribution_jobs(4 << 10, false));
    v.extend(hotspot_os_jobs());
    v.extend(scale64_jobs());
    v.extend(table_5_1_jobs());
    v.extend(mdc_jobs());
    v.extend(table_5_2_jobs());
    v.extend(ppext_jobs());
    v.extend(ablation_jobs());
    v
}

/// Enumerates the union of every simulation point `repro_all` touches and
/// prefetches it across the worker pool in one deduplicated batch, so the
/// subsequent table renders are pure cache reads. A short summary goes to
/// stderr; stdout stays byte-identical to the serial path.
pub fn prefetch_all() {
    let v = repro_all_jobs();
    let unique = crate::runner::prefetch(&v);
    eprintln!(
        "[runner] {unique} unique simulation points prefetched from {} listed jobs",
        v.len()
    );
}
