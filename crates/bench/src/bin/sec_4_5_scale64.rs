//! Regenerates the paper's sec_4_5_scale64 artifact. See `flash_bench::tables`.
fn main() {
    flash_bench::tables::sec_4_5_scale64();
}
