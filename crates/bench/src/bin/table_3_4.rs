//! Regenerates the paper's table_3_4 artifact. See `flash_bench::tables`.
fn main() {
    flash_bench::tables::table_3_4();
}
