//! Regenerates the paper's table_3_4 artifact. See `flash_bench::tables`.
//!
//! Simulation points run under the hardened supervisor; if any point
//! fails every attempt the render is caught at the process boundary,
//! a failure table is printed, and the exit status is nonzero.
use std::process::ExitCode;

fn main() -> ExitCode {
    flash_bench::artifact_main("table_3_4", flash_bench::tables::table_3_4)
}
