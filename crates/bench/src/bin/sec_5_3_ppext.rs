//! Regenerates the paper's sec_5_3_ppext artifact. See `flash_bench::tables`.
//!
//! Simulation points run under the hardened supervisor; if any point
//! fails every attempt the render is caught at the process boundary,
//! a failure table is printed, and the exit status is nonzero.
use std::process::ExitCode;

fn main() -> ExitCode {
    flash_bench::artifact_main("sec_5_3_ppext", flash_bench::tables::sec_5_3_ppext)
}
