//! Renders a host-time profile: where the *simulator's* wall-clock time
//! goes while simulating one workload (the mirror of
//! `observe_breakdown`, which attributes *simulated* cycles).
//!
//! Usage: `host_profile [APP]` — any name `flash_workloads::by_name`
//! accepts (default: MP3D). Honors `FLASH_SCALE` / `FLASH_FULL` /
//! `FLASH_PROCS` like the other bins; with `FLASH_HOSTPROF_OUT=<path>`
//! set the machine also exports the `flash-hostprof-v1` JSON of
//! METRICS.md on completion.
//!
//! The profiler is timing-invisible (pinned by
//! `machine_properties::host_profile_is_timing_invisible`), so the
//! simulated results of a profiled run are identical to an unprofiled
//! one; only host-clock observations are added.

use flash::ControllerKind;
use flash::RunResult;
use flash_bench::{base_cfg, os_procs, parallel_procs, scale};
use flash_workloads::{budget, build_machine, by_name};

fn main() {
    let app = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "MP3D".to_string());
    let procs = if app == "OS" {
        os_procs()
    } else {
        parallel_procs()
    };
    let w = by_name(&app, procs, scale());
    let cfg = base_cfg(ControllerKind::FlashEmulated, procs).with_host_profile(true);
    let mut m = build_machine(&cfg, w.as_ref());
    match m.run(budget()) {
        RunResult::Completed { exec_cycles } => {
            let prof = m.host_profile().expect("profiler armed via config");
            println!(
                "{} x{} procs, scale divisor {}: {} simulated cycles",
                w.name(),
                procs,
                scale(),
                exec_cycles
            );
            print!("{}", prof.render());
        }
        other => {
            eprintln!("{} did not complete: {other:?}", w.name());
            std::process::exit(1);
        }
    }
}
