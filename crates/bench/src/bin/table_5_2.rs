//! Regenerates the paper's table_5_2 artifact. See `flash_bench::tables`.
fn main() {
    flash_bench::tables::table_5_2();
}
