//! Observed decomposition of the Table 3.3 latencies: each no-contention
//! read-miss class split into the six cycle-attribution segments
//! (`METRICS.md`), for the FLASH and ideal machines. The per-class sums
//! reproduce the `table_3_3` column to within a cycle — this is the
//! instrument behind the EXPERIMENTS.md discussion of where our Table 3.3
//! deviations come from.

use flash::{format_table, ControllerKind};
use flash_bench::{measure_class_breakdown, MissClass};
use flash_engine::Segment;
use std::process::ExitCode;

fn render() {
    println!("================================================================");
    println!("Observed Table 3.3 breakdown (cycles per segment, no contention)");
    println!("================================================================");
    for (kind, title) in [
        (ControllerKind::FlashEmulated, "FLASH"),
        (ControllerKind::Ideal, "Ideal"),
    ] {
        let mut headers = vec!["Class"];
        headers.extend(Segment::ALL.iter().map(|s| s.name()));
        headers.push("sum");
        headers.push("measured");
        let rows: Vec<Vec<String>> = MissClass::ALL
            .iter()
            .map(|&class| {
                let (segs, stall) = measure_class_breakdown(kind, class);
                let mut row = vec![class.label().to_string()];
                row.extend(segs.iter().map(|v| v.to_string()));
                row.push(segs.iter().sum::<u64>().to_string());
                row.push(format!("{stall:.0}"));
                row
            })
            .collect();
        println!("\n{title}:");
        print!("{}", format_table(&headers, &rows));
    }
}

fn main() -> ExitCode {
    flash_bench::artifact_main("observe_breakdown", render)
}
