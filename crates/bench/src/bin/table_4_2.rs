//! Regenerates the paper's table_4_2 artifact. See `flash_bench::tables`.
fn main() {
    flash_bench::tables::table_4_2();
}
