//! End-to-end host-performance benchmark over the full `repro_all` job
//! set, with a built-in byte-identity check.
//!
//! Runs the sibling `repro_all` binary (same target directory) a few
//! times, verifies its stdout is byte-identical to the pinned golden
//! transcript (`tests/golden/repro_all.txt`), and prints a small JSON
//! report: wall milliseconds per repeat, best/median, and simulation
//! points per second. CI's perf-smoke job archives the JSON and fails on
//! any stdout drift; BENCH_PR8.json in the repo root records the
//! before/after numbers for this PR.
//!
//! Knobs: `FLASH_BENCH_REPEATS` (default 3) controls the repeat count;
//! the child inherits the environment, so `FLASH_SHARDS`,
//! `FLASH_PP_BACKEND`, `FLASH_JOBS`, etc. apply as usual.

use std::path::PathBuf;
use std::process::Command;
use std::time::Instant;

/// The sibling `repro_all` binary (both bins land in the same directory).
fn repro_all_path() -> PathBuf {
    let mut p = std::env::current_exe().expect("own path");
    p.set_file_name(format!("repro_all{}", std::env::consts::EXE_SUFFIX));
    p
}

/// The pinned golden transcript, resolved relative to the workspace (the
/// bench crate sits at `crates/bench`).
fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden/repro_all.txt")
}

fn main() {
    let repeats: usize = std::env::var("FLASH_BENCH_REPEATS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3)
        .max(1);
    let golden = std::fs::read(golden_path()).expect("tests/golden/repro_all.txt readable");
    let bin = repro_all_path();
    let points = flash_bench::tables::repro_all_jobs().len();
    let mut times_ms: Vec<u64> = Vec::with_capacity(repeats);
    let mut identical = true;
    for i in 0..repeats {
        let t0 = Instant::now();
        let out = Command::new(&bin).output().expect("repro_all runs");
        let ms = t0.elapsed().as_millis() as u64;
        assert!(
            out.status.success(),
            "repro_all exited nonzero on repeat {i}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        if out.stdout != golden {
            identical = false;
        }
        times_ms.push(ms);
    }
    let mut sorted = times_ms.clone();
    sorted.sort_unstable();
    let best = sorted[0];
    let median = sorted[sorted.len() / 2];
    let sims_per_sec = points as f64 / (median as f64 / 1000.0);
    println!("{{");
    println!("  \"bench\": \"bench_pr8\",");
    println!("  \"listed_points\": {points},");
    println!("  \"repeats\": {repeats},");
    println!(
        "  \"times_ms\": [{}],",
        times_ms
            .iter()
            .map(|t| t.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    );
    println!("  \"best_ms\": {best},");
    println!("  \"median_ms\": {median},");
    println!("  \"listed_points_per_sec\": {sims_per_sec:.2},");
    println!("  \"stdout_byte_identical\": {identical}");
    println!("}}");
    assert!(
        identical,
        "repro_all stdout drifted from tests/golden/repro_all.txt"
    );
}
