//! Sensitivity ablations of the simulator's design choices.
//!
//! Simulation points run under the hardened supervisor; if any point
//! fails every attempt the render is caught at the process boundary,
//! a failure table is printed, and the exit status is nonzero.
use std::process::ExitCode;

fn main() -> ExitCode {
    flash_bench::artifact_main("ablations", flash_bench::tables::ablations)
}
