//! Sensitivity ablations of the simulator's design choices.
fn main() {
    flash_bench::tables::ablations();
}
