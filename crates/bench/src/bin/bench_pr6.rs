//! PR 6 benchmark: the translated PP execution backend versus the
//! reference per-pair emulator, written to `BENCH_PR6.json` (hand-rolled
//! JSON, BENCH_PR1 methodology: measure both sides in one process, report
//! the raw numbers, explain the shortfalls in `notes`). Usage:
//!
//! ```text
//! cargo run --release -p flash-bench --bin bench_pr6 [output.json]
//! ```
//!
//! Three measurement groups:
//!
//! 1. `handler_dispatch`: every protocol handler under a zero-memory
//!    environment (clean-directory path, no state growth), emulator vs
//!    translated, scratch-state `run_into` on both sides.
//! 2. `chip_hot_path`: the per-invocation shape the chip executes, on the
//!    realistic idempotent `ni_get` read miss — `before` replicates the
//!    pre-PR path (entry lookup in the symbol map plus an allocating
//!    `emu::run` per invocation), `after_*` are the scratch-reuse paths
//!    this PR wired into `MagicChip`, and `native_floor` is the
//!    hand-written Rust handler as the lower bound.
//! 3. `end_to_end`: whole-machine sims/sec on FLASH-kind runs (paper
//!    workloads plus a handler-saturating hot-spot storm), emulator vs
//!    translated backend via `MachineConfig::with_pp_backend`.

use std::fmt::Write as _;
use std::hint::black_box;
use std::time::Instant;

use flash::{config::node_addr, Machine, MachineConfig, PpBackend, RunResult};
use flash_cpu::{RefStream, SliceStream, WorkItem};
use flash_engine::{Addr, NodeId};
use flash_pp::emu::{self, EffectSink, Env, MdcMiss, Regs};
use flash_pp::isa::MemSize;
use flash_pp::translate::translate_shared;
use flash_pp::CodegenOptions;
use flash_protocol::dir::{dir_addr, Directory, DEFAULT_PS_CAPACITY};
use flash_protocol::fields::aux;
use flash_protocol::handlers::{compile_shared, fields_of, MemEnv, HANDLER_NAMES};
use flash_protocol::msg::{InMsg, MsgType};
use flash_protocol::ProtoMem;

const BUDGET: u64 = 100_000;

/// Loads return zero, stores vanish: every iteration executes the
/// identical clean-directory path with zero state growth.
struct ZeroEnv {
    fields: [u64; 16],
}

impl Env for ZeroEnv {
    #[inline]
    fn load(&mut self, _addr: u64, _size: MemSize) -> (u64, Option<MdcMiss>) {
        (0, None)
    }

    #[inline]
    fn store(&mut self, _addr: u64, _val: u64, _size: MemSize) -> Option<MdcMiss> {
        None
    }

    #[inline]
    fn msg_field(&mut self, field: u8) -> u64 {
        self.fields[field as usize]
    }
}

fn read_miss_msg() -> InMsg {
    // requester == home: idempotent, so iterations do not grow state.
    let a = Addr::new(0x2000);
    InMsg {
        mtype: MsgType::NGet,
        src: NodeId(0),
        addr: a,
        aux: aux::pack(NodeId(0), MsgType::NGet, NodeId(0)),
        spec: true,
        self_node: NodeId(0),
        home: NodeId(0),
        diraddr: dir_addr(a),
        with_data: false,
    }
}

/// Times `f` and returns median-of-5 ns per iteration.
fn per_iter_ns(iters: u64, mut f: impl FnMut()) -> f64 {
    for _ in 0..iters / 4 {
        f(); // warm-up
    }
    let mut samples = [0f64; 5];
    for s in &mut samples {
        let t0 = Instant::now();
        for _ in 0..iters {
            f();
        }
        *s = t0.elapsed().as_secs_f64() * 1e9 / iters as f64;
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
    samples[2]
}

/// A handler-saturating hot-spot storm: every node repeatedly reads a set
/// of node-0 lines, then node 0 writes them all back (invalidating every
/// sharer), barrier-separated — the access shape of the paper's §4.3
/// hot-spot experiments, chosen to maximize PP handler work per cycle.
fn storm_streams(nodes: u16, lines: u64, rounds: usize) -> Vec<Box<dyn RefStream>> {
    (0..nodes)
        .map(|n| {
            let mut items = Vec::new();
            for _ in 0..rounds {
                for l in 0..lines {
                    items.push(WorkItem::Read(node_addr(NodeId(0), l * 128)));
                }
                items.push(WorkItem::Barrier);
                if n == 0 {
                    for l in 0..lines {
                        items.push(WorkItem::Write(node_addr(NodeId(0), l * 128)));
                    }
                }
                items.push(WorkItem::Barrier);
            }
            Box::new(SliceStream::new(items)) as Box<dyn RefStream>
        })
        .collect()
}

/// Wall-clock ms for one storm run (best of `reps`).
fn storm_ms(backend: PpBackend, reps: usize) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let cfg = MachineConfig::flash(8).with_pp_backend(backend);
        let mut m = Machine::new(cfg, storm_streams(8, 64, 10));
        let t0 = Instant::now();
        let RunResult::Completed { .. } = m.run(500_000_000) else {
            panic!("storm run stuck");
        };
        best = best.min(t0.elapsed().as_secs_f64() * 1e3);
    }
    best
}

/// Wall-clock ms for one paper-workload run (best of `reps`).
fn workload_ms(name: &str, procs: u16, scale: u32, backend: PpBackend, reps: usize) -> f64 {
    let w = flash_workloads::by_name(name, procs, scale);
    let cfg = MachineConfig::flash(procs).with_pp_backend(backend);
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        black_box(flash_workloads::run_workload(&cfg, w.as_ref()));
        best = best.min(t0.elapsed().as_secs_f64() * 1e3);
    }
    best
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_PR6.json".into());
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    let program = compile_shared(CodegenOptions::magic());
    let translated = translate_shared(&program);
    assert!(translated.fully_translated());
    let fields = fields_of(&read_miss_msg());

    // Group 1: per-handler dispatch, clean path.
    let mut per_handler = Vec::new();
    let mut ratio_log_sum = 0f64;
    for handler in HANDLER_NAMES {
        let entry = program.entry(handler).expect("known handler");
        let mut env = ZeroEnv { fields };
        let mut regs = Regs::new();
        let mut sink = EffectSink::new();
        let e_ns = per_iter_ns(60_000, || {
            black_box(emu::run_into(
                &program, entry, &mut env, BUDGET, &mut regs, &mut sink,
            ))
            .ok();
        });
        let t_ns = per_iter_ns(60_000, || {
            black_box(translated.run_into(entry, &mut env, BUDGET, &mut regs, &mut sink)).ok();
        });
        ratio_log_sum += (e_ns / t_ns).ln();
        per_handler.push((handler, e_ns, t_ns));
    }
    let dispatch_geomean = (ratio_log_sum / per_handler.len() as f64).exp();

    // Group 2: the chip's per-invocation hot path on realistic state.
    let msg = read_miss_msg();
    let entry = program.entry("ni_get").expect("ni_get");
    let mfields = fields_of(&msg);
    let mut mem = ProtoMem::new();
    Directory::init_free_list(&mut mem, DEFAULT_PS_CAPACITY);
    let before_ns = per_iter_ns(60_000, || {
        // Pre-PR shape: symbol-map entry lookup plus allocating run.
        let e = program.entry(black_box("ni_get")).expect("ni_get");
        let mut env = MemEnv {
            mem: &mut mem,
            fields: mfields,
        };
        black_box(emu::run(&program, e, &mut env, BUDGET).expect("clean run"));
    });
    let mut regs = Regs::new();
    let mut sink = EffectSink::new();
    let after_emu_ns = per_iter_ns(60_000, || {
        let mut env = MemEnv {
            mem: &mut mem,
            fields: mfields,
        };
        black_box(
            emu::run_into(&program, entry, &mut env, BUDGET, &mut regs, &mut sink)
                .expect("clean run"),
        );
    });
    let after_translated_ns = per_iter_ns(60_000, || {
        let mut env = MemEnv {
            mem: &mut mem,
            fields: mfields,
        };
        black_box(
            translated
                .run_into(entry, &mut env, BUDGET, &mut regs, &mut sink)
                .expect("clean run"),
        );
    });
    let costs = flash_protocol::CostTable::paper();
    let mut out = Vec::new();
    let native_ns = per_iter_ns(200_000, || {
        out.clear();
        black_box(flash_protocol::native::handle(
            &msg, &mut mem, &costs, &mut out,
        ));
    });

    // Group 3: end-to-end sims/sec, emulator vs translated backend.
    let e2e: Vec<(String, f64, f64)> = [
        ("storm_8p".to_string(), {
            let e = storm_ms(PpBackend::Emulated, 3);
            let t = storm_ms(PpBackend::Translated, 3);
            (e, t)
        }),
        ("FFT_4p_scale64".to_string(), {
            let e = workload_ms("FFT", 4, 64, PpBackend::Emulated, 3);
            let t = workload_ms("FFT", 4, 64, PpBackend::Translated, 3);
            (e, t)
        }),
        ("Barnes_4p_scale16".to_string(), {
            let e = workload_ms("Barnes", 4, 16, PpBackend::Emulated, 3);
            let t = workload_ms("Barnes", 4, 16, PpBackend::Translated, 3);
            (e, t)
        }),
    ]
    .into_iter()
    .map(|(n, (e, t))| (n, e, t))
    .collect();

    let mut s = String::new();
    let _ = writeln!(s, "{{");
    let _ = writeln!(s, "  \"pr\": 6,");
    let _ = writeln!(
        s,
        "  \"description\": \"Translated PP backend (basic-block lowering) vs reference emulator\","
    );
    let _ = writeln!(s, "  \"host\": {{ \"cores\": {cores} }},");
    let _ = writeln!(s, "  \"handler_dispatch_clean_path\": {{");
    for (h, e, t) in &per_handler {
        let _ = writeln!(
            s,
            "    \"{h}\": {{ \"emu_ns\": {e:.1}, \"translated_ns\": {t:.1}, \"speedup\": {:.2} }},",
            e / t
        );
    }
    let _ = writeln!(s, "    \"geomean_speedup\": {dispatch_geomean:.2}");
    let _ = writeln!(s, "  }},");
    let _ = writeln!(s, "  \"chip_hot_path_ni_get\": {{");
    let _ = writeln!(
        s,
        "    \"before_pr6_lookup_plus_alloc_ns\": {before_ns:.1},"
    );
    let _ = writeln!(s, "    \"after_emu_scratch_ns\": {after_emu_ns:.1},");
    let _ = writeln!(
        s,
        "    \"after_translated_scratch_ns\": {after_translated_ns:.1},"
    );
    let _ = writeln!(s, "    \"native_handler_floor_ns\": {native_ns:.1},");
    let _ = writeln!(
        s,
        "    \"speedup_vs_before\": {:.2}",
        before_ns / after_translated_ns
    );
    let _ = writeln!(s, "  }},");
    let _ = writeln!(s, "  \"end_to_end\": {{");
    for (i, (name, e, t)) in e2e.iter().enumerate() {
        let comma = if i + 1 == e2e.len() { "" } else { "," };
        let _ = writeln!(
            s,
            "    \"{name}\": {{ \"emu_ms\": {e:.1}, \"translated_ms\": {t:.1}, \"emu_sims_per_sec\": {:.2}, \"translated_sims_per_sec\": {:.2}, \"speedup\": {:.2} }}{comma}",
            1e3 / e,
            1e3 / t,
            e / t
        );
    }
    let _ = writeln!(s, "  }},");
    let _ = writeln!(s, "  \"target_5x\": false,");
    let _ = writeln!(
        s,
        "  \"repro_all_stdout_byte_identical_across_backends\": true,"
    );
    let _ = writeln!(
        s,
        "  \"notes\": \"The issue targeted 5x sims/sec; measured reality is below. Handler execution (translated, monomorphized block engine with scratch reuse) runs ~1.5-2x the refactored emulator per handler and ~2x the pre-PR chip hot path (which paid a symbol-map lookup and fresh Regs + effect-vector allocations per invocation). End-to-end gains are Amdahl-capped: emu::run is well under half of total runtime even on the handler-saturating storm (the rest is cache, network, directory, and event-queue modelling), so whole-machine speedups land in the few-percent range. Closing the remaining gap to the native floor requires emitting real machine code (JIT); the workspace is dependency-frozen (no cranelift or equivalent), and a step-level interpreter cannot beat ~1-2 ns/step dispatch. Timing is backend-invariant by construction, pinned by tests/checked_stress.rs (pp_backends_are_cycle_identical), the per-handler differential suites, and byte-identical observe/repro stdout in tests/doc_commands.rs. Re-measure: cargo run --release -p flash-bench --bin bench_pr6; per-handler detail: cargo bench -p flash-bench --bench handler_dispatch.\""
    );
    let _ = writeln!(s, "}}");

    std::fs::write(&out_path, &s).expect("write BENCH_PR6.json");
    eprintln!("wrote {out_path}:\n{s}");
}
