//! Regenerates the paper's sec_5_2_mdc artifact. See `flash_bench::tables`.
fn main() {
    flash_bench::tables::sec_5_2_mdc();
}
