//! Regenerates the paper's table_5_3 artifact. See `flash_bench::tables`.
fn main() {
    flash_bench::tables::table_5_3();
}
