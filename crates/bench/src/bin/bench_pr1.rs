//! Measures the run-matrix driver's win over the pre-runner serial path
//! and the timing-wheel event queue's cost profile, then writes the
//! results to `BENCH_PR1.json` (hand-rolled JSON; the container has no
//! serde). Usage:
//!
//! ```text
//! cargo run --release -p flash-bench --bin bench_pr1 [output.json]
//! ```
//!
//! Three passes over the identical `repro_all` job matrix:
//!
//! 1. `before`: `FLASH_NO_MEMO=1`, serial — every artifact re-simulates
//!    its own points, as the code did before the runner existed.
//! 2. `after_serial`: memoized, one worker (`FLASH_JOBS=1` equivalent).
//! 3. `after_parallel`: memoized, default worker count.

use std::fmt::Write as _;
use std::time::Instant;

use flash_bench::runner;
use flash_bench::tables;
use flash_engine::{Cycle, DetRng, EventQueue};

fn ms(from: Instant) -> f64 {
    from.elapsed().as_secs_f64() * 1e3
}

/// Near-future self-scheduling churn over a 256-event population;
/// returns ns/event.
fn eventq_near_future_ns() -> f64 {
    const POP: u64 = 256;
    const OPS: u64 = 200_000;
    let mut q = EventQueue::new();
    for e in 0..POP {
        q.push(Cycle::new(e % 24), e);
    }
    let t0 = Instant::now();
    let mut sum = 0u64;
    for _ in 0..OPS {
        let (t, e) = q.pop().unwrap();
        sum = sum.wrapping_add(e);
        q.push(Cycle::new(t.raw() + 1 + (e * 7) % 24), e + 1);
    }
    std::hint::black_box(sum);
    t0.elapsed().as_secs_f64() * 1e9 / OPS as f64
}

/// Uniform-horizon fill-then-drain (the wheel's worst case); ns/event.
fn eventq_uniform_ns() -> f64 {
    const N: u64 = 200_000;
    let mut rng = DetRng::for_stream(7, 7);
    let times: Vec<u64> = (0..N).map(|_| rng.below(1 << 16)).collect();
    let t0 = Instant::now();
    let mut q = EventQueue::new();
    for (i, &t) in times.iter().enumerate() {
        q.push(Cycle::new(t), i as u64);
    }
    let mut sum = 0u64;
    while let Some((_, e)) = q.pop() {
        sum = sum.wrapping_add(e);
    }
    std::hint::black_box(sum);
    t0.elapsed().as_secs_f64() * 1e9 / (2 * N) as f64
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_PR1.json".into());
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let jobs = tables::repro_all_jobs();
    let listed = jobs.len();

    // Pass 1: pre-runner behaviour — serial, no memoization, no dedup.
    std::env::set_var("FLASH_NO_MEMO", "1");
    let t = Instant::now();
    for job in &jobs {
        job.run();
    }
    let before_ms = ms(t);
    std::env::remove_var("FLASH_NO_MEMO");

    // Pass 2: memoized run matrix, one worker.
    runner::clear_caches();
    let t = Instant::now();
    let unique = runner::prefetch_with_jobs(&jobs, 1);
    let after_serial_ms = ms(t);

    // Pass 3: memoized run matrix, default worker pool.
    runner::clear_caches();
    let workers = runner::jobs();
    let t = Instant::now();
    runner::prefetch_with_jobs(&jobs, workers);
    let after_parallel_ms = ms(t);

    let near_ns = eventq_near_future_ns();
    let uniform_ns = eventq_uniform_ns();

    let mut s = String::new();
    let _ = writeln!(s, "{{");
    let _ = writeln!(s, "  \"pr\": 1,");
    let _ = writeln!(
        s,
        "  \"description\": \"Run-matrix driver + memoized artifacts + timing-wheel event queue\","
    );
    let _ = writeln!(
        s,
        "  \"host\": {{ \"cores\": {cores}, \"workers_used\": {workers} }},"
    );
    let _ = writeln!(s, "  \"run_matrix\": {{");
    let _ = writeln!(s, "    \"listed_jobs\": {listed},");
    let _ = writeln!(s, "    \"unique_points\": {unique},");
    let _ = writeln!(s, "    \"before_no_memo_serial_ms\": {before_ms:.1},");
    let _ = writeln!(s, "    \"after_memo_serial_ms\": {after_serial_ms:.1},");
    let _ = writeln!(s, "    \"after_memo_parallel_ms\": {after_parallel_ms:.1},");
    let _ = writeln!(
        s,
        "    \"speedup_serial\": {:.2},",
        before_ms / after_serial_ms.max(1e-9)
    );
    let _ = writeln!(
        s,
        "    \"speedup_parallel\": {:.2}",
        before_ms / after_parallel_ms.max(1e-9)
    );
    let _ = writeln!(s, "  }},");
    let _ = writeln!(s, "  \"event_queue\": {{");
    let _ = writeln!(s, "    \"near_future_pop_push_ns\": {near_ns:.1},");
    let _ = writeln!(s, "    \"uniform_horizon_per_event_ns\": {uniform_ns:.1}");
    let _ = writeln!(s, "  }},");
    let _ = writeln!(
        s,
        "  \"notes\": \"Passes run the identical repro_all job matrix. 'before' replicates the pre-runner serial path (every artifact re-simulates its own points; FLASH_NO_MEMO=1). On a 1-core host the parallel pass oversubscribes and can regress; the dedup/memoization win is core-count independent. Wheel-vs-heap comparisons: cargo bench -p flash-bench --bench microbench.\""
    );
    let _ = writeln!(s, "}}");

    std::fs::write(&out_path, &s).expect("write BENCH_PR1.json");
    eprintln!("wrote {out_path}:\n{s}");
}
