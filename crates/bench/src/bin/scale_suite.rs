//! PR 7 scale-out benchmark: the sharded conservative-time-window engine
//! on 64/256/1024-node meshes, written to `BENCH_PR7.json` (hand-rolled
//! JSON, BENCH_PR1/PR6 methodology: measure everything in one process,
//! report raw numbers, explain shortfalls in `notes`). Usage:
//!
//! ```text
//! cargo run --release -p flash-bench --bin scale_suite [output.json]
//! ```
//!
//! Each mesh size runs the same uniform neighbor-sharing workload under
//! shard counts 1, 2, and 4. Two things are recorded per point:
//!
//! * wall-clock time and simulated cycles/sec (the honest speedup, or
//!   lack of it — on a single-core host the window barriers make
//!   multi-shard runs *slower*, and the JSON says so), and
//! * the determinism cross-check: `exec_cycles` must be identical across
//!   shard counts or the process exits nonzero.

use std::fmt::Write as _;
use std::time::Instant;

use flash::{Machine, MachineConfig, RunResult};
use flash_cpu::{RefStream, SliceStream, WorkItem};
use flash_engine::{Addr, LINE_BYTES};

const BUDGET: u64 = 2_000_000_000;
const SHARDS: [usize; 3] = [1, 2, 4];

/// Uniform neighbor-sharing traffic: every node works its own home lines
/// and reads its ring neighbor's, producing real mesh traffic (remote
/// gets, forwards, two-sharer invalidations) with bounded per-home load.
fn streams(nodes: u16, lines: u64, rounds: usize) -> Vec<Box<dyn RefStream>> {
    (0..nodes)
        .map(|p| {
            let mut items = Vec::new();
            for _ in 0..rounds {
                for l in 0..lines {
                    let own = Addr::new(((p as u64) << 32) | (l * LINE_BYTES));
                    let neighbor = Addr::new((((p + 1) % nodes) as u64) << 32 | (l * LINE_BYTES));
                    items.push(WorkItem::Read(own));
                    items.push(WorkItem::Write(own));
                    items.push(WorkItem::Read(neighbor));
                    items.push(WorkItem::Busy(8));
                }
            }
            Box::new(SliceStream::new(items)) as Box<dyn RefStream>
        })
        .collect()
}

struct Point {
    shards: usize,
    wall_s: f64,
    exec_cycles: u64,
    wheel_pushes: u64,
    heap_pushes: u64,
}

fn run_point(nodes: u16, shards: usize, lines: u64, rounds: usize) -> Point {
    let mut m = Machine::new(
        MachineConfig::flash(nodes)
            .with_shards(shards)
            .with_cache_bytes(16 << 10),
        streams(nodes, lines, rounds),
    );
    let t0 = Instant::now();
    let RunResult::Completed { exec_cycles } = m.run(BUDGET) else {
        eprintln!("scale_suite: {nodes}-node run with {shards} shard(s) did not complete");
        std::process::exit(1);
    };
    let wall_s = t0.elapsed().as_secs_f64();
    let (wheel_pushes, heap_pushes) = m.queue_push_routing();
    Point {
        shards,
        wall_s,
        exec_cycles,
        wheel_pushes,
        heap_pushes,
    }
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_PR7.json".to_string());
    let host_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"pr\": 7,\n");
    json.push_str("  \"description\": \"Sharded conservative-time-window engine: 64/256/1024-node meshes under 1/2/4 shards, uniform neighbor-sharing workload\",\n");
    let _ = writeln!(json, "  \"host\": {{ \"cores\": {host_cores} }},");
    json.push_str("  \"meshes\": {\n");

    let mut all_ok = true;
    for (mi, &(nodes, lines, rounds)) in [(64u16, 8u64, 64usize), (256, 8, 16), (1024, 4, 8)]
        .iter()
        .enumerate()
    {
        let points: Vec<Point> = SHARDS
            .iter()
            .map(|&s| run_point(nodes, s, lines, rounds))
            .collect();
        let base = &points[0];
        let identical = points.iter().all(|p| p.exec_cycles == base.exec_cycles);
        all_ok &= identical;
        let _ = writeln!(json, "    \"{nodes}\": {{");
        let _ = writeln!(json, "      \"exec_cycles\": {},", base.exec_cycles);
        let _ = writeln!(json, "      \"deterministic_across_shards\": {identical},");
        let _ = writeln!(
            json,
            "      \"wheel_pushes\": {}, \"heap_pushes\": {},",
            base.wheel_pushes, base.heap_pushes
        );
        json.push_str("      \"points\": [\n");
        for (i, p) in points.iter().enumerate() {
            let mcps = p.exec_cycles as f64 / p.wall_s / 1e6;
            let speedup = base.wall_s / p.wall_s;
            let _ = write!(
                json,
                "        {{ \"shards\": {}, \"wall_s\": {:.3}, \"sim_mcycles_per_s\": {:.2}, \"speedup_vs_1_shard\": {:.2} }}",
                p.shards, p.wall_s, mcps, speedup
            );
            json.push_str(if i + 1 < points.len() { ",\n" } else { "\n" });
        }
        json.push_str("      ]\n");
        json.push_str(if mi < 2 { "    },\n" } else { "    }\n" });
    }
    json.push_str("  },\n");
    let _ = writeln!(
        json,
        "  \"notes\": \"exec_cycles are byte-identical across shard counts (the determinism contract); speedups are honest wall-clock ratios on this host. With {host_cores} core(s) available, window-barrier coordination makes multi-shard runs no faster (or slower) than serial — the sharding win requires real cores, the same way BENCH_PR6 reported translated-backend wins only where they were measured.\""
    );
    json.push_str("}\n");

    std::fs::write(&out_path, &json).expect("write BENCH_PR7.json");
    print!("{json}");
    if !all_ok {
        eprintln!("scale_suite: DETERMINISM VIOLATION — exec_cycles differ across shard counts");
        std::process::exit(1);
    }
}
