//! PR 10 open-loop traffic benchmark: load–latency curves for the FLASH
//! machine, written to `BENCH_PR10.json`. Usage:
//!
//! ```text
//! cargo run --release -p flash-bench --bin traffic_suite [output.json]
//! cargo run --release -p flash-bench --bin traffic_suite -- --smoke
//! ```
//!
//! The suite first *measures capacity*: it saturates the machine (mean
//! arrival gap of one cycle, so the admission mailboxes never drain) and
//! takes completed references per cycle as the service rate. It then
//! sweeps offered load from 10% to 120% of that capacity — at least five
//! points, straddling the knee — and reports, per point:
//!
//! * p50/p99/p999/max **service latency per read class** (issue to
//!   retire, from the observer's log-bucketed histograms), and
//! * **admission wait** (arrival to admission, the open-loop queueing
//!   delay) mean/max plus the peak backlog depth.
//!
//! Below the knee the admission wait is flat and small; past it the
//! service percentiles saturate while the admission wait grows without
//! bound — the knee row in the JSON marks where queueing delay first
//! overtakes the p50 service latency (see `EXPERIMENTS.md`).
//!
//! Unlike `BENCH_PR1/PR6/PR7`, this report contains **no wall-clock
//! numbers**: every value is simulated, so the file is byte-identical
//! under any `FLASH_SHARDS` or `FLASH_PP_BACKEND` setting. One load
//! point is additionally re-run under shards 1/2/4 and both PP backends
//! inside the process; the suite exits nonzero if any copy diverges.
//!
//! `--smoke` runs a scaled-down sweep and prints a compact table on
//! stdout (no file), which CI diffs against
//! `tests/golden/traffic_smoke.txt`.

use std::fmt::Write as _;

use flash::{format_table, LatencyReport, Machine, MachineConfig, PpBackend, RunResult};
use flash_traffic::TrafficSpec;

const BUDGET: u64 = 2_000_000_000;
/// Offered load, percent of measured capacity (≥ 5 points, knee inside).
const LOAD_PCT: [u64; 7] = [10, 40, 70, 90, 100, 110, 120];

/// One sweep's fixed shape; only `mean_gap` varies across load points.
#[derive(Clone, Copy)]
struct Shape {
    nodes: u16,
    objects: u64,
    items_per_node: u64,
    seed: u64,
}

const FULL: Shape = Shape {
    nodes: 8,
    objects: 1 << 16, // far beyond cache: nearly every reference misses
    items_per_node: 1_500,
    seed: 10,
};

const SMOKE: Shape = Shape {
    nodes: 4,
    objects: 1 << 14,
    items_per_node: 300,
    seed: 10,
};

fn spec(shape: Shape, mean_gap: u64) -> TrafficSpec {
    TrafficSpec::poisson(
        shape.nodes,
        shape.objects,
        shape.items_per_node,
        mean_gap,
        shape.seed,
    )
}

struct Point {
    pct: u64,
    mean_gap: u64,
    exec_cycles: u64,
    report: LatencyReport,
    /// Aggregated over nodes: (mean admission wait, max wait, peak backlog).
    wait_mean: f64,
    wait_max: u64,
    peak_backlog: u64,
}

fn run_point(shape: Shape, pct: u64, mean_gap: u64, cfg: MachineConfig) -> Point {
    let mut m = Machine::new_open_loop(cfg.with_observe(true), spec(shape, mean_gap).sources());
    let RunResult::Completed { exec_cycles } = m.run(BUDGET) else {
        eprintln!("traffic_suite: load point {pct}% did not complete");
        std::process::exit(1);
    };
    let report = m.latency_report().expect("observer enabled");
    let (mut admitted, mut wait_sum, mut wait_max, mut peak) = (0u64, 0u64, 0u64, 0u64);
    for (_, s) in &report.traffic {
        admitted += s.admitted;
        wait_sum += s.wait_sum;
        wait_max = wait_max.max(s.wait_max);
        peak = peak.max(s.peak_backlog);
    }
    Point {
        pct,
        mean_gap,
        exec_cycles,
        wait_mean: wait_sum as f64 / admitted.max(1) as f64,
        wait_max,
        peak_backlog: peak,
        report,
    }
}

/// Per-node service demand per reference in cycles, measured by
/// saturating the machine: with a one-cycle arrival gap the admission
/// mailboxes never drain, so each node retires references back to back
/// and `exec_cycles / items_per_node` is the cycles one reference costs
/// at full contention. `mean_gap` is a per-node rate, so this is the
/// capacity the sweep's percentages scale.
fn measure_capacity(shape: Shape) -> f64 {
    let mut m = Machine::new_open_loop(MachineConfig::flash(shape.nodes), spec(shape, 1).sources());
    let RunResult::Completed { exec_cycles } = m.run(BUDGET) else {
        eprintln!("traffic_suite: capacity run did not complete");
        std::process::exit(1);
    };
    exec_cycles as f64 / shape.items_per_node as f64
}

fn gap_for(cycles_per_ref: f64, pct: u64) -> u64 {
    ((cycles_per_ref * 100.0 / pct as f64).round() as u64).max(1)
}

/// The "all" row's p50 (service latency proxy for the knee test).
fn p50_all(p: &Point) -> u64 {
    p.report
        .rows
        .iter()
        .find(|r| r.class == "all")
        .map_or(0, |r| r.p50)
}

/// First load point where mean admission wait overtakes p50 service
/// latency — queueing delay stops being a perturbation and becomes the
/// story. `None` if the sweep never crosses (capacity not reached).
fn knee(points: &[Point]) -> Option<u64> {
    points
        .iter()
        .find(|p| p.wait_mean > p50_all(p) as f64)
        .map(|p| p.pct)
}

/// Re-runs one load point under shards 1/2/4 × both PP backends and
/// demands byte-identical latency reports (the determinism contract that
/// makes this file reproducible under any `FLASH_SHARDS` /
/// `FLASH_PP_BACKEND` setting).
fn cross_check(shape: Shape, pct: u64, mean_gap: u64) -> bool {
    let mut copies = Vec::new();
    for shards in [1usize, 2, 4] {
        for backend in [PpBackend::Translated, PpBackend::Emulated] {
            let cfg = MachineConfig::flash(shape.nodes)
                .with_shards(shards)
                .with_pp_backend(backend);
            let p = run_point(shape, pct, mean_gap, cfg);
            copies.push((p.exec_cycles, p.report.to_json()));
        }
    }
    copies.iter().all(|c| *c == copies[0])
}

fn point_json(p: &Point, out: &mut String) {
    let _ = writeln!(out, "      {{");
    let _ = writeln!(
        out,
        "        \"offered_pct\": {}, \"mean_gap\": {}, \"exec_cycles\": {},",
        p.pct, p.mean_gap, p.exec_cycles
    );
    let _ = writeln!(
        out,
        "        \"admission_wait_mean\": {:.2}, \"admission_wait_max\": {}, \"peak_backlog\": {},",
        p.wait_mean, p.wait_max, p.peak_backlog
    );
    let _ = writeln!(out, "        \"classes\": [");
    let rows: Vec<_> = p.report.rows.iter().filter(|r| r.count > 0).collect();
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            out,
            "          {{ \"class\": \"{}\", \"count\": {}, \"p50\": {}, \"p99\": {}, \"p999\": {}, \"max\": {} }}",
            r.class, r.count, r.p50, r.p99, r.p999, r.max
        );
        out.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    let _ = writeln!(out, "        ]");
    let _ = write!(out, "      }}");
}

fn smoke() {
    let shape = SMOKE;
    let cycles_per_ref = measure_capacity(shape);
    let mut rows = Vec::new();
    for pct in [40u64, 90, 120] {
        let gap = gap_for(cycles_per_ref, pct);
        let p = run_point(shape, pct, gap, MachineConfig::flash(shape.nodes));
        rows.push(vec![
            format!("{}%", p.pct),
            p.mean_gap.to_string(),
            p.exec_cycles.to_string(),
            p50_all(&p).to_string(),
            format!("{:.1}", p.wait_mean),
            p.peak_backlog.to_string(),
        ]);
    }
    print!(
        "{}",
        format_table(
            &[
                "load",
                "gap",
                "exec_cycles",
                "p50_all",
                "wait_mean",
                "peak_backlog"
            ],
            &rows,
        )
    );
}

fn main() {
    let arg = std::env::args().nth(1);
    if arg.as_deref() == Some("--smoke") {
        smoke();
        return;
    }
    let out_path = arg.unwrap_or_else(|| "BENCH_PR10.json".to_string());
    let shape = FULL;

    let cycles_per_ref = measure_capacity(shape);
    let points: Vec<Point> = LOAD_PCT
        .iter()
        .map(|&pct| {
            run_point(
                shape,
                pct,
                gap_for(cycles_per_ref, pct),
                MachineConfig::flash(shape.nodes),
            )
        })
        .collect();
    let knee_pct = knee(&points);
    let deterministic = cross_check(shape, 100, gap_for(cycles_per_ref, 100));

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"pr\": 10,\n");
    json.push_str("  \"description\": \"Open-loop load-latency sweep: seeded Poisson arrivals at 10%-120% of measured capacity, service percentiles per read class plus admission-wait accounting\",\n");
    let _ = writeln!(
        json,
        "  \"workload\": {{ \"nodes\": {}, \"objects\": {}, \"items_per_node\": {}, \"seed\": {} }},",
        shape.nodes, shape.objects, shape.items_per_node, shape.seed
    );
    let _ = writeln!(
        json,
        "  \"capacity_cycles_per_ref\": {:.2},",
        cycles_per_ref
    );
    json.push_str("  \"points\": [\n");
    for (i, p) in points.iter().enumerate() {
        point_json(p, &mut json);
        json.push_str(if i + 1 < points.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n");
    match knee_pct {
        Some(pct) => {
            let _ = writeln!(json, "  \"knee_pct\": {pct},");
        }
        None => json.push_str("  \"knee_pct\": null,\n"),
    }
    let _ = writeln!(
        json,
        "  \"deterministic_across_shards_and_backends\": {deterministic},"
    );
    json.push_str("  \"notes\": \"All values are simulated cycles - no wall-clock numbers - so this file is byte-identical under any FLASH_SHARDS or FLASH_PP_BACKEND setting (one load point is re-run under shards 1/2/4 x both backends in-process to prove it). The knee is where mean admission wait first exceeds p50 service latency: below it the open-loop machine tracks the closed-loop latency tables, above it the backlog grows without bound and latency is queueing, not service (see EXPERIMENTS.md).\"\n");
    json.push_str("}\n");

    std::fs::write(&out_path, &json).expect("write BENCH_PR10.json");
    print!("{json}");
    if !deterministic {
        eprintln!(
            "traffic_suite: DETERMINISM VIOLATION - latency reports differ across shards/backends"
        );
        std::process::exit(1);
    }
}
