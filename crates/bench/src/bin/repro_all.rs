//! Regenerates every table and figure in the paper's evaluation in one
//! run. Set `FLASH_FULL=1` for the paper's problem sizes and `FLASH_JOBS=n`
//! to control how many simulations run concurrently (default: all cores).
//!
//! Robustness: each artifact renders under panic isolation, so a single
//! wedged or panicked simulation point degrades the run to a failure
//! summary at the end (and a nonzero exit status) instead of killing the
//! remaining artifacts. On a healthy run the output is byte-identical to
//! the pre-harness binary.
use flash_bench::tables as t;
use std::process::ExitCode;

fn main() -> ExitCode {
    // Simulate the whole deduplicated run matrix up front, in parallel;
    // the table renders below are then pure cache reads. Jobs that fail
    // every attempt are recorded by the supervisor and re-surface as
    // render-time panics in the artifacts that need them.
    t::prefetch_all();
    flash_bench::suite_main(&mut [
        ("table_3_2", Some(Box::new(t::table_3_2))),
        ("table_3_3", Some(Box::new(t::table_3_3))),
        ("table_3_4", Some(Box::new(t::table_3_4))),
        ("fig_4_1", Some(Box::new(t::fig_4_1))),
        ("table_4_1", Some(Box::new(t::table_4_1))),
        ("fig_4_2", Some(Box::new(t::fig_4_2))),
        ("fig_4_3", Some(Box::new(t::fig_4_3))),
        ("table_4_2", Some(Box::new(t::table_4_2))),
        ("sec_4_3_hotspot", Some(Box::new(t::sec_4_3_hotspot))),
        ("sec_4_5_scale64", Some(Box::new(t::sec_4_5_scale64))),
        ("table_5_1", Some(Box::new(t::table_5_1))),
        ("sec_5_2_mdc", Some(Box::new(t::sec_5_2_mdc))),
        ("table_5_2", Some(Box::new(t::table_5_2))),
        ("table_5_3", Some(Box::new(t::table_5_3))),
        ("sec_5_3_ppext", Some(Box::new(t::sec_5_3_ppext))),
        ("ablations", Some(Box::new(t::ablations))),
        ("flexibility_note", Some(Box::new(t::flexibility_note))),
    ])
}
