//! Regenerates every table and figure in the paper's evaluation in one
//! run. Set `FLASH_FULL=1` for the paper's problem sizes and `FLASH_JOBS=n`
//! to control how many simulations run concurrently (default: all cores).
use flash_bench::tables as t;

fn main() {
    // Simulate the whole deduplicated run matrix up front, in parallel;
    // the table renders below are then pure cache reads.
    t::prefetch_all();
    t::table_3_2();
    t::table_3_3();
    t::table_3_4();
    t::fig_4_1();
    t::table_4_1();
    t::fig_4_2();
    t::fig_4_3();
    t::table_4_2();
    t::sec_4_3_hotspot();
    t::sec_4_5_scale64();
    t::table_5_1();
    t::sec_5_2_mdc();
    t::table_5_2();
    t::table_5_3();
    t::sec_5_3_ppext();
    t::ablations();
    t::flexibility_note();
}
