//! Regenerates the paper's sec_4_3_hotspot artifact. See `flash_bench::tables`.
fn main() {
    flash_bench::tables::sec_4_3_hotspot();
}
