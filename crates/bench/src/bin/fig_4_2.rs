//! Regenerates the paper's fig_4_2 artifact. See `flash_bench::tables`.
fn main() {
    flash_bench::tables::fig_4_2();
}
