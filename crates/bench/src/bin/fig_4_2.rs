//! Regenerates the paper's fig_4_2 artifact. See `flash_bench::tables`.
//!
//! Simulation points run under the hardened supervisor; if any point
//! fails every attempt the render is caught at the process boundary,
//! a failure table is printed, and the exit status is nonzero.
use std::process::ExitCode;

fn main() -> ExitCode {
    flash_bench::artifact_main("fig_4_2", flash_bench::tables::fig_4_2)
}
