//! Entry-point harness for the repro binaries.
//!
//! Every `repro_*` binary renders one or more artifacts (tables/figures)
//! whose simulation points run under the hardened supervisor in
//! [`crate::runner`]. The harness completes the robustness story at the
//! process boundary: a panicking render (one of its points failed every
//! attempt, so [`crate::cached_run`] re-hit the panic at render time) is
//! caught, the remaining artifacts still render, and the process exits
//! nonzero with a per-job failure table on stdout.
//!
//! On a fully healthy run nothing extra is printed and the exit status is
//! zero — repro output stays byte-identical to the pre-harness binaries.

use crate::runner::{drain_failures, JobFailure};
use std::process::ExitCode;

/// One artifact that failed to render completely.
#[derive(Debug)]
struct ArtifactFailure {
    name: &'static str,
    error: String,
}

/// Runs one artifact render with panic isolation, returning the panic
/// message on failure.
fn run_artifact(name: &'static str, f: impl FnOnce()) -> Option<ArtifactFailure> {
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(f))
        .err()
        .map(|payload| {
            let msg = if let Some(s) = payload.downcast_ref::<&str>() {
                (*s).to_string()
            } else if let Some(s) = payload.downcast_ref::<String>() {
                s.clone()
            } else {
                "non-string panic payload".to_string()
            };
            ArtifactFailure {
                name,
                error: msg.lines().next().unwrap_or("panic").to_string(),
            }
        })
}

/// Renders the failure tail: the per-job failure table from the
/// supervisor plus any artifacts whose rendering panicked. Returns
/// whether anything failed.
fn report_failures(artifacts: &[ArtifactFailure], jobs: &[JobFailure]) -> bool {
    if artifacts.is_empty() && jobs.is_empty() {
        return false;
    }
    println!();
    println!("== FAILURES ==");
    if !jobs.is_empty() {
        println!("{} simulation job(s) failed:", jobs.len());
        println!("{:<10} job | error", "attempts");
        for j in jobs {
            println!("{:<10} {} | {}", j.attempts, j.key, j.error);
        }
    }
    if !artifacts.is_empty() {
        println!("{} artifact(s) did not render completely:", artifacts.len());
        for a in artifacts {
            println!("  {}: {}", a.name, a.error);
        }
    }
    true
}

/// Main body for a single-artifact repro binary: render with panic
/// isolation, then print the failure tail and pick the exit status.
///
/// # Examples
///
/// ```no_run
/// use std::process::ExitCode;
///
/// fn main() -> ExitCode {
///     flash_bench::artifact_main("table_4_1", flash_bench::tables::table_4_1)
/// }
/// ```
pub fn artifact_main(name: &'static str, f: impl FnOnce()) -> ExitCode {
    if run_suite(&mut [(name, Some(Box::new(f)))]) {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Main body for a multi-artifact repro binary (`repro_all`): every
/// artifact renders even if an earlier one fails; the failure tail lists
/// the supervisor's per-job failures and any incompletely rendered
/// artifacts, and the exit status is nonzero if anything failed.
///
/// Artifacts are `(name, Some(render))` pairs; the `Option` is taken as
/// each artifact runs.
#[allow(clippy::type_complexity)]
pub fn suite_main(artifacts: &mut [(&'static str, Option<Box<dyn FnOnce() + '_>>)]) -> ExitCode {
    if run_suite(artifacts) {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Shared body for [`artifact_main`] / [`suite_main`]: renders every
/// artifact, prints the failure tail, and returns whether anything
/// failed (testable without comparing `ExitCode`s).
#[allow(clippy::type_complexity)]
fn run_suite(artifacts: &mut [(&'static str, Option<Box<dyn FnOnce() + '_>>)]) -> bool {
    let mut failed: Vec<ArtifactFailure> = Vec::new();
    for (name, f) in artifacts.iter_mut() {
        let f = f.take().expect("artifact taken twice");
        if let Some(fail) = run_artifact(name, f) {
            failed.push(fail);
        }
    }
    let jobs = drain_failures();
    report_failures(&failed, &jobs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn healthy_artifact_exits_success() {
        assert!(!run_suite(&mut [("noop", Some(Box::new(|| {})))]));
    }

    #[test]
    fn panicking_artifact_exits_failure_but_runs_the_rest() {
        use std::sync::atomic::{AtomicBool, Ordering};
        static RAN: AtomicBool = AtomicBool::new(false);
        let failed = run_suite(&mut [
            ("boom", Some(Box::new(|| panic!("render failed")))),
            (
                "after",
                Some(Box::new(|| RAN.store(true, Ordering::SeqCst))),
            ),
        ]);
        assert!(failed);
        assert!(RAN.load(Ordering::SeqCst), "later artifacts must still run");
    }
}
