//! Shared experiment drivers for the table/figure regeneration binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the
//! paper's evaluation; this library holds the common machinery: scale
//! selection, the Table 3.3 latency measurement harness, and the standard
//! application suite runner.
//!
//! Scale control: the binaries default to reduced problem sizes
//! (`scale = 4`) so the whole suite regenerates in seconds. Set
//! `FLASH_FULL=1` for the paper's Table 3.5 sizes, or `FLASH_SCALE=n`
//! for a specific divisor.

pub mod harness;
pub mod isolate;
pub mod runner;
pub mod tables;

pub use harness::{artifact_main, suite_main};
pub use runner::{
    cached_latency, cached_run, clear_caches, drain_failures, prefetch, prefetch_supervised,
    prefetch_with_jobs, Job, JobFailure, RunSpec, SuperviseOptions, WorkSpec,
};

use flash::config::node_addr;
use flash::{
    ControllerKind, LatencyTable, Machine, MachineConfig, MachineReport, ObserveReport, RunResult,
};
use flash_cpu::{RefStream, SliceStream, WorkItem};
use flash_engine::{NodeId, SEGMENT_COUNT};
use flash_workloads::{by_name, Workload};

/// Problem-size divisor selected by environment variables.
pub fn scale() -> u32 {
    if std::env::var("FLASH_FULL").is_ok_and(|v| v == "1") {
        return 1;
    }
    std::env::var("FLASH_SCALE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4)
}

/// Processor count for the parallel applications (paper: 16).
pub fn parallel_procs() -> u16 {
    std::env::var("FLASH_PROCS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(16)
}

/// Processor count for the OS workload (paper: 8).
pub fn os_procs() -> u16 {
    parallel_procs().min(8)
}

/// The applications run at each cache size (paper §3.4: LU and OS are not
/// simulated at the small sizes, Barnes not at 4 KB; Ocean uses 16 KB in
/// place of 4 KB).
pub fn apps_at(cache_bytes: u64) -> Vec<&'static str> {
    match cache_bytes {
        b if b >= (1 << 20) => vec!["Barnes", "FFT", "LU", "MP3D", "Ocean", "Radix"],
        b if b >= (64 << 10) => vec!["Barnes", "FFT", "MP3D", "Ocean", "Radix"],
        _ => vec!["FFT", "MP3D", "Ocean", "Radix"],
    }
}

/// Effective cache size for an app at the "4 KB" level (Ocean: 16 KB,
/// paper footnote 2).
pub fn small_cache_for(app: &str, cache_bytes: u64) -> u64 {
    if app == "Ocean" && cache_bytes < (16 << 10) {
        16 << 10
    } else {
        cache_bytes
    }
}

/// Builds the named workload at the current scale.
pub fn workload(app: &str) -> Box<dyn Workload> {
    let procs = if app == "OS" {
        os_procs()
    } else {
        parallel_procs()
    };
    by_name(app, procs, scale())
}

/// The run-matrix point for one app on one controller kind at a cache
/// size, capturing the current scale/processor environment.
pub fn run_spec(app: &'static str, kind: ControllerKind, cache_bytes: u64) -> RunSpec {
    let procs = if app == "OS" {
        os_procs()
    } else {
        parallel_procs()
    };
    RunSpec {
        work: WorkSpec::Named {
            app,
            procs,
            scale: scale(),
        },
        cfg: base_cfg(kind, procs).with_cache_bytes(small_cache_for(app, cache_bytes)),
    }
}

/// Runs one app on one controller kind at a cache size (memoized: repeat
/// calls with the same point return the cached report).
pub fn run_app(app: &'static str, kind: ControllerKind, cache_bytes: u64) -> MachineReport {
    cached_run(&run_spec(app, kind, cache_bytes))
}

/// Standard configuration for a controller kind.
pub fn base_cfg(kind: ControllerKind, procs: u16) -> MachineConfig {
    match kind {
        ControllerKind::FlashEmulated => MachineConfig::flash(procs),
        ControllerKind::FlashCostTable => MachineConfig::flash_cost_table(procs),
        ControllerKind::Ideal => MachineConfig::ideal(procs),
    }
}

/// Formats a fraction as a percentage string.
pub fn pct(f: f64) -> String {
    format!("{:.1}%", f * 100.0)
}

// ====================================================================
// Table 3.3 measurement harness
// ====================================================================

/// One read-miss class scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MissClass {
    /// Local read, clean at home.
    LocalClean,
    /// Local read, dirty in a remote cache.
    LocalDirtyRemote,
    /// Remote read, clean at home.
    RemoteClean,
    /// Remote read, dirty in the home node's cache.
    RemoteDirtyHome,
    /// Remote read, dirty in a third node's cache.
    RemoteDirtyRemote,
}

impl MissClass {
    /// All classes in Table 3.3 order.
    pub const ALL: [MissClass; 5] = [
        MissClass::LocalClean,
        MissClass::LocalDirtyRemote,
        MissClass::RemoteClean,
        MissClass::RemoteDirtyHome,
        MissClass::RemoteDirtyRemote,
    ];

    /// Table 3.3 row label.
    pub fn label(self) -> &'static str {
        match self {
            MissClass::LocalClean => "Local read miss, clean in local memory",
            MissClass::LocalDirtyRemote => "Local read miss, dirty in remote cache",
            MissClass::RemoteClean => "Remote read miss, clean in home memory",
            MissClass::RemoteDirtyHome => "Remote read miss, dirty in home cache",
            MissClass::RemoteDirtyRemote => "Remote read miss, dirty in 3rd node",
        }
    }

    /// `(home, writer)` for the measured line, from the reader's (node 0)
    /// perspective. `writer == home` means the home's own processor
    /// dirties it; `None` leaves the line clean.
    fn roles(self) -> (u16, Option<u16>) {
        match self {
            MissClass::LocalClean => (0, None),
            MissClass::LocalDirtyRemote => (0, Some(1)),
            MissClass::RemoteClean => (1, None),
            MissClass::RemoteDirtyHome => (1, Some(1)),
            MissClass::RemoteDirtyRemote => (1, Some(2)),
        }
    }

    /// Index of this class's row in an [`ObserveReport`] (the
    /// `flash::observe::ROW_NAMES` order matches Table 3.3 order).
    pub fn row(self) -> usize {
        match self {
            MissClass::LocalClean => 0,
            MissClass::LocalDirtyRemote => 1,
            MissClass::RemoteClean => 2,
            MissClass::RemoteDirtyHome => 3,
            MissClass::RemoteDirtyRemote => 4,
        }
    }
}

/// Measures the no-contention read-miss latency of one class (memoized:
/// the ten `(kind, class)` points are shared by Table 3.3, Table 4.1 and
/// Table 4.2).
pub fn measure_class(kind: ControllerKind, class: MissClass) -> f64 {
    cached_latency(kind, class)
}

/// Measures the no-contention read-miss latency of one class on a 3-node
/// machine, isolating warm-path latency by differencing against a warm-up
/// transaction of the same class on an adjacent line (same MDC header
/// line, same handlers). Uncached; use [`measure_class`].
pub fn measure_class_uncached(kind: ControllerKind, class: MissClass) -> f64 {
    let (t, _) = class_scenario(kind, class, true, false);
    let (f, _) = class_scenario(kind, class, false, false);
    t - f
}

/// Runs one Table 3.3 scenario (optionally without the measured read,
/// optionally observed) and returns the reader's read-stall cycles plus
/// the cycle-attribution report when `observe` is set.
fn class_scenario(
    kind: ControllerKind,
    class: MissClass,
    measured: bool,
    observe: bool,
) -> (f64, Option<ObserveReport>) {
    let (home, writer) = class.roles();
    let line_a = node_addr(NodeId(home), 0x2000);
    let line_b = node_addr(NodeId(home), 0x2080); // adjacent: shares the MDC line
    let reader_items = |measured: bool| {
        let mut v = Vec::new();
        v.push(WorkItem::Barrier); // writers dirty the lines first
        v.push(WorkItem::Read(line_b)); // warm-up transaction
        v.push(WorkItem::Busy(4000));
        if measured {
            v.push(WorkItem::Read(line_a));
        }
        v
    };
    let writer_items = || {
        let mut v = Vec::new();
        if let Some(_w) = writer {
            v.push(WorkItem::Write(line_b));
            v.push(WorkItem::Write(line_a));
        }
        v.push(WorkItem::Barrier);
        v.push(WorkItem::Busy(4));
        v
    };
    let mut cfg = base_cfg(kind, 3).with_observe(observe);
    // Pin the paper's 16-node average network transit for
    // comparability with Table 3.3.
    cfg.net.transit_override = Some(22);
    let streams: Vec<Box<dyn RefStream>> = (0..3u16)
        .map(|n| {
            let items = if n == 0 {
                reader_items(measured)
            } else if Some(n) == writer {
                writer_items()
            } else {
                vec![WorkItem::Barrier, WorkItem::Busy(4)]
            };
            Box::new(SliceStream::new(items)) as Box<dyn RefStream>
        })
        .collect();
    let mut m = Machine::new(cfg, streams);
    match m.run(10_000_000) {
        RunResult::Completed { .. } => {}
        RunResult::Wedged { report } => {
            panic!("latency scenario wedged for {class:?}\n{report}")
        }
        other => panic!(
            "latency scenario stuck for {class:?}\n{}",
            m.diagnose(&format!("{other:?}"))
        ),
    }
    (
        m.procs()[0].stats().read_stall_q as f64 / 4.0,
        m.observe_report(),
    )
}

/// Decomposes one Table 3.3 class latency into per-[`flash_engine::Segment`]
/// cycles, by differencing the observed class row between the measured run
/// and the warm-up-only run (the same differencing
/// [`measure_class_uncached`] applies to the stall counter, so both
/// isolate exactly the measured transaction). Returns the segment cycles
/// and the stall-counter latency the segments must sum to.
pub fn measure_class_breakdown(
    kind: ControllerKind,
    class: MissClass,
) -> ([u64; SEGMENT_COUNT], f64) {
    let (stall_t, rep_t) = class_scenario(kind, class, true, true);
    let (stall_f, rep_f) = class_scenario(kind, class, false, true);
    let (rep_t, rep_f) = (rep_t.expect("observed"), rep_f.expect("observed"));
    assert_eq!(rep_t.sum_mismatches, 0, "attribution drift for {class:?}");
    assert_eq!(rep_f.sum_mismatches, 0, "attribution drift for {class:?}");
    let (a, b) = (&rep_t.rows[class.row()], &rep_f.rows[class.row()]);
    assert_eq!(
        a.count,
        b.count + 1,
        "measured run must add exactly one {class:?} request"
    );
    let mut segs = [0u64; SEGMENT_COUNT];
    for (i, s) in segs.iter_mut().enumerate() {
        *s = a.segs[i] - b.segs[i];
    }
    (segs, stall_t - stall_f)
}

/// The full cycle-attribution report of the measured Table 3.3 scenario
/// for one class (the run-matrix driver exports this as
/// `observe_<job>.json` when `FLASH_OBSERVE_OUT` is set).
pub fn observe_class_report(kind: ControllerKind, class: MissClass) -> ObserveReport {
    class_scenario(kind, class, true, true).1.expect("observed")
}

/// The ten Table 3.3 measurement jobs (both controller kinds, all five
/// miss classes) — prefetch these before calling
/// [`measure_latency_table`].
pub fn latency_jobs() -> Vec<Job> {
    let mut v = Vec::new();
    for kind in [ControllerKind::FlashEmulated, ControllerKind::Ideal] {
        for class in MissClass::ALL {
            v.push(Job::Latency(kind, class));
        }
    }
    v
}

/// Measures the full Table 3.3 latency column for a controller kind.
pub fn measure_latency_table(kind: ControllerKind) -> LatencyTable {
    LatencyTable {
        local_clean: measure_class(kind, MissClass::LocalClean),
        local_dirty_remote: measure_class(kind, MissClass::LocalDirtyRemote),
        remote_clean: measure_class(kind, MissClass::RemoteClean),
        remote_dirty_home: measure_class(kind, MissClass::RemoteDirtyHome),
        remote_dirty_remote: measure_class(kind, MissClass::RemoteDirtyRemote),
    }
}

/// Uniprocessor radix stressing the MDC: a large data set streamed with a
/// stride wide enough to defeat the MDC's 2 KB-per-line reach (paper
/// §5.2's 16 MB, radix-2048 experiment).
pub fn mdc_stress_stream(data_mb: u64, scale: u32) -> Vec<Box<dyn RefStream>> {
    let lines = (data_mb << 20) / 128 / scale as u64;
    let buckets = 2048u64;
    let mut items = Vec::new();
    // Sequential histogram read of the keys.
    let mut l = 0;
    while l < lines {
        items.push(WorkItem::Busy(8));
        items.push(WorkItem::Read(node_addr(NodeId(0), l * 128)));
        l += 1;
    }
    // Permutation writes with bucket stride > MDC reach.
    let region = node_addr(NodeId(0), lines * 128 + 4096);
    let mut rng = flash_engine::DetRng::for_stream(0x5d2, 0);
    for _ in 0..lines {
        items.push(WorkItem::Busy(10));
        let b = rng.below(buckets);
        let o = rng.below((lines / buckets).max(1));
        items.push(WorkItem::Write(
            region.offset((b * (lines / buckets).max(1) + o) * 128),
        ));
    }
    vec![Box::new(SliceStream::new(items))]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_table_close_to_paper_flash() {
        let measured = measure_latency_table(ControllerKind::FlashEmulated);
        let paper = LatencyTable::paper_flash();
        for (m, p) in measured.as_array().iter().zip(paper.as_array()) {
            let rel = (m - p).abs() / p;
            assert!(
                rel < 0.25,
                "measured {m:.0} vs paper {p:.0} ({:.0}% off)",
                rel * 100.0
            );
        }
    }

    #[test]
    fn latency_table_close_to_paper_ideal() {
        let measured = measure_latency_table(ControllerKind::Ideal);
        let paper = LatencyTable::paper_ideal();
        for (m, p) in measured.as_array().iter().zip(paper.as_array()) {
            let rel = (m - p).abs() / p;
            assert!(
                rel < 0.25,
                "measured {m:.0} vs paper {p:.0} ({:.0}% off)",
                rel * 100.0
            );
        }
    }

    #[test]
    fn flash_latencies_exceed_ideal_per_class() {
        let f = measure_latency_table(ControllerKind::FlashEmulated);
        let i = measure_latency_table(ControllerKind::Ideal);
        for (a, b) in f.as_array().iter().zip(i.as_array()) {
            assert!(a > &b, "FLASH {a:.0} vs ideal {b:.0}");
        }
    }

    /// The acceptance bar for the observability layer: for every
    /// controller kind and Table 3.3 class, the observed per-segment
    /// breakdown sums to the stall-counter latency within one cycle.
    #[test]
    fn breakdowns_sum_to_measured_latencies() {
        for kind in [ControllerKind::FlashEmulated, ControllerKind::Ideal] {
            for class in MissClass::ALL {
                let (segs, stall) = measure_class_breakdown(kind, class);
                let sum: u64 = segs.iter().sum();
                assert!(
                    (sum as f64 - stall).abs() <= 1.0,
                    "{kind:?}/{class:?}: segments {segs:?} sum to {sum} \
                     but the stall counter measured {stall}"
                );
            }
        }
    }

    /// The observed breakdown explains *why* FLASH trails the ideal
    /// machine per class: the entire gap is controller-side (handler
    /// occupancy, inbox wait, memory serialization), never the mesh.
    #[test]
    fn flash_gap_is_controller_side() {
        use flash_engine::Segment;
        for class in [MissClass::RemoteClean, MissClass::RemoteDirtyRemote] {
            let (f, _) = measure_class_breakdown(ControllerKind::FlashEmulated, class);
            let (i, _) = measure_class_breakdown(ControllerKind::Ideal, class);
            assert_eq!(
                f[Segment::Mesh.index()],
                i[Segment::Mesh.index()],
                "{class:?}: the mesh does not know the controller kind"
            );
            assert!(
                f[Segment::Handler.index()] > 0,
                "{class:?}: FLASH must charge handler occupancy"
            );
            assert_eq!(
                i[Segment::Handler.index()],
                0,
                "{class:?}: the ideal machine handles in zero time"
            );
        }
    }

    #[test]
    fn apps_at_matches_paper_footnotes() {
        assert_eq!(apps_at(1 << 20).len(), 6);
        assert!(!apps_at(64 << 10).contains(&"LU"));
        assert!(!apps_at(4 << 10).contains(&"Barnes"));
        assert_eq!(small_cache_for("Ocean", 4 << 10), 16 << 10);
        assert_eq!(small_cache_for("FFT", 4 << 10), 4 << 10);
    }
}
