//! Single-call panic and wall-clock isolation.
//!
//! The run-matrix supervisor in [`crate::runner`] hardens whole job
//! *lists*; the delta debugger in `flash-minimize` needs the same
//! protection for one candidate evaluation at a time — a shrunk candidate
//! may legitimately wedge forever (that is often exactly the failure being
//! minimized, with the watchdog shrunk too far to catch it) or panic
//! inside the simulator, and neither may take the search down. [`call`]
//! reuses the supervisor's idiom: the closure runs `catch_unwind`-wrapped
//! on a *detached* worker thread whose result comes back over a channel
//! with `recv_timeout`; an overdue worker is abandoned, never joined, so
//! a wedged candidate costs the search one timeout, not a hang.

use std::sync::mpsc;
use std::time::Duration;

/// Why an isolated call produced no value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IsolateError {
    /// The closure panicked; the payload's first line.
    Panicked(String),
    /// The closure exceeded the wall-clock limit and its thread was
    /// abandoned (it may still be running; the process exits with it).
    TimedOut(Duration),
}

impl std::fmt::Display for IsolateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IsolateError::Panicked(msg) => write!(f, "panicked: {msg}"),
            IsolateError::TimedOut(limit) => write!(f, "timed out (> {limit:?} wall clock)"),
        }
    }
}

fn first_line_of(payload: Box<dyn std::any::Any + Send>) -> String {
    let msg = if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    };
    msg.lines().next().unwrap_or("panic").to_string()
}

/// Runs `f` with panic isolation and an optional wall-clock limit.
///
/// With `timeout = None` the closure runs inline on the caller's thread
/// (panic-isolated only — an unbounded closure can still hang, so searches
/// over potentially-wedging candidates should pass a limit or rely on the
/// simulation's own watchdog/budget). With a limit, the closure runs on a
/// detached thread: if the deadline passes, the thread is abandoned and
/// [`IsolateError::TimedOut`] returned.
///
/// # Examples
///
/// ```
/// use flash_bench::isolate::{call, IsolateError};
/// use std::time::Duration;
///
/// assert_eq!(call(None, || 2 + 2), Ok(4));
/// assert!(matches!(
///     call(None, || -> u32 { panic!("boom\nwith detail") }),
///     Err(IsolateError::Panicked(ref m)) if m == "boom"
/// ));
/// let r = call(Some(Duration::from_millis(20)), || {
///     std::thread::sleep(Duration::from_secs(600));
/// });
/// assert!(matches!(r, Err(IsolateError::TimedOut(_))));
/// ```
pub fn call<T, F>(timeout: Option<Duration>, f: F) -> Result<T, IsolateError>
where
    T: Send + 'static,
    F: FnOnce() -> T + Send + 'static,
{
    let Some(limit) = timeout else {
        return std::panic::catch_unwind(std::panic::AssertUnwindSafe(f))
            .map_err(|p| IsolateError::Panicked(first_line_of(p)));
    };
    let (tx, rx) = mpsc::channel();
    std::thread::spawn(move || {
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f))
            .map_err(|p| IsolateError::Panicked(first_line_of(p)));
        let _ = tx.send(result);
    });
    match rx.recv_timeout(limit) {
        Ok(result) => result,
        Err(mpsc::RecvTimeoutError::Timeout) => Err(IsolateError::TimedOut(limit)),
        // The worker dropped `tx` without sending: only possible if the
        // send itself failed catastrophically; report as a panic.
        Err(mpsc::RecvTimeoutError::Disconnected) => {
            Err(IsolateError::Panicked("worker vanished".into()))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_passes_through() {
        assert_eq!(call(None, || "ok".to_string()), Ok("ok".to_string()));
        assert_eq!(
            call(Some(Duration::from_secs(5)), || vec![1u64, 2]),
            Ok(vec![1, 2])
        );
    }

    #[test]
    fn panic_is_contained_and_first_line_reported() {
        let r: Result<(), _> = call(Some(Duration::from_secs(5)), || {
            panic!("candidate wedged at cycle 12345\nnode0: wait-reply");
        });
        assert_eq!(
            r,
            Err(IsolateError::Panicked(
                "candidate wedged at cycle 12345".into()
            ))
        );
    }

    #[test]
    fn overdue_worker_is_abandoned() {
        let limit = Duration::from_millis(30);
        let r: Result<(), _> = call(Some(limit), || loop {
            std::thread::sleep(Duration::from_millis(500));
        });
        assert_eq!(r, Err(IsolateError::TimedOut(limit)));
    }

    #[test]
    fn display_forms_are_informative() {
        assert!(IsolateError::Panicked("x".into()).to_string().contains("x"));
        assert!(IsolateError::TimedOut(Duration::from_secs(1))
            .to_string()
            .contains("timed out"));
    }
}
