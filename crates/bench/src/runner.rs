//! Parallel run-matrix driver with memoized simulation results.
//!
//! The table/figure regeneration functions in [`crate::tables`] share many
//! simulation points: the Figure 4.x FLASH runs are the same machine
//! configurations that Table 4.x, Table 5.1 (speculation on) and Table 5.2
//! re-measure, and the Table 3.3 latency harness is consulted by three
//! artifacts. This module enumerates every `(workload, config)` point a set
//! of artifacts needs as a [`Job`], deduplicates the list, executes it
//! across `std::thread::scope` workers, and memoizes each
//! [`MachineReport`] in a process-wide cache so every unique point
//! simulates exactly once per invocation.
//!
//! Determinism: each simulation owns its machine, its workload streams and
//! its [`flash_engine::DetRng`] instances; no simulation state is shared
//! between worker threads, so a point's report is bit-identical whether it
//! was computed inline, by one worker, or by eight. Rendering stays on the
//! caller's thread and reads only the cache, so table output is
//! byte-identical to the serial path for any worker count.
//!
//! Worker count: `FLASH_JOBS=n` forces `n` workers; the default is
//! [`std::thread::available_parallelism`]. `FLASH_JOBS=1` runs every job
//! inline on the caller's thread (no threads are spawned).

use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::mpsc::{self, RecvTimeoutError};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use std::time::{Duration, Instant};

use flash::{ControllerKind, Machine, MachineConfig, MachineReport, RunResult};
use flash_workloads::{budget, by_name, run_workload, Fft, OsWorkload};

use crate::{mdc_stress_stream, MissClass};

/// Locks a mutex, tolerating poisoning: a panicking job (isolated by the
/// supervisor's `catch_unwind`) must not take the whole memo cache down
/// with it. Cache values are only written complete, so the inner state is
/// always usable.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// What to simulate: a workload family plus the parameters that pick one
/// member. Kept `Copy` + `Debug` so a spec both reconstructs the workload
/// and (via its `Debug` rendering) keys the memo cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkSpec {
    /// A named application from [`flash_workloads::by_name`].
    Named {
        /// Application name ("FFT", "Ocean", "OS", ...).
        app: &'static str,
        /// Processor count.
        procs: u16,
        /// Problem-size divisor.
        scale: u32,
    },
    /// FFT with an explicit matrix dimension (the §4.5 scaled-data run).
    FftDim {
        /// Processor count.
        procs: u16,
        /// Matrix dimension.
        dim: u64,
    },
    /// The original first-node IRIX port of the OS workload (§4.3).
    OsOriginalPort {
        /// Processor count.
        procs: u16,
        /// Problem-size divisor.
        scale: u32,
    },
    /// The §5.2 uniprocessor MDC stress stream.
    MdcStress {
        /// Data-set size in MB before scaling.
        data_mb: u64,
        /// Problem-size divisor.
        scale: u32,
    },
}

impl WorkSpec {
    /// Runs this workload under `cfg` to completion.
    fn execute(&self, cfg: &MachineConfig) -> MachineReport {
        match *self {
            WorkSpec::Named { app, procs, scale } => {
                let w = by_name(app, procs, scale);
                run_workload(cfg, w.as_ref())
            }
            WorkSpec::FftDim { procs, dim } => run_workload(cfg, &Fft::with_dim(procs, dim)),
            WorkSpec::OsOriginalPort { procs, scale } => {
                run_workload(cfg, &OsWorkload::scaled(procs, scale).original_port())
            }
            WorkSpec::MdcStress { data_mb, scale } => {
                let mut m = Machine::new(cfg.clone(), mdc_stress_stream(data_mb, scale));
                match m.run(budget()) {
                    RunResult::Completed { .. } => MachineReport::from_machine(&m),
                    RunResult::Wedged { report } => panic!("mdc stress wedged\n{report}"),
                    other => panic!(
                        "mdc stress stuck under {cfg:?}\n{}",
                        m.diagnose(&format!("{other:?}"))
                    ),
                }
            }
        }
    }
}

/// One point of the run matrix: a workload and the exact machine
/// configuration to run it under.
#[derive(Debug, Clone)]
pub struct RunSpec {
    /// Workload selector.
    pub work: WorkSpec,
    /// Machine configuration (every knob participates in the memo key).
    pub cfg: MachineConfig,
}

impl RunSpec {
    /// Memo-cache key. `MachineConfig` derives `Debug` over every field,
    /// so two specs share a key exactly when they would simulate the same
    /// deterministic machine.
    pub fn key(&self) -> String {
        format!("{:?}|{:?}", self.work, self.cfg)
    }
}

/// One unit of prefetchable work.
///
/// The size skew between variants is deliberate: a job list holds at
/// most a few hundred entries, so boxing `RunSpec` would buy nothing.
#[derive(Debug, Clone)]
#[allow(clippy::large_enum_variant)]
pub enum Job {
    /// A full workload simulation producing a [`MachineReport`].
    Run(RunSpec),
    /// One Table 3.3 no-contention latency measurement.
    Latency(ControllerKind, MissClass),
}

impl Job {
    fn key(&self) -> String {
        match self {
            Job::Run(s) => s.key(),
            Job::Latency(kind, class) => format!("lat|{kind:?}|{class:?}"),
        }
    }

    fn is_cached(&self, key: &str) -> bool {
        match self {
            Job::Run(_) => lock(run_cache()).contains_key(key),
            Job::Latency(..) => lock(lat_cache()).contains_key(key),
        }
    }

    /// Executes this job through the memo cache (or uncached when
    /// `FLASH_NO_MEMO=1`), discarding the result — it is retrievable via
    /// [`cached_run`] / [`cached_latency`].
    pub fn run(&self) {
        match self {
            Job::Run(spec) => {
                cached_run(spec);
            }
            Job::Latency(kind, class) => {
                cached_latency(*kind, *class);
            }
        }
    }
}

fn run_cache() -> &'static Mutex<HashMap<String, MachineReport>> {
    static CACHE: OnceLock<Mutex<HashMap<String, MachineReport>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

fn lat_cache() -> &'static Mutex<HashMap<String, f64>> {
    static CACHE: OnceLock<Mutex<HashMap<String, f64>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// `FLASH_OBSERVE_OUT=<dir>` turns on observed mode for every run-matrix
/// job and exports each job's cycle-attribution report as
/// `<dir>/observe_<job>.json` (the `flash-observe-v1` schema of
/// `METRICS.md`). Observation is timing-invisible, so memoized reports and
/// rendered tables are unchanged; only the JSON files are added.
fn observe_out_dir() -> Option<&'static str> {
    static DIR: OnceLock<Option<String>> = OnceLock::new();
    DIR.get_or_init(|| {
        std::env::var("FLASH_OBSERVE_OUT")
            .ok()
            .filter(|s| !s.is_empty())
    })
    .as_deref()
}

/// 64-bit FNV-1a, for collision-proofing the export file names.
fn fnv64(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// `observe_<job>.json` file name for a memo key: a readable sanitized
/// prefix plus the key's FNV-1a hash (distinct keys can sanitize alike).
fn observe_file_name(key: &str) -> String {
    let mut slug: String = key
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect();
    slug.truncate(96);
    while slug.contains("__") {
        slug = slug.replace("__", "_");
    }
    format!(
        "observe_{}_{:016x}.json",
        slug.trim_matches('_'),
        fnv64(key)
    )
}

/// Best-effort export of one job's attribution report (a missing report
/// or an unwritable directory must not fail the simulation that produced
/// the tables).
fn export_observe(key: &str, report: Option<&flash::ObserveReport>) {
    let Some(dir) = observe_out_dir() else { return };
    let Some(report) = report else { return };
    let path = std::path::Path::new(dir).join(observe_file_name(key));
    let write = || -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        std::fs::write(&path, report.to_json())
    };
    if let Err(e) = write() {
        eprintln!("[runner] observe export failed for {}: {e}", path.display());
    }
}

/// `FLASH_NO_MEMO=1` disables the memo cache and prefetch deduplication,
/// recreating the pre-runner behaviour where every artifact re-simulated
/// its own points. A measurement aid for quantifying the dedup win
/// (`benches/`, BENCH_PR1.json); not intended for normal use.
fn memo_disabled() -> bool {
    std::env::var("FLASH_NO_MEMO").is_ok_and(|v| v == "1")
}

/// Worker count: `FLASH_JOBS` if set, otherwise the machine's available
/// parallelism (at least 1).
pub fn jobs() -> usize {
    if let Some(n) = std::env::var("FLASH_JOBS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
    {
        return n.max(1);
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Empties both memo caches (used by tests that compare cold serial and
/// cold parallel execution of the same matrix).
pub fn clear_caches() {
    lock(run_cache()).clear();
    lock(lat_cache()).clear();
}

/// Number of memoized simulation reports currently held.
pub fn cached_run_count() -> usize {
    lock(run_cache()).len()
}

/// Runs (or recalls) one simulation point. The lock is never held across
/// the simulation itself, so concurrent callers of *distinct* points
/// proceed in parallel; concurrent callers of the *same* point both
/// compute it and the first insertion wins — harmless, because the
/// simulation is deterministic and both results are identical.
pub fn cached_run(spec: &RunSpec) -> MachineReport {
    if memo_disabled() {
        return spec.work.execute(&spec.cfg);
    }
    let key = spec.key();
    if let Some(r) = lock(run_cache()).get(&key) {
        return r.clone();
    }
    maybe_inject_panic(&key);
    maybe_inject_hang(&key);
    // With FLASH_OBSERVE_OUT set, the job executes under observation (the
    // memo key stays the caller's spec: observation is timing-invisible,
    // so the report's table-facing fields are identical either way) and
    // its attribution report is exported.
    let report = if observe_out_dir().is_some() && !spec.cfg.observe {
        let observed = spec.work.execute(&spec.cfg.clone().with_observe(true));
        export_observe(&key, observed.observe.as_ref());
        observed
    } else {
        let report = spec.work.execute(&spec.cfg);
        export_observe(&key, report.observe.as_ref());
        report
    };
    lock(run_cache()).entry(key).or_insert(report).clone()
}

/// Runs (or recalls) one Table 3.3 latency measurement.
pub fn cached_latency(kind: ControllerKind, class: MissClass) -> f64 {
    if memo_disabled() {
        return crate::measure_class_uncached(kind, class);
    }
    let key = Job::Latency(kind, class).key();
    if let Some(v) = lock(lat_cache()).get(&key) {
        return *v;
    }
    maybe_inject_panic(&key);
    maybe_inject_hang(&key);
    let v = crate::measure_class_uncached(kind, class);
    if observe_out_dir().is_some() {
        export_observe(&key, Some(&crate::observe_class_report(kind, class)));
    }
    *lock(lat_cache()).entry(key).or_insert(v)
}

/// Supervisor self-test hook: `FLASH_INJECT_PANIC=<substring>` panics any
/// job whose memo key contains the substring, *after* the cache miss is
/// established (so only a real simulation attempt trips it). Used by the
/// panic-isolation tests; unset in normal operation.
fn maybe_inject_panic(key: &str) {
    if let Ok(pat) = std::env::var("FLASH_INJECT_PANIC") {
        if !pat.is_empty() && key.contains(&pat) {
            panic!("FLASH_INJECT_PANIC matched `{key}`");
        }
    }
}

/// Supervisor self-test hook: `FLASH_INJECT_HANG=<substring>` stalls any
/// job whose memo key contains the substring for an hour — forever, on
/// test timescales — modelling a runaway simulation that ignores its
/// cycle budget. Exercises the wall-clock timeout and zombie-abandonment
/// path; unset in normal operation.
fn maybe_inject_hang(key: &str) {
    if let Ok(pat) = std::env::var("FLASH_INJECT_HANG") {
        if !pat.is_empty() && key.contains(&pat) {
            std::thread::sleep(Duration::from_secs(3600));
        }
    }
}

// ---- hardened supervisor ---------------------------------------------------

/// One job the supervisor gave up on: it panicked (or timed out) on every
/// allowed attempt. The matrix keeps going; failures are drained at the
/// end and rendered as a tail summary with a nonzero exit.
#[derive(Debug, Clone)]
pub struct JobFailure {
    /// The job's memo key (identifies the simulation point).
    pub key: String,
    /// First line of the panic payload, or a timeout note.
    pub error: String,
    /// Attempts made (1 + retries).
    pub attempts: u32,
}

fn failure_log() -> &'static Mutex<Vec<JobFailure>> {
    static LOG: OnceLock<Mutex<Vec<JobFailure>>> = OnceLock::new();
    LOG.get_or_init(|| Mutex::new(Vec::new()))
}

fn record_failure(f: JobFailure) {
    lock(failure_log()).push(f);
}

/// Takes (and clears) every job failure recorded since the last drain.
/// Bins call this after rendering to decide their exit status.
pub fn drain_failures() -> Vec<JobFailure> {
    std::mem::take(&mut *lock(failure_log()))
}

/// Supervisor policy: how patient to be with a job before writing it off.
#[derive(Debug, Clone, Copy)]
pub struct SuperviseOptions {
    /// Wall-clock limit per job *attempt*. `None` (the default) trusts
    /// the in-simulation cycle budget. Only enforced when jobs run on
    /// worker threads (`workers > 1`): the inline path cannot abandon its
    /// own thread.
    pub timeout: Option<Duration>,
    /// Extra attempts after a panicked or overdue first attempt.
    pub retries: u32,
}

impl SuperviseOptions {
    /// Policy from the environment: `FLASH_JOB_TIMEOUT` (seconds,
    /// fractional allowed) and `FLASH_JOB_RETRIES` (default 1).
    pub fn from_env() -> Self {
        let timeout = std::env::var("FLASH_JOB_TIMEOUT")
            .ok()
            .and_then(|v| v.trim().parse::<f64>().ok())
            .filter(|&s| s > 0.0)
            .map(Duration::from_secs_f64);
        let retries = std::env::var("FLASH_JOB_RETRIES")
            .ok()
            .and_then(|v| v.trim().parse().ok())
            .unwrap_or(1);
        SuperviseOptions { timeout, retries }
    }
}

/// Runs one attempt of `job` with panic isolation, returning the panic
/// payload's first line on failure.
fn run_attempt(job: &Job) -> Result<(), String> {
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| job.run())).map_err(|payload| {
        let msg = if let Some(s) = payload.downcast_ref::<&str>() {
            (*s).to_string()
        } else if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else {
            "non-string panic payload".to_string()
        };
        msg.lines().next().unwrap_or("panic").to_string()
    })
}

/// Prefetches a job list with the default worker count ([`jobs`]) and the
/// environment's supervision policy. Returns the number of points
/// actually simulated (attempted points count even if they ultimately
/// failed — see [`drain_failures`]).
pub fn prefetch(list: &[Job]) -> usize {
    prefetch_supervised(list, jobs(), &SuperviseOptions::from_env())
}

/// [`prefetch`] with an explicit worker count (environment policy).
pub fn prefetch_with_jobs(list: &[Job], workers: usize) -> usize {
    prefetch_supervised(list, workers, &SuperviseOptions::from_env())
}

/// Deduplicates `list`, drops already-cached points, and executes the rest
/// under the hardened supervisor: each attempt is `catch_unwind`-isolated,
/// panicked or overdue attempts are retried per `opts`, and jobs that fail
/// every attempt are recorded for [`drain_failures`] instead of killing
/// the matrix. `workers <= 1` runs inline on the caller's thread (no
/// threads, no wall-clock timeouts). Returns the number of points
/// actually simulated.
pub fn prefetch_supervised(list: &[Job], workers: usize, opts: &SuperviseOptions) -> usize {
    if memo_disabled() {
        // Pre-runner behaviour: nothing is prefetched, every artifact
        // re-simulates its own points at render time.
        return 0;
    }
    let mut seen = HashSet::new();
    let mut pending: Vec<Job> = Vec::new();
    for job in list {
        let key = job.key();
        if !job.is_cached(&key) && seen.insert(key) {
            pending.push(job.clone());
        }
    }
    if pending.is_empty() {
        return 0;
    }
    let workers = workers.max(1).min(pending.len());
    let max_attempts = opts.retries.saturating_add(1);
    if workers == 1 {
        for job in &pending {
            let mut attempt = 1;
            loop {
                match run_attempt(job) {
                    Ok(()) => break,
                    Err(e) if attempt < max_attempts => {
                        eprintln!("[runner] job panicked (attempt {attempt}): {e}; retrying");
                        attempt += 1;
                    }
                    Err(e) => {
                        record_failure(JobFailure {
                            key: job.key(),
                            error: e,
                            attempts: attempt,
                        });
                        break;
                    }
                }
            }
        }
        return pending.len();
    }
    supervise(pending, workers, max_attempts, opts.timeout)
}

/// Messages from workers to the supervisor.
enum WorkerMsg {
    Started {
        job: usize,
        attempt: u32,
    },
    Finished {
        job: usize,
        attempt: u32,
        result: Result<(), String>,
    },
}

fn spawn_worker(
    jobs: Arc<Vec<Job>>,
    queue: Arc<Mutex<VecDeque<(usize, u32)>>>,
    tx: mpsc::Sender<WorkerMsg>,
) {
    std::thread::spawn(move || loop {
        let item = lock(&queue).pop_front();
        let Some((job, attempt)) = item else { break };
        if tx.send(WorkerMsg::Started { job, attempt }).is_err() {
            break;
        }
        let result = run_attempt(&jobs[job]);
        let fin = WorkerMsg::Finished {
            job,
            attempt,
            result,
        };
        if tx.send(fin).is_err() {
            break;
        }
    });
}

/// The threaded supervisor. Worker threads are detached, not scoped: a
/// worker stuck inside a runaway simulation is *abandoned* (its job is
/// retried or failed by timeout, and a replacement worker keeps the pool
/// at strength) rather than joined — a scoped pool would hang the whole
/// matrix on one wedged job. A late result from an abandoned worker still
/// counts if its job is unresolved (the memo cache makes duplicates
/// harmless: simulations are deterministic).
fn supervise(
    pending: Vec<Job>,
    workers: usize,
    max_attempts: u32,
    timeout: Option<Duration>,
) -> usize {
    let total = pending.len();
    let jobs = Arc::new(pending);
    let queue: Arc<Mutex<VecDeque<(usize, u32)>>> =
        Arc::new(Mutex::new((0..total).map(|i| (i, 1)).collect()));
    let (tx, rx) = mpsc::channel();
    for _ in 0..workers {
        spawn_worker(jobs.clone(), queue.clone(), tx.clone());
    }
    let mut resolved = vec![false; total];
    let mut unresolved = total;
    // Last started attempt + start time, per in-flight job.
    let mut in_flight: HashMap<usize, (u32, Instant)> = HashMap::new();
    let poll = timeout.map_or(Duration::from_millis(200), |t| {
        (t / 4).max(Duration::from_millis(10))
    });
    while unresolved > 0 {
        match rx.recv_timeout(poll) {
            Ok(WorkerMsg::Started { job, attempt }) => {
                in_flight.insert(job, (attempt, Instant::now()));
            }
            Ok(WorkerMsg::Finished {
                job,
                attempt,
                result,
            }) => {
                // Only clear the in-flight slot if it still belongs to
                // this attempt (a late result from an abandoned worker
                // must not clobber the retry's bookkeeping).
                if in_flight.get(&job).is_some_and(|&(a, _)| a == attempt) {
                    in_flight.remove(&job);
                }
                if resolved[job] {
                    continue; // late result from an abandoned attempt
                }
                match result {
                    Ok(()) => {
                        resolved[job] = true;
                        unresolved -= 1;
                    }
                    Err(e) if attempt < max_attempts => {
                        eprintln!("[runner] job panicked (attempt {attempt}): {e}; retrying");
                        lock(&queue).push_back((job, attempt + 1));
                        spawn_worker(jobs.clone(), queue.clone(), tx.clone());
                    }
                    Err(e) => {
                        resolved[job] = true;
                        unresolved -= 1;
                        record_failure(JobFailure {
                            key: jobs[job].key(),
                            error: e,
                            attempts: attempt,
                        });
                    }
                }
            }
            Err(RecvTimeoutError::Timeout) => {
                let Some(limit) = timeout else { continue };
                let now = Instant::now();
                let overdue: Vec<(usize, u32)> = in_flight
                    .iter()
                    .filter(|&(_, &(_, started))| now.duration_since(started) > limit)
                    .map(|(&job, &(attempt, _))| (job, attempt))
                    .collect();
                for (job, attempt) in overdue {
                    // Abandon the worker stuck on this attempt; a
                    // replacement keeps the pool at strength.
                    in_flight.remove(&job);
                    if resolved[job] {
                        continue;
                    }
                    if attempt < max_attempts {
                        eprintln!(
                            "[runner] job overdue after {limit:?} (attempt {attempt}); retrying"
                        );
                        lock(&queue).push_back((job, attempt + 1));
                        spawn_worker(jobs.clone(), queue.clone(), tx.clone());
                    } else {
                        resolved[job] = true;
                        unresolved -= 1;
                        record_failure(JobFailure {
                            key: jobs[job].key(),
                            error: format!("timed out (> {limit:?} wall clock per attempt)"),
                            attempts: attempt,
                        });
                    }
                }
            }
            Err(RecvTimeoutError::Disconnected) => {
                // Unreachable while the supervisor holds `tx`; defensive.
                break;
            }
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_distinguish_every_knob() {
        let a = RunSpec {
            work: WorkSpec::Named {
                app: "FFT",
                procs: 4,
                scale: 8,
            },
            cfg: MachineConfig::flash(4),
        };
        let b = RunSpec {
            cfg: MachineConfig::flash(4).with_speculation(false),
            ..a.clone()
        };
        let c = RunSpec {
            work: WorkSpec::Named {
                app: "FFT",
                procs: 4,
                scale: 4,
            },
            ..a.clone()
        };
        assert_ne!(a.key(), b.key());
        assert_ne!(a.key(), c.key());
        assert_eq!(a.key(), a.clone().key());
    }

    #[test]
    fn same_cache_default_and_explicit_share_a_key() {
        // `flash()` defaults to 1 MB caches, so spelling the cache size
        // explicitly must dedupe against the default — this is what lets
        // Figure 4.1 share runs with tables that do not set a size.
        let work = WorkSpec::Named {
            app: "FFT",
            procs: 4,
            scale: 8,
        };
        let a = RunSpec {
            work,
            cfg: MachineConfig::flash(4),
        };
        let b = RunSpec {
            work,
            cfg: MachineConfig::flash(4).with_cache_bytes(1 << 20),
        };
        assert_eq!(a.key(), b.key());
    }

    #[test]
    fn observe_file_names_are_sane_and_collision_resistant() {
        let a = observe_file_name("lat|FlashEmulated|RemoteClean");
        let b = observe_file_name("lat|FlashEmulated|RemoteDirtyHome");
        assert_ne!(a, b);
        assert!(a.starts_with("observe_lat_FlashEmulated_RemoteClean_"));
        assert!(a.ends_with(".json"));
        assert!(a
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '.'));
        // Keys that sanitize identically still get distinct files.
        let c = observe_file_name("lat.FlashEmulated.RemoteClean");
        assert_ne!(a, c);
        assert_eq!(&a[..a.len() - 22], &c[..c.len() - 22]);
    }

    #[test]
    fn prefetch_deduplicates_and_memoizes() {
        let spec = RunSpec {
            work: WorkSpec::Named {
                app: "FFT",
                procs: 2,
                scale: 64,
            },
            cfg: MachineConfig::flash(2),
        };
        let before = cached_run_count();
        let list = vec![
            Job::Run(spec.clone()),
            Job::Run(spec.clone()),
            Job::Run(spec.clone()),
        ];
        let ran = prefetch_with_jobs(&list, 2);
        assert!(
            ran <= 1,
            "duplicates must collapse to at most one run, got {ran}"
        );
        assert!(cached_run_count() >= before);
        // A later call finds everything cached.
        assert_eq!(prefetch_with_jobs(&list, 2), 0);
        // And cached_run returns the memoized report without re-simulating.
        let r1 = cached_run(&spec);
        let r2 = cached_run(&spec);
        assert_eq!(r1.exec_cycles, r2.exec_cycles);
    }
}
