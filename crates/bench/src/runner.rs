//! Parallel run-matrix driver with memoized simulation results.
//!
//! The table/figure regeneration functions in [`crate::tables`] share many
//! simulation points: the Figure 4.x FLASH runs are the same machine
//! configurations that Table 4.x, Table 5.1 (speculation on) and Table 5.2
//! re-measure, and the Table 3.3 latency harness is consulted by three
//! artifacts. This module enumerates every `(workload, config)` point a set
//! of artifacts needs as a [`Job`], deduplicates the list, executes it
//! across `std::thread::scope` workers, and memoizes each
//! [`MachineReport`] in a process-wide cache so every unique point
//! simulates exactly once per invocation.
//!
//! Determinism: each simulation owns its machine, its workload streams and
//! its [`flash_engine::DetRng`] instances; no simulation state is shared
//! between worker threads, so a point's report is bit-identical whether it
//! was computed inline, by one worker, or by eight. Rendering stays on the
//! caller's thread and reads only the cache, so table output is
//! byte-identical to the serial path for any worker count.
//!
//! Worker count: `FLASH_JOBS=n` forces `n` workers; the default is
//! [`std::thread::available_parallelism`]. `FLASH_JOBS=1` runs every job
//! inline on the caller's thread (no threads are spawned).

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

use flash::{ControllerKind, Machine, MachineConfig, MachineReport, RunResult};
use flash_workloads::{by_name, run_workload, Fft, OsWorkload};

use crate::{mdc_stress_stream, MissClass};

/// What to simulate: a workload family plus the parameters that pick one
/// member. Kept `Copy` + `Debug` so a spec both reconstructs the workload
/// and (via its `Debug` rendering) keys the memo cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkSpec {
    /// A named application from [`flash_workloads::by_name`].
    Named {
        /// Application name ("FFT", "Ocean", "OS", ...).
        app: &'static str,
        /// Processor count.
        procs: u16,
        /// Problem-size divisor.
        scale: u32,
    },
    /// FFT with an explicit matrix dimension (the §4.5 scaled-data run).
    FftDim {
        /// Processor count.
        procs: u16,
        /// Matrix dimension.
        dim: u64,
    },
    /// The original first-node IRIX port of the OS workload (§4.3).
    OsOriginalPort {
        /// Processor count.
        procs: u16,
        /// Problem-size divisor.
        scale: u32,
    },
    /// The §5.2 uniprocessor MDC stress stream.
    MdcStress {
        /// Data-set size in MB before scaling.
        data_mb: u64,
        /// Problem-size divisor.
        scale: u32,
    },
}

impl WorkSpec {
    /// Runs this workload under `cfg` to completion.
    fn execute(&self, cfg: &MachineConfig) -> MachineReport {
        match *self {
            WorkSpec::Named { app, procs, scale } => {
                let w = by_name(app, procs, scale);
                run_workload(cfg, w.as_ref())
            }
            WorkSpec::FftDim { procs, dim } => run_workload(cfg, &Fft::with_dim(procs, dim)),
            WorkSpec::OsOriginalPort { procs, scale } => {
                run_workload(cfg, &OsWorkload::scaled(procs, scale).original_port())
            }
            WorkSpec::MdcStress { data_mb, scale } => {
                let mut m = Machine::new(cfg.clone(), mdc_stress_stream(data_mb, scale));
                let RunResult::Completed { .. } = m.run(flash_workloads::DEFAULT_BUDGET) else {
                    panic!("mdc stress stuck under {cfg:?}");
                };
                MachineReport::from_machine(&m)
            }
        }
    }
}

/// One point of the run matrix: a workload and the exact machine
/// configuration to run it under.
#[derive(Debug, Clone)]
pub struct RunSpec {
    /// Workload selector.
    pub work: WorkSpec,
    /// Machine configuration (every knob participates in the memo key).
    pub cfg: MachineConfig,
}

impl RunSpec {
    /// Memo-cache key. `MachineConfig` derives `Debug` over every field,
    /// so two specs share a key exactly when they would simulate the same
    /// deterministic machine.
    pub fn key(&self) -> String {
        format!("{:?}|{:?}", self.work, self.cfg)
    }
}

/// One unit of prefetchable work.
#[derive(Debug, Clone)]
pub enum Job {
    /// A full workload simulation producing a [`MachineReport`].
    Run(RunSpec),
    /// One Table 3.3 no-contention latency measurement.
    Latency(ControllerKind, MissClass),
}

impl Job {
    fn key(&self) -> String {
        match self {
            Job::Run(s) => s.key(),
            Job::Latency(kind, class) => format!("lat|{kind:?}|{class:?}"),
        }
    }

    fn is_cached(&self, key: &str) -> bool {
        match self {
            Job::Run(_) => run_cache().lock().unwrap().contains_key(key),
            Job::Latency(..) => lat_cache().lock().unwrap().contains_key(key),
        }
    }

    /// Executes this job through the memo cache (or uncached when
    /// `FLASH_NO_MEMO=1`), discarding the result — it is retrievable via
    /// [`cached_run`] / [`cached_latency`].
    pub fn run(&self) {
        match self {
            Job::Run(spec) => {
                cached_run(spec);
            }
            Job::Latency(kind, class) => {
                cached_latency(*kind, *class);
            }
        }
    }
}

fn run_cache() -> &'static Mutex<HashMap<String, MachineReport>> {
    static CACHE: OnceLock<Mutex<HashMap<String, MachineReport>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

fn lat_cache() -> &'static Mutex<HashMap<String, f64>> {
    static CACHE: OnceLock<Mutex<HashMap<String, f64>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// `FLASH_NO_MEMO=1` disables the memo cache and prefetch deduplication,
/// recreating the pre-runner behaviour where every artifact re-simulated
/// its own points. A measurement aid for quantifying the dedup win
/// (`benches/`, BENCH_PR1.json); not intended for normal use.
fn memo_disabled() -> bool {
    std::env::var("FLASH_NO_MEMO").is_ok_and(|v| v == "1")
}

/// Worker count: `FLASH_JOBS` if set, otherwise the machine's available
/// parallelism (at least 1).
pub fn jobs() -> usize {
    if let Some(n) = std::env::var("FLASH_JOBS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
    {
        return n.max(1);
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Empties both memo caches (used by tests that compare cold serial and
/// cold parallel execution of the same matrix).
pub fn clear_caches() {
    run_cache().lock().unwrap().clear();
    lat_cache().lock().unwrap().clear();
}

/// Number of memoized simulation reports currently held.
pub fn cached_run_count() -> usize {
    run_cache().lock().unwrap().len()
}

/// Runs (or recalls) one simulation point. The lock is never held across
/// the simulation itself, so concurrent callers of *distinct* points
/// proceed in parallel; concurrent callers of the *same* point both
/// compute it and the first insertion wins — harmless, because the
/// simulation is deterministic and both results are identical.
pub fn cached_run(spec: &RunSpec) -> MachineReport {
    if memo_disabled() {
        return spec.work.execute(&spec.cfg);
    }
    let key = spec.key();
    if let Some(r) = run_cache().lock().unwrap().get(&key) {
        return r.clone();
    }
    let report = spec.work.execute(&spec.cfg);
    run_cache()
        .lock()
        .unwrap()
        .entry(key)
        .or_insert(report)
        .clone()
}

/// Runs (or recalls) one Table 3.3 latency measurement.
pub fn cached_latency(kind: ControllerKind, class: MissClass) -> f64 {
    if memo_disabled() {
        return crate::measure_class_uncached(kind, class);
    }
    let key = Job::Latency(kind, class).key();
    if let Some(v) = lat_cache().lock().unwrap().get(&key) {
        return *v;
    }
    let v = crate::measure_class_uncached(kind, class);
    *lat_cache().lock().unwrap().entry(key).or_insert(v)
}

/// Prefetches a job list with the default worker count ([`jobs`]).
/// Returns the number of points actually simulated.
pub fn prefetch(list: &[Job]) -> usize {
    prefetch_with_jobs(list, jobs())
}

/// Deduplicates `list`, drops already-cached points, and executes the rest
/// across `workers` scoped threads (inline on the caller's thread when
/// `workers <= 1`). Returns the number of points actually simulated.
pub fn prefetch_with_jobs(list: &[Job], workers: usize) -> usize {
    if memo_disabled() {
        // Pre-runner behaviour: nothing is prefetched, every artifact
        // re-simulates its own points at render time.
        return 0;
    }
    let mut seen = HashSet::new();
    let mut pending: Vec<&Job> = Vec::new();
    for job in list {
        let key = job.key();
        if !job.is_cached(&key) && seen.insert(key) {
            pending.push(job);
        }
    }
    if pending.is_empty() {
        return 0;
    }
    let workers = workers.max(1).min(pending.len());
    if workers == 1 {
        for job in &pending {
            job.run();
        }
        return pending.len();
    }
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(job) = pending.get(i) else { break };
                job.run();
            });
        }
    });
    pending.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_distinguish_every_knob() {
        let a = RunSpec {
            work: WorkSpec::Named {
                app: "FFT",
                procs: 4,
                scale: 8,
            },
            cfg: MachineConfig::flash(4),
        };
        let b = RunSpec {
            cfg: MachineConfig::flash(4).with_speculation(false),
            ..a.clone()
        };
        let c = RunSpec {
            work: WorkSpec::Named {
                app: "FFT",
                procs: 4,
                scale: 4,
            },
            ..a.clone()
        };
        assert_ne!(a.key(), b.key());
        assert_ne!(a.key(), c.key());
        assert_eq!(a.key(), a.clone().key());
    }

    #[test]
    fn same_cache_default_and_explicit_share_a_key() {
        // `flash()` defaults to 1 MB caches, so spelling the cache size
        // explicitly must dedupe against the default — this is what lets
        // Figure 4.1 share runs with tables that do not set a size.
        let work = WorkSpec::Named {
            app: "FFT",
            procs: 4,
            scale: 8,
        };
        let a = RunSpec {
            work,
            cfg: MachineConfig::flash(4),
        };
        let b = RunSpec {
            work,
            cfg: MachineConfig::flash(4).with_cache_bytes(1 << 20),
        };
        assert_eq!(a.key(), b.key());
    }

    #[test]
    fn prefetch_deduplicates_and_memoizes() {
        let spec = RunSpec {
            work: WorkSpec::Named {
                app: "FFT",
                procs: 2,
                scale: 64,
            },
            cfg: MachineConfig::flash(2),
        };
        let before = cached_run_count();
        let list = vec![
            Job::Run(spec.clone()),
            Job::Run(spec.clone()),
            Job::Run(spec.clone()),
        ];
        let ran = prefetch_with_jobs(&list, 2);
        assert!(
            ran <= 1,
            "duplicates must collapse to at most one run, got {ran}"
        );
        assert!(cached_run_count() >= before);
        // A later call finds everything cached.
        assert_eq!(prefetch_with_jobs(&list, 2), 0);
        // And cached_run returns the memoized report without re-simulating.
        let r1 = cached_run(&spec);
        let r2 = cached_run(&spec);
        assert_eq!(r1.exec_cycles, r2.exec_cycles);
    }
}
