//! The FLASH node memory system.
//!
//! * [`controller::MemController`] — the DRAM controller: 14 cycles to the
//!   first 8 bytes, a 64-bit data path (16 cycles to stream a 128-byte
//!   line), and the single-entry request queue of paper Table 3.1 whose
//!   exhaustion stalls the PP or inbox. The ideal machine uses the same
//!   timing with an infinite queue.
//! * [`magic_cache::MagicCache`] — the tag-only set-associative model used
//!   for both the MAGIC data cache (64 KB, 2-way, 128-byte lines; paper
//!   §5.2) and the MAGIC instruction cache (32 KB).

pub mod controller;
pub mod magic_cache;

pub use controller::{MemController, MemResult, MemTiming};
pub use magic_cache::{Access, CacheGeometry, MagicCache};
