//! Tag-only set-associative cache model for the MAGIC caches.
//!
//! "To avoid consuming excessive memory bandwidth, the PP accesses this
//! information through the *MAGIC instruction cache* and *MAGIC data
//! cache*" (paper §2). The MDC is 64 KB, 2-way set associative with
//! 128-byte lines (§5.2); the instruction cache is 32 KB. Since directory
//! *contents* live in the node's `ProtoMem`, these models track tags and
//! LRU state only — hit/miss timing and victim writebacks.

use flash_engine::Counter;

/// Cache geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheGeometry {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity (ways per set).
    pub ways: u32,
    /// Line size in bytes.
    pub line_bytes: u64,
}

impl CacheGeometry {
    /// The MAGIC data cache: 64 KB, 2-way, 128-byte lines (paper §5.2).
    pub const fn mdc() -> Self {
        CacheGeometry {
            size_bytes: 64 * 1024,
            ways: 2,
            line_bytes: 128,
        }
    }

    /// The MAGIC instruction cache: 32 KB, 2-way, 128-byte lines
    /// (size per paper §5.3).
    pub const fn micache() -> Self {
        CacheGeometry {
            size_bytes: 32 * 1024,
            ways: 2,
            line_bytes: 128,
        }
    }

    /// Number of sets.
    pub fn sets(&self) -> u64 {
        self.size_bytes / (self.line_bytes * self.ways as u64)
    }
}

/// Result of a cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Access {
    /// The line was present.
    Hit,
    /// The line was absent and has been installed.
    Miss {
        /// Line address of a dirty victim that must be written back.
        victim_writeback: Option<u64>,
    },
}

#[derive(Debug, Clone, Copy, Default)]
struct Way {
    valid: bool,
    dirty: bool,
    tag: u64,
    lru: u64,
}

/// A write-back, write-allocate, LRU, set-associative tag store.
///
/// # Examples
///
/// ```
/// use flash_mem::{Access, CacheGeometry, MagicCache};
///
/// let mut mdc = MagicCache::new(CacheGeometry::mdc());
/// assert!(matches!(mdc.access(0x1000, false), Access::Miss { .. }));
/// assert_eq!(mdc.access(0x1000, false), Access::Hit);
/// ```
#[derive(Debug, Clone)]
pub struct MagicCache {
    geom: CacheGeometry,
    ways: Vec<Way>,
    tick: u64,
    read_hits: Counter,
    read_misses: Counter,
    write_hits: Counter,
    write_misses: Counter,
    writebacks: Counter,
}

impl MagicCache {
    /// Creates an empty cache.
    ///
    /// # Panics
    ///
    /// Panics if the geometry does not yield a power-of-two set count.
    pub fn new(geom: CacheGeometry) -> Self {
        let sets = geom.sets();
        assert!(
            sets.is_power_of_two(),
            "set count {sets} must be a power of two"
        );
        MagicCache {
            geom,
            ways: vec![Way::default(); (sets * geom.ways as u64) as usize],
            tick: 0,
            read_hits: Counter::default(),
            read_misses: Counter::default(),
            write_hits: Counter::default(),
            write_misses: Counter::default(),
            writebacks: Counter::default(),
        }
    }

    /// Accesses the line containing `addr`, installing it on a miss.
    pub fn access(&mut self, addr: u64, write: bool) -> Access {
        self.tick += 1;
        let line = addr / self.geom.line_bytes;
        let sets = self.geom.sets();
        let set = (line % sets) as usize;
        let tag = line / sets;
        let ways = self.geom.ways as usize;
        let base = set * ways;

        for i in 0..ways {
            let w = &mut self.ways[base + i];
            if w.valid && w.tag == tag {
                w.lru = self.tick;
                w.dirty |= write;
                if write {
                    self.write_hits.incr();
                } else {
                    self.read_hits.incr();
                }
                return Access::Hit;
            }
        }

        // Miss: choose LRU victim.
        let victim_i = (0..ways)
            .min_by_key(|&i| {
                let w = &self.ways[base + i];
                if w.valid {
                    w.lru
                } else {
                    0
                }
            })
            .expect("at least one way");
        let victim = self.ways[base + victim_i];
        let victim_writeback = if victim.valid && victim.dirty {
            self.writebacks.incr();
            Some((victim.tag * sets + set as u64) * self.geom.line_bytes)
        } else {
            None
        };
        self.ways[base + victim_i] = Way {
            valid: true,
            dirty: write,
            tag,
            lru: self.tick,
        };
        if write {
            self.write_misses.incr();
        } else {
            self.read_misses.incr();
        }
        Access::Miss { victim_writeback }
    }

    /// Read hits observed.
    pub fn read_hits(&self) -> u64 {
        self.read_hits.get()
    }

    /// Read misses observed.
    pub fn read_misses(&self) -> u64 {
        self.read_misses.get()
    }

    /// Write hits observed.
    pub fn write_hits(&self) -> u64 {
        self.write_hits.get()
    }

    /// Write misses observed.
    pub fn write_misses(&self) -> u64 {
        self.write_misses.get()
    }

    /// Dirty victim writebacks produced.
    pub fn writebacks(&self) -> u64 {
        self.writebacks.get()
    }

    /// Overall miss rate (all accesses).
    pub fn miss_rate(&self) -> f64 {
        let misses = self.read_misses.get() + self.write_misses.get();
        let total = misses + self.read_hits.get() + self.write_hits.get();
        if total == 0 {
            0.0
        } else {
            misses as f64 / total as f64
        }
    }

    /// Read miss rate (read accesses only).
    pub fn read_miss_rate(&self) -> f64 {
        let total = self.read_misses.get() + self.read_hits.get();
        if total == 0 {
            0.0
        } else {
            self.read_misses.get() as f64 / total as f64
        }
    }

    /// The cache geometry.
    pub fn geometry(&self) -> CacheGeometry {
        self.geom
    }

    /// Tag-store integrity audit (checked mode): no set may hold the same
    /// tag in two valid ways (a duplicate would make hit/victim selection
    /// ambiguous), and no way's LRU stamp may exceed the access tick.
    pub fn audit(&self) -> Result<(), String> {
        let ways = self.geom.ways as usize;
        for set in 0..self.geom.sets() as usize {
            let base = set * ways;
            for i in 0..ways {
                let a = &self.ways[base + i];
                if !a.valid {
                    continue;
                }
                if a.lru > self.tick {
                    return Err(format!(
                        "set {set} way {i}: LRU stamp {} exceeds tick {}",
                        a.lru, self.tick
                    ));
                }
                for j in i + 1..ways {
                    let b = &self.ways[base + j];
                    if b.valid && b.tag == a.tag {
                        return Err(format!(
                            "set {set}: tag {:#x} present in ways {i} and {j}",
                            a.tag
                        ));
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mdc_geometry() {
        let g = CacheGeometry::mdc();
        assert_eq!(g.sets(), 256);
        // 512 lines total, each covering 16 directory headers: the whole
        // MDC maps directory state for 1 MB of data (paper §5.2).
        let lines = g.sets() * g.ways as u64;
        assert_eq!(lines, 512);
        assert_eq!(lines * 16 * 128, 1 << 20);
    }

    #[test]
    fn hit_after_install() {
        let mut c = MagicCache::new(CacheGeometry::mdc());
        assert!(matches!(
            c.access(0x1234, false),
            Access::Miss {
                victim_writeback: None
            }
        ));
        assert_eq!(c.access(0x1200, false), Access::Hit, "same 128-byte line");
        assert_eq!(c.read_hits(), 1);
        assert_eq!(c.read_misses(), 1);
    }

    #[test]
    fn two_way_conflict_evicts_lru() {
        let g = CacheGeometry::mdc();
        let set_stride = g.sets() * g.line_bytes; // same set, different tag
        let mut c = MagicCache::new(g);
        c.access(0, false);
        c.access(set_stride, false);
        // Touch line 0 so `set_stride` becomes LRU.
        c.access(0, false);
        c.access(2 * set_stride, false);
        assert_eq!(c.access(0, false), Access::Hit);
        assert!(matches!(c.access(set_stride, false), Access::Miss { .. }));
    }

    #[test]
    fn dirty_victim_writes_back() {
        let g = CacheGeometry::mdc();
        let set_stride = g.sets() * g.line_bytes;
        let mut c = MagicCache::new(g);
        c.access(0, true); // dirty
        c.access(set_stride, false);
        let r = c.access(2 * set_stride, false); // evicts line 0
        assert_eq!(
            r,
            Access::Miss {
                victim_writeback: Some(0)
            }
        );
        assert_eq!(c.writebacks(), 1);
    }

    #[test]
    fn write_hit_marks_dirty() {
        let g = CacheGeometry::mdc();
        let set_stride = g.sets() * g.line_bytes;
        let mut c = MagicCache::new(g);
        c.access(0, false);
        c.access(0, true); // read-modify-write pattern of directory ops
        c.access(set_stride, false);
        let r = c.access(2 * set_stride, false);
        assert!(matches!(
            r,
            Access::Miss {
                victim_writeback: Some(0)
            }
        ));
    }

    #[test]
    fn miss_rates() {
        let mut c = MagicCache::new(CacheGeometry::mdc());
        c.access(0, false); // miss
        c.access(0, false); // hit
        c.access(0, true); // hit
        assert!((c.miss_rate() - 1.0 / 3.0).abs() < 1e-9);
        assert_eq!(c.read_miss_rate(), 0.5);
    }

    #[test]
    fn audit_accepts_all_reachable_states() {
        let mut c = MagicCache::new(CacheGeometry::mdc());
        assert_eq!(c.audit(), Ok(()));
        let g = c.geometry();
        let set_stride = g.sets() * g.line_bytes;
        for i in 0..1000u64 {
            c.access((i % 7) * set_stride + (i % 64) * g.line_bytes, i % 3 == 0);
            if i % 97 == 0 {
                assert_eq!(c.audit(), Ok(()));
            }
        }
        assert_eq!(c.audit(), Ok(()));
    }

    #[test]
    fn streaming_2kb_stride_pattern() {
        // A unit-stride walk misses once per 2 KB of data (one MDC line
        // maps 16 headers = 2 KB), the §5.2 argument.
        let mut c = MagicCache::new(CacheGeometry::mdc());
        let mut misses = 0;
        for i in 0..512u64 {
            // Directory header addresses for consecutive 128-byte lines.
            if matches!(c.access(i * 8, false), Access::Miss { .. }) {
                misses += 1;
            }
        }
        assert_eq!(misses, 512 / 16);
    }
}
