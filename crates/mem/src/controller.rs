//! DRAM controller timing.

use flash_engine::{Counter, Cycle};
use std::collections::VecDeque;

/// Memory timing parameters (paper §3.2: "14-cycle memory access time",
/// "64-bit path to the memory system", 128-byte lines).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemTiming {
    /// Cycles from reaching the front of the controller queue to the first
    /// 8 bytes of data.
    pub access: u64,
    /// Cycles to stream the remaining line over the 64-bit path.
    pub transfer: u64,
    /// Minimum cycles between successive access starts. The paper's model
    /// occupies the memory system "for the duration of the access"
    /// (§5.1), i.e. `access + transfer`; a bank that overlaps row access
    /// with data streaming would use `transfer` here instead.
    pub issue_interval: u64,
}

impl Default for MemTiming {
    fn default() -> Self {
        // 128-byte line over an 8-byte path: 16 transfer beats; a single
        // DRAM bank busy for the whole access, as in the paper.
        MemTiming {
            access: 14,
            transfer: 16,
            issue_interval: 30,
        }
    }
}

impl MemTiming {
    /// A bank that pipelines row access with data transfer (sensitivity
    /// ablation; not the paper's model).
    pub fn pipelined() -> Self {
        MemTiming {
            access: 14,
            transfer: 16,
            issue_interval: 16,
        }
    }
}

/// The completed timing of one memory request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemResult {
    /// When the controller accepted the request (queue-space wait ends).
    pub accept: Cycle,
    /// When service began (previous request finished).
    pub start: Cycle,
    /// When the first 8 bytes are available (critical word first).
    pub first_dword: Cycle,
    /// When the full 128-byte line has streamed.
    pub done: Cycle,
}

/// A single-ported memory controller with a bounded request queue.
///
/// FLASH: `queue_capacity = Some(1)` — a unit needing the queue "stalls
/// until queue entry is available" (paper Table 3.1). Ideal machine:
/// `None` (infinite queue, §3.1).
///
/// Accesses pipeline: the row access of the next request overlaps the
/// data transfer of the previous one, so sustained throughput is one
/// 128-byte line per 16-cycle transfer window (the 64-bit path at
/// 100 MHz) while each access still sees the full 14 + 16 cycle latency.
///
/// # Examples
///
/// ```
/// use flash_engine::Cycle;
/// use flash_mem::{MemController, MemTiming};
///
/// let mut mc = MemController::new(MemTiming::default(), Some(1));
/// let r = mc.request(Cycle::new(10));
/// assert_eq!(r.first_dword, Cycle::new(24)); // 10 + 14
/// assert_eq!(r.done, Cycle::new(40));        // 10 + 14 + 16
/// ```
#[derive(Debug, Clone)]
pub struct MemController {
    timing: MemTiming,
    /// `Some(n)`: at most `n` requests may wait beyond the one in service.
    queue_capacity: Option<usize>,
    /// Service-start times of accepted, unfinished requests (a request
    /// retires `access + transfer` after its start).
    inflight: VecDeque<Cycle>,
    busy: u64,
    requests: Counter,
    queue_wait: u64,
    /// Refresh-style external block: no request is accepted before this
    /// cycle ([`MemController::block_until`], the fault-injection hook).
    /// `Cycle::ZERO` when unused, making the hook timing-invisible.
    blocked_until: Cycle,
}

impl MemController {
    /// Creates a controller. See the type docs for `queue_capacity`.
    pub fn new(timing: MemTiming, queue_capacity: Option<usize>) -> Self {
        MemController {
            timing,
            queue_capacity,
            inflight: VecDeque::new(),
            busy: 0,
            requests: Counter::default(),
            queue_wait: 0,
            blocked_until: Cycle::ZERO,
        }
    }

    /// Blocks the controller until `t` (a DRAM refresh-style stall, the
    /// `flash-fault` hook): requests issued earlier wait, with the wait
    /// charged to [`MemController::queue_wait_cycles`]. Timing-only — no
    /// request is ever lost or reordered.
    pub fn block_until(&mut self, t: Cycle) {
        if t > self.blocked_until {
            self.blocked_until = t;
        }
    }

    /// Issues a line read or write at time `at`, returning its timing.
    /// If the bounded queue is full, `accept` reflects the stall the
    /// issuing unit (PP or inbox) experiences.
    pub fn request(&mut self, at: Cycle) -> MemResult {
        // An external (refresh) block delays issue; the wait is charged
        // below like any queue-space wait.
        let issue = at.max(self.blocked_until);
        let service = self.timing.access + self.timing.transfer;
        // Retire finished requests (a request completes `service` cycles
        // after its start).
        while self.inflight.front().is_some_and(|&s| s + service <= issue) {
            self.inflight.pop_front();
        }
        // Wait for queue space: capacity counts waiters beyond the one in
        // service, so at most `1 + cap` requests may be outstanding.
        let accept = match self.queue_capacity {
            Some(cap) if self.inflight.len() > cap => {
                // Accepted when enough older requests have retired.
                let idx = self.inflight.len() - 1 - cap;
                self.inflight[idx] + service
            }
            _ => issue,
        };
        let accept = accept.max(issue);
        // Successive starts are at least one issue interval apart.
        let start = match self.inflight.back() {
            Some(&prev_start) => (prev_start + self.timing.issue_interval).max(accept),
            None => accept,
        };
        let first_dword = start + self.timing.access;
        let done = first_dword + self.timing.transfer;
        self.inflight.push_back(start);
        self.busy += self.timing.issue_interval;
        self.requests.incr();
        self.queue_wait += accept - at;
        MemResult {
            accept,
            start,
            first_dword,
            done,
        }
    }

    /// Issues a request only if the bounded queue can accept it at `at`
    /// without stalling the issuer. Used for inbox speculative reads: a
    /// full memory queue forfeits the speculation opportunity rather than
    /// stalling the inbox pipeline.
    pub fn try_request(&mut self, at: Cycle) -> Option<MemResult> {
        if at < self.blocked_until {
            // Refresh in progress: forfeit the speculation opportunity
            // rather than stalling the inbox pipeline.
            return None;
        }
        let service = self.timing.access + self.timing.transfer;
        while self.inflight.front().is_some_and(|&s| s + service <= at) {
            self.inflight.pop_front();
        }
        if let Some(cap) = self.queue_capacity {
            if self.inflight.len() > cap {
                return None;
            }
        }
        Some(self.request(at))
    }

    /// Total cycles the memory system spent servicing requests.
    pub fn busy_cycles(&self) -> u64 {
        self.busy
    }

    /// Busy fraction over a run ending at `end`.
    pub fn occupancy(&self, end: Cycle) -> f64 {
        if end.raw() == 0 {
            0.0
        } else {
            self.busy as f64 / end.raw() as f64
        }
    }

    /// Number of requests serviced.
    pub fn requests(&self) -> u64 {
        self.requests.get()
    }

    /// Total cycles requests waited for queue space.
    pub fn queue_wait_cycles(&self) -> u64 {
        self.queue_wait
    }

    /// The configured timing.
    pub fn timing(&self) -> MemTiming {
        self.timing
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mc(cap: Option<usize>) -> MemController {
        MemController::new(MemTiming::default(), cap)
    }

    #[test]
    fn uncontended_timing_matches_paper() {
        let mut m = mc(Some(1));
        let r = m.request(Cycle::new(100));
        assert_eq!(r.accept, Cycle::new(100));
        assert_eq!(r.start, Cycle::new(100));
        assert_eq!(r.first_dword, Cycle::new(114));
        assert_eq!(r.done, Cycle::new(130));
        assert_eq!(m.busy_cycles(), 30);
        assert_eq!(m.requests(), 1);
    }

    #[test]
    fn back_to_back_requests_pipeline() {
        let mut m = mc(Some(1));
        let a = m.request(Cycle::new(0));
        let b = m.request(Cycle::new(1));
        assert_eq!(b.accept, Cycle::new(1), "one waiter fits in the queue");
        // The next access starts one issue interval after the previous.
        assert_eq!(b.start, a.start + 30);
        assert_eq!(b.first_dword, a.start + 30 + 14);
    }

    #[test]
    fn third_request_stalls_on_queue_space() {
        let mut m = mc(Some(1));
        let a = m.request(Cycle::new(0));
        let _b = m.request(Cycle::new(0));
        let c = m.request(Cycle::new(0));
        // Queue space frees when the first request retires.
        assert_eq!(c.accept, a.done);
        assert!(m.queue_wait_cycles() > 0);
    }

    #[test]
    fn unbounded_queue_never_stalls_accept() {
        let mut m = mc(None);
        for _ in 0..10 {
            let r = m.request(Cycle::new(0));
            assert_eq!(r.accept, Cycle::new(0));
        }
        // Service starts one issue interval apart.
        let r = m.request(Cycle::new(0));
        assert_eq!(r.start, Cycle::new(10 * 30));
    }

    #[test]
    fn idle_gap_resets_service() {
        let mut m = mc(Some(1));
        let a = m.request(Cycle::new(0));
        let b = m.request(Cycle::new(1000));
        assert!(b.start > a.done);
        assert_eq!(b.start, Cycle::new(1000));
    }

    #[test]
    fn occupancy_fraction() {
        let mut m = mc(Some(1));
        m.request(Cycle::new(0));
        assert!((m.occupancy(Cycle::new(300)) - 0.1).abs() < 1e-9);
        assert_eq!(mc(None).occupancy(Cycle::ZERO), 0.0);
    }
}
