//! PP execution environment with MAGIC data cache modelling.

use flash_mem::{Access, MagicCache};
use flash_pp::emu::{Env, MdcMiss};
use flash_pp::isa::MemSize;
use flash_protocol::ProtoMem;

/// An [`Env`] over a node's protocol memory that consults the MDC tag
/// store on every PP load/store, reporting misses (with dirty-victim
/// writebacks) as timing effects.
#[derive(Debug)]
pub struct MdcEnv<'a> {
    mem: &'a mut ProtoMem,
    mdc: Option<&'a mut MagicCache>,
    fields: [u64; 16],
}

impl<'a> MdcEnv<'a> {
    /// Creates an environment for one handler run. `mdc = None` models a
    /// perfect (penalty-free) MDC, used by the §5.2 counterfactual.
    pub fn new(mem: &'a mut ProtoMem, mdc: Option<&'a mut MagicCache>, fields: [u64; 16]) -> Self {
        MdcEnv { mem, mdc, fields }
    }

    fn tag_access(&mut self, addr: u64, write: bool) -> Option<MdcMiss> {
        match self.mdc.as_deref_mut()?.access(addr, write) {
            Access::Hit => None,
            Access::Miss { victim_writeback } => Some(MdcMiss {
                line: addr & !127,
                write,
                victim_writeback,
            }),
        }
    }
}

impl Env for MdcEnv<'_> {
    fn load(&mut self, addr: u64, size: MemSize) -> (u64, Option<MdcMiss>) {
        let v = match size {
            MemSize::Double => self.mem.load64(addr),
            MemSize::Word => self.mem.load32(addr) as u64,
        };
        (v, self.tag_access(addr, false))
    }

    fn store(&mut self, addr: u64, val: u64, size: MemSize) -> Option<MdcMiss> {
        match size {
            MemSize::Double => self.mem.store64(addr, val),
            MemSize::Word => self.mem.store32(addr, val as u32),
        }
        self.tag_access(addr, true)
    }

    fn msg_field(&mut self, field: u8) -> u64 {
        self.fields[field as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flash_mem::CacheGeometry;

    #[test]
    fn reports_misses_then_hits() {
        let mut mem = ProtoMem::new();
        let mut mdc = MagicCache::new(CacheGeometry::mdc());
        let mut env = MdcEnv::new(&mut mem, Some(&mut mdc), [0; 16]);
        let (_, m1) = env.load(0x1000, MemSize::Double);
        assert!(m1.is_some());
        let (_, m2) = env.load(0x1008, MemSize::Double);
        assert!(m2.is_none(), "same MDC line");
        let m3 = env.store(0x1010, 7, MemSize::Double);
        assert!(m3.is_none());
        assert_eq!(mem.load64(0x1010), 7);
        assert_eq!(mdc.read_misses(), 1);
    }

    #[test]
    fn no_mdc_means_no_misses() {
        let mut mem = ProtoMem::new();
        let mut env = MdcEnv::new(&mut mem, None, [0; 16]);
        for i in 0..100u64 {
            let (_, m) = env.load(i * 0x1000, MemSize::Double);
            assert!(m.is_none());
        }
    }
}
