//! The MAGIC chip: message processing from inbox to outbox.

use crate::env::MdcEnv;
use flash_engine::{Addr, Cycle, NodeId, OccupancyTracker};
use flash_mem::{CacheGeometry, MagicCache, MemController, MemTiming};
use flash_pp::emu::{self, EffectKind, EffectSink, Regs};
use flash_pp::translate::{translate_shared, Translated};
use flash_pp::{CodegenOptions, Program, RunStats};
use flash_protocol::dir::DEFAULT_PS_CAPACITY;
use flash_protocol::handlers::{effect_to_outgoing, fields_of};
use flash_protocol::native::{self, Outgoing};
use flash_protocol::{CostTable, Directory, InMsg, JumpTable, Msg, ProcMsg, ProtoMem};

use std::sync::Arc;

/// Which controller sits at the heart of the node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ControllerKind {
    /// The detailed FLASH model: protocol handlers run on the emulated PP.
    FlashEmulated,
    /// FLASH with native protocol execution and occupancies charged from
    /// the Table 3.4 cost model (fast mode, large configurations).
    FlashCostTable,
    /// The paper's idealized hardwired machine: protocol operations take
    /// zero time; queues are infinite; the directory is an oracle.
    Ideal,
}

impl ControllerKind {
    /// Whether this kind charges PP occupancy.
    pub fn is_flash(self) -> bool {
        !matches!(self, ControllerKind::Ideal)
    }
}

/// Which execution engine runs PP handlers on a
/// [`ControllerKind::FlashEmulated`] controller. The two backends are
/// bit-identical in timing, statistics, and effects (see
/// `flash_pp::translate` for the equivalence obligations and the suites
/// that pin them), so this is a host-performance knob, never a model
/// knob: results must not depend on it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PpBackend {
    /// The per-pair instruction-stepping reference emulator
    /// (`flash_pp::emu`).
    Emulated,
    /// Handlers pre-translated to native basic-block closures
    /// (`flash_pp::translate`); the default.
    Translated,
}

impl PpBackend {
    /// The process-wide default: `FLASH_PP_BACKEND=emu|translated` when
    /// set (read once and cached), otherwise [`PpBackend::Translated`].
    ///
    /// # Panics
    ///
    /// Panics on an unrecognized `FLASH_PP_BACKEND` value, so a typo can
    /// never silently select the wrong backend.
    pub fn from_env() -> Self {
        static CACHED: std::sync::OnceLock<PpBackend> = std::sync::OnceLock::new();
        *CACHED.get_or_init(|| match std::env::var("FLASH_PP_BACKEND").as_deref() {
            Ok("") | Ok("translated") | Ok("translate") | Err(_) => PpBackend::Translated,
            Ok("emu") | Ok("emulated") => PpBackend::Emulated,
            Ok(v) => panic!("FLASH_PP_BACKEND must be `emu` or `translated`, got `{v}`"),
        })
    }
}

impl Default for PpBackend {
    fn default() -> Self {
        Self::from_env()
    }
}

/// Chip-level latency parameters, in cycles (paper Table 3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MagicTimings {
    /// Inbox queue selection and arbitration.
    pub inbox_arb: u64,
    /// Jump table lookup (FLASH only).
    pub jump: u64,
    /// Outbox outbound processing (FLASH only).
    pub outbox: u64,
    /// NI outbound processing.
    pub ni_out: u64,
    /// PI outbound processing (4 FLASH / 2 ideal).
    pub pi_out: u64,
    /// Outbound bus arbitration + first-word transit.
    pub pi_arb_word: u64,
    /// Data-buffer staging cycle charged by the FLASH datapath.
    pub buffer_stage: u64,
    /// Extra MDC fill cycles beyond the memory access (14 + 15 = the
    /// paper's 29-cycle MDC miss penalty).
    pub mdc_fill_extra: u64,
}

impl MagicTimings {
    /// FLASH values from Table 3.2.
    pub const fn flash() -> Self {
        MagicTimings {
            inbox_arb: 1,
            jump: 2,
            outbox: 1,
            ni_out: 4,
            pi_out: 4,
            pi_arb_word: 2,
            buffer_stage: 1,
            mdc_fill_extra: 15,
        }
    }

    /// Ideal-machine values: no jump table, no outbox, faster PI outbound.
    pub const fn ideal() -> Self {
        MagicTimings {
            inbox_arb: 1,
            jump: 0,
            outbox: 0,
            ni_out: 4,
            pi_out: 2,
            pi_arb_word: 2,
            buffer_stage: 0,
            mdc_fill_extra: 0,
        }
    }
}

/// A message leaving the chip.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Emission {
    /// Handed to the network (transit is the network model's job).
    Net {
        /// Time the message enters the network.
        at: Cycle,
        /// The message.
        msg: Msg,
    },
    /// Delivered to the local processor (or I/O) over the bus.
    Proc {
        /// Time the first word reaches the processor.
        at: Cycle,
        /// The message.
        msg: ProcMsg,
    },
}

impl Emission {
    /// Emission time.
    pub fn at(&self) -> Cycle {
        match self {
            Emission::Net { at, .. } | Emission::Proc { at, .. } => *at,
        }
    }
}

/// Aggregated controller statistics.
#[derive(Debug, Clone, Default)]
pub struct MagicStats {
    /// Messages processed.
    pub messages: u64,
    /// Speculative memory reads issued by the inbox.
    pub spec_issued: u64,
    /// Speculative reads whose data went unused (paper Table 5.1).
    pub spec_useless: u64,
    /// Aggregate PP instruction statistics (emulated mode).
    pub pp: RunStats,
    /// Per-handler invocation counts and total occupancy cycles.
    /// Fast-hash keyed (hot: one entry per handler invocation); consumers
    /// aggregate into sorted maps, so iteration order never leaks out.
    pub handlers: flash_engine::FastMap<&'static str, (u64, u64)>,
    /// Cycles the PP spent stalled on MDC misses.
    pub mdc_stall_cycles: u64,
    /// MAGIC instruction-cache cold misses.
    pub icache_cold_misses: u64,
    /// Total cycles messages waited in the inbox for the PP (queueing
    /// delay behind earlier handlers).
    pub inbox_wait_cycles: u64,
    /// Largest single inbox wait observed.
    pub inbox_wait_max: u64,
    /// Processor cache-miss classifications (reads) counted at the home.
    pub read_class: ReadClassCounts,
}

/// Read-miss classification counts (paper Tables 4.1/4.2 rows).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReadClassCounts {
    /// Local address, clean at home.
    pub local_clean: u64,
    /// Local address, dirty in a remote cache.
    pub local_dirty_remote: u64,
    /// Remote address, clean at home.
    pub remote_clean: u64,
    /// Remote address, dirty in the home node's cache.
    pub remote_dirty_home: u64,
    /// Remote address, dirty in a third node's cache.
    pub remote_dirty_remote: u64,
}

impl ReadClassCounts {
    /// Total classified read misses.
    pub fn total(&self) -> u64 {
        self.local_clean
            + self.local_dirty_remote
            + self.remote_clean
            + self.remote_dirty_home
            + self.remote_dirty_remote
    }
}

/// The paper's Table 3.3 read-miss classes, as values (the countable
/// version of [`ReadClassCounts`]). Returned by
/// [`MagicChip::classify_read`] so the observability layer can attribute
/// a request's latency breakdown to its class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReadClass {
    /// Local address, clean at home.
    LocalClean,
    /// Local address, dirty in a remote cache.
    LocalDirtyRemote,
    /// Remote address, clean at home.
    RemoteClean,
    /// Remote address, dirty in the home node's cache.
    RemoteDirtyHome,
    /// Remote address, dirty in a third node's cache.
    RemoteDirtyRemote,
}

impl ReadClass {
    /// All classes in Table 3.3 row order.
    pub const ALL: [ReadClass; 5] = [
        ReadClass::LocalClean,
        ReadClass::LocalDirtyRemote,
        ReadClass::RemoteClean,
        ReadClass::RemoteDirtyHome,
        ReadClass::RemoteDirtyRemote,
    ];

    /// Stable machine-readable name used in exports (`METRICS.md` schema).
    pub fn name(self) -> &'static str {
        match self {
            ReadClass::LocalClean => "local_clean",
            ReadClass::LocalDirtyRemote => "local_dirty_remote",
            ReadClass::RemoteClean => "remote_clean",
            ReadClass::RemoteDirtyHome => "remote_dirty_home",
            ReadClass::RemoteDirtyRemote => "remote_dirty_remote",
        }
    }

    /// Index of this class in [`ReadClass::ALL`].
    pub fn index(self) -> usize {
        match self {
            ReadClass::LocalClean => 0,
            ReadClass::LocalDirtyRemote => 1,
            ReadClass::RemoteClean => 2,
            ReadClass::RemoteDirtyHome => 3,
            ReadClass::RemoteDirtyRemote => 4,
        }
    }
}

/// Per-emission latency attribution, recorded only when observation is on
/// (see the `flash` crate's `MachineConfig::with_observe`).
///
/// For every [`Emission`] produced by [`MagicChip::process`] in an
/// observed run, the chip records how the interval from message arrival
/// to emission decomposes into chip-internal components. The invariant
/// `parts.total() == emission.at() − arrival` holds exactly for all three
/// controller kinds — the observability layer's sums-to-total guarantee
/// rests on it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ObsParts {
    /// Fixed inbox arbitration + jump-table dispatch cycles.
    pub inbox: u64,
    /// Cycles the message waited in the inbox for the PP behind earlier
    /// handlers (always 0 on the ideal controller).
    pub wait: u64,
    /// Handler execution cycles preceding this emission (the send's
    /// instruction offset in emulated mode, the Table 3.4 cost in
    /// cost-table mode, 0 on the ideal controller).
    pub occ: u64,
    /// Memory/data cycles: MAGIC I-cache and MDC miss stalls, DRAM queue
    /// stalls, and waiting for the data the reply carries.
    pub mem: u64,
    /// Outbound cycles: outbox + NI-out for network emissions, outbox +
    /// PI-out + bus arbitration/first-word for processor emissions.
    pub out: u64,
}

impl ObsParts {
    /// Total attributed cycles; equals `emission.at() − arrival` exactly.
    pub fn total(&self) -> u64 {
        self.inbox + self.wait + self.occ + self.mem + self.out
    }
}

/// One observed handler invocation (feeds the event trace).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObsInvocation {
    /// Handler name (the native-dispatch name; identical across modes).
    pub handler: &'static str,
    /// Time the handler began executing.
    pub start: Cycle,
    /// Cycles the PP was occupied (0 on the ideal controller).
    pub occupied: u64,
}

/// One node's MAGIC controller (or its idealized stand-in).
pub struct MagicChip {
    kind: ControllerKind,
    node: NodeId,
    timings: MagicTimings,
    program: Option<Arc<Program>>,
    backend: PpBackend,
    translated: Option<Arc<Translated>>,
    /// Handler name → entry pair index, filled lazily: spares the hot
    /// path a `BTreeMap<String>` lookup per invocation. Deterministic
    /// fast hashing — this map is probed once per emulated invocation.
    entry_pcs: flash_engine::FastMap<&'static str, usize>,
    /// Scratch register file and effect buffer, reused across handler
    /// invocations so the hot path does not allocate.
    pp_regs: Regs,
    pp_sink: EffectSink,
    jump: JumpTable,
    proto: ProtoMem,
    mdc: Option<MagicCache>,
    icache: MagicCache,
    mem: MemController,
    pp: OccupancyTracker,
    pp_free: Cycle,
    costs: CostTable,
    speculation: bool,
    stats: MagicStats,
    out_buf: Vec<Outgoing>,
    oracle: Option<flash_check::OracleState>,
    observe: bool,
    obs_parts: Vec<ObsParts>,
    obs_invocation: Option<ObsInvocation>,
}

impl std::fmt::Debug for MagicChip {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MagicChip")
            .field("node", &self.node)
            .field("kind", &self.kind)
            .field("messages", &self.stats.messages)
            .finish()
    }
}

impl MagicChip {
    /// Builds a controller of the given kind.
    ///
    /// `program` must be provided for [`ControllerKind::FlashEmulated`]
    /// (obtain it from [`flash_protocol::handlers::compile_shared`], which
    /// compiles once per codegen variant and shares it across nodes,
    /// machines, and worker threads).
    pub fn new(
        kind: ControllerKind,
        node: NodeId,
        program: Option<Arc<Program>>,
        jump: JumpTable,
        mem_timing: MemTiming,
        speculation: bool,
        mdc_enabled: bool,
    ) -> Self {
        assert!(
            !(kind == ControllerKind::FlashEmulated && program.is_none()),
            "emulated controller needs a compiled handler program"
        );
        let mut proto = ProtoMem::new();
        Directory::init_free_list(&mut proto, DEFAULT_PS_CAPACITY);
        let mem_queue = match kind {
            ControllerKind::Ideal => None,
            _ => Some(1),
        };
        let backend = PpBackend::from_env();
        let translated = (kind == ControllerKind::FlashEmulated
            && backend == PpBackend::Translated)
            .then(|| translate_shared(program.as_ref().expect("checked above")));
        MagicChip {
            kind,
            node,
            timings: if kind == ControllerKind::Ideal {
                MagicTimings::ideal()
            } else {
                MagicTimings::flash()
            },
            program,
            backend,
            translated,
            entry_pcs: flash_engine::FastMap::default(),
            pp_regs: Regs::new(),
            pp_sink: EffectSink::new(),
            jump,
            proto,
            mdc: (mdc_enabled && kind == ControllerKind::FlashEmulated)
                .then(|| MagicCache::new(CacheGeometry::mdc())),
            icache: MagicCache::new(CacheGeometry::micache()),
            mem: MemController::new(mem_timing, mem_queue),
            pp: OccupancyTracker::new(),
            pp_free: Cycle::ZERO,
            costs: CostTable::paper(),
            speculation,
            stats: MagicStats::default(),
            out_buf: Vec::new(),
            oracle: None,
            observe: false,
            obs_parts: Vec::new(),
            obs_invocation: None,
        }
    }

    /// Selects the PP execution backend. Only meaningful for
    /// [`ControllerKind::FlashEmulated`]; the translation is shared
    /// process-wide and built on first use.
    pub fn set_pp_backend(&mut self, backend: PpBackend) {
        self.backend = backend;
        if backend == PpBackend::Translated && self.translated.is_none() {
            if let Some(p) = &self.program {
                self.translated = Some(translate_shared(p));
            }
        }
    }

    /// The active PP execution backend.
    pub fn pp_backend(&self) -> PpBackend {
        self.backend
    }

    /// Turns cycle-attribution recording on or off. When on, every
    /// [`MagicChip::process`] call leaves one [`ObsParts`] per emission in
    /// [`MagicChip::obs_parts`] and the invocation record in
    /// [`MagicChip::obs_invocation`]. Recording is timing-invisible: it
    /// only appends to side buffers.
    pub fn set_observe(&mut self, on: bool) {
        self.observe = on;
    }

    /// Per-emission attributions from the most recent
    /// [`MagicChip::process`] call (parallel to its return value; empty
    /// unless observation is on).
    pub fn obs_parts(&self) -> &[ObsParts] {
        &self.obs_parts
    }

    /// The handler invocation from the most recent
    /// [`MagicChip::process`] call (`None` unless observation is on).
    pub fn obs_invocation(&self) -> Option<&ObsInvocation> {
        self.obs_invocation.as_ref()
    }

    /// Turns on the differential native-vs-PP oracle (checked mode): every
    /// subsequent handler invocation is replayed through the native
    /// protocol on a snapshot of this chip's protocol memory and diffed.
    /// Only meaningful for [`ControllerKind::FlashEmulated`] running the
    /// base coherence protocol (the native oracle does not implement the
    /// monitoring protocol's counter writes); no-op otherwise.
    pub fn enable_oracle(&mut self) {
        if self.kind == ControllerKind::FlashEmulated {
            self.oracle = Some(flash_check::OracleState::default());
        }
    }

    /// Handler invocations the oracle has diffed so far.
    pub fn oracle_checked(&self) -> u64 {
        self.oracle.as_ref().map_or(0, |o| o.checked)
    }

    /// Divergences the oracle has recorded (empty on a healthy run).
    pub fn oracle_violations(&self) -> &[flash_check::Violation] {
        self.oracle.as_ref().map_or(&[], |o| &o.violations)
    }

    /// The default handler program for emulated controllers, compiled at
    /// most once per codegen variant for the whole process.
    pub fn default_program(options: CodegenOptions) -> Arc<Program> {
        flash_protocol::handlers::compile_shared(options)
    }

    /// The directory header at a protocol-memory address (classification
    /// and test inspection).
    pub fn peek_header(&self, diraddr: u64) -> flash_protocol::DirHeader {
        flash_protocol::DirHeader(self.proto.load64(diraddr))
    }

    /// The request count recorded by the monitoring protocol for a
    /// directory header (see `flash_protocol::handlers::MONITORING_SOURCE`).
    pub fn monitor_count(&self, diraddr: u64) -> u64 {
        self.proto
            .load64(diraddr + (1 << flash_protocol::handlers::MON_SHIFT))
    }

    /// The sharer list recorded for a directory header (test inspection).
    ///
    /// # Panics
    ///
    /// Panics if the list is cyclic (a corrupted directory).
    pub fn sharer_nodes(&self, diraddr: u64) -> Vec<NodeId> {
        let mut out = Vec::new();
        let mut idx = self.peek_header(diraddr).head();
        let mut guard = 0;
        while idx != 0 {
            let e =
                flash_protocol::PtrEntry(self.proto.load64(flash_protocol::dir::entry_addr(idx)));
            out.push(e.node());
            idx = e.next();
            guard += 1;
            assert!(guard < 100_000, "cyclic sharer list at {diraddr:#x}");
        }
        out
    }

    /// Classifies a read miss against current directory state and counts
    /// it (call before [`MagicChip::process`] for `PiGet`/`NGet` at the
    /// home with a known requester). Returns the class, or `None` for a
    /// pending line (the retry that gets served will be classified).
    pub fn classify_read(&mut self, msg: &InMsg, requester: NodeId) -> Option<ReadClass> {
        let h = self.peek_header(msg.diraddr);
        if h.pending() {
            return None; // the retry that gets served will be classified
        }
        let local = requester == msg.home;
        let c = &mut self.stats.read_class;
        let class = if !h.dirty() {
            if local {
                c.local_clean += 1;
                ReadClass::LocalClean
            } else {
                c.remote_clean += 1;
                ReadClass::RemoteClean
            }
        } else if local {
            c.local_dirty_remote += 1;
            ReadClass::LocalDirtyRemote
        } else if h.owner() == msg.home {
            c.remote_dirty_home += 1;
            ReadClass::RemoteDirtyHome
        } else {
            c.remote_dirty_remote += 1;
            ReadClass::RemoteDirtyRemote
        };
        Some(class)
    }

    /// Processes one incoming message that became available to the inbox
    /// at `arrival` (PI/NI inbound latency already charged by the caller).
    /// Returns everything the chip emits, with timestamps.
    ///
    /// Allocates a fresh vector per call; the machine's hot path uses
    /// [`MagicChip::process_into`] with a reused scratch buffer instead.
    pub fn process(&mut self, msg: InMsg, arrival: Cycle) -> Vec<Emission> {
        let mut out = Vec::new();
        self.process_into(msg, arrival, &mut out);
        out
    }

    /// [`MagicChip::process`] into a caller-owned buffer (cleared first),
    /// so a steady-state event loop pays zero allocations per message
    /// once the buffer has grown to the protocol's maximum fan-out.
    pub fn process_into(&mut self, mut msg: InMsg, arrival: Cycle, out: &mut Vec<Emission>) {
        out.clear();
        self.stats.messages += 1;
        if self.observe {
            self.obs_parts.clear();
            self.obs_invocation = None;
        }
        let local = msg.home == self.node;
        let entry = self.jump.lookup(msg.mtype, local);
        let t_ready = arrival + self.timings.inbox_arb + self.timings.jump;

        // Speculative memory initiation (inbox-issued, before the PP runs).
        // A full memory queue forfeits the opportunity instead of stalling
        // the inbox (Table 3.1's queue limit, without head-of-line
        // blocking the whole dispatch pipeline).
        let mut data_mem: Option<Cycle> = None;
        if self.kind != ControllerKind::Ideal && self.speculation && entry.speculative && local {
            if let Some(r) = self.mem.try_request(t_ready) {
                data_mem = Some(r.first_dword);
                msg.spec = true;
                self.stats.spec_issued += 1;
            }
        }

        match self.kind {
            ControllerKind::Ideal => {
                self.process_native(msg, t_ready, 0, data_mem, entry.handler, true, out)
            }
            ControllerKind::FlashCostTable => {
                let start = t_ready.max(self.pp_free);
                let wait = start - t_ready;
                self.stats.inbox_wait_cycles += wait;
                self.stats.inbox_wait_max = self.stats.inbox_wait_max.max(wait);
                self.process_native(msg, start, wait, data_mem, entry.handler, false, out)
            }
            ControllerKind::FlashEmulated => {
                self.process_emulated(msg, arrival, t_ready, data_mem, entry.handler, out)
            }
        }
    }

    /// Native-protocol processing (ideal and cost-table modes). `wait` is
    /// the inbox queueing delay already folded into `start` by the caller
    /// (0 for ideal), passed along for attribution.
    #[allow(clippy::too_many_arguments)]
    fn process_native(
        &mut self,
        msg: InMsg,
        start: Cycle,
        wait: u64,
        mut data_mem: Option<Cycle>,
        handler: &'static str,
        ideal: bool,
        emissions: &mut Vec<Emission>,
    ) {
        self.out_buf.clear();
        let mut out = std::mem::take(&mut self.out_buf);
        let costs = self.costs; // Copy: sidesteps the &mut self.proto borrow
        let res = native::handle(&msg, &mut self.proto, &costs, &mut out);
        debug_assert_eq!(res.handler, handler, "jump table vs native dispatch");
        // Occupancy: zero for ideal, cost table for FLASH.
        let occ = if ideal { 0 } else { res.cost };
        let effect_time = if ideal {
            start
        } else {
            let cost = res.cost;
            self.pp.record_busy(cost);
            self.pp_free = start + cost;
            let e = self.stats.handlers.entry(res.handler).or_default();
            e.0 += 1;
            e.1 += cost;
            start + cost
        };
        if self.observe {
            self.obs_invocation = Some(ObsInvocation {
                handler: res.handler,
                start,
                occupied: occ,
            });
        }
        let inbox = self.timings.inbox_arb + self.timings.jump;
        let mut used_mem_data = false;
        for o in out.drain(..) {
            match o {
                Outgoing::MemRead(_) => {
                    let r = self.mem.request(effect_time);
                    data_mem = Some(r.first_dword);
                }
                Outgoing::MemWrite(_) => {
                    self.mem.request(effect_time);
                }
                Outgoing::Net(m) => {
                    let data = self.data_ready(
                        m.with_data,
                        msg.with_data,
                        start,
                        data_mem,
                        &mut used_mem_data,
                    );
                    let header = effect_time + self.timings.outbox + self.timings.ni_out;
                    let at = match data {
                        Some(d) => header.max(d + self.timings.buffer_stage),
                        None => header,
                    };
                    if self.observe {
                        self.obs_parts.push(ObsParts {
                            inbox,
                            wait,
                            occ,
                            mem: at - header,
                            out: self.timings.outbox + self.timings.ni_out,
                        });
                    }
                    emissions.push(Emission::Net { at, msg: m });
                }
                Outgoing::Proc(pm) => {
                    let data = self.data_ready(
                        pm.with_data,
                        msg.with_data,
                        start,
                        data_mem,
                        &mut used_mem_data,
                    );
                    let header = effect_time + self.timings.outbox + self.timings.pi_out;
                    let base = match data {
                        Some(d) => header.max(d + self.timings.buffer_stage),
                        None => header,
                    };
                    let at = base + self.timings.pi_arb_word;
                    if self.observe {
                        self.obs_parts.push(ObsParts {
                            inbox,
                            wait,
                            occ,
                            mem: base - header,
                            out: self.timings.outbox
                                + self.timings.pi_out
                                + self.timings.pi_arb_word,
                        });
                    }
                    emissions.push(Emission::Proc { at, msg: pm });
                }
            }
        }
        self.out_buf = out;
        if msg.spec && !used_mem_data {
            self.stats.spec_useless += 1;
        }
    }

    /// Detailed processing on the emulated PP.
    fn process_emulated(
        &mut self,
        msg: InMsg,
        arrival: Cycle,
        t_ready: Cycle,
        mut data_mem: Option<Cycle>,
        handler: &'static str,
        emissions: &mut Vec<Emission>,
    ) {
        // Borrow (not clone) the shared program: an `Arc` bump per
        // invocation is a contended atomic on multi-shard runs.
        let program = self.program.as_ref().expect("emulated mode has a program");
        let entry_pc = match self.entry_pcs.get(handler) {
            Some(&pc) => pc,
            None => {
                let pc = program
                    .entry(handler)
                    .unwrap_or_else(|| panic!("program lacks handler {handler}"));
                self.entry_pcs.insert(handler, pc);
                pc
            }
        };
        let pp_start = t_ready.max(self.pp_free);
        let wait = pp_start - t_ready;
        self.stats.inbox_wait_cycles += wait;
        self.stats.inbox_wait_max = self.stats.inbox_wait_max.max(wait);

        // Instruction fetch: only cold misses are possible (the handler
        // set fits the 32 KB MAGIC instruction cache, paper §5.3).
        let mut pre_drift = 0u64;
        if matches!(
            self.icache.access(entry_pc as u64 * 8, false),
            flash_mem::Access::Miss { .. }
        ) {
            self.stats.icache_cold_misses += 1;
            let r = self.mem.request(pp_start);
            pre_drift += (r.first_dword - pp_start) + self.timings.mdc_fill_extra;
        }

        // Checked mode: snapshot the protocol memory so the oracle can
        // replay this invocation through the native protocol afterwards.
        let pre = self.oracle.as_ref().map(|_| self.proto.clone());

        // Scratch state reused across invocations (`take` sidesteps the
        // `&mut self` borrow while the environment holds `self.proto`).
        let mut regs = std::mem::take(&mut self.pp_regs);
        let mut sink = std::mem::take(&mut self.pp_sink);
        let res = {
            let fields = fields_of(&msg);
            let mut env = MdcEnv::new(&mut self.proto, self.mdc.as_mut(), fields);
            match (self.backend, self.translated.as_ref()) {
                (PpBackend::Translated, Some(t)) => t.run_into(
                    entry_pc,
                    &mut env,
                    emu::DEFAULT_PAIR_BUDGET,
                    &mut regs,
                    &mut sink,
                ),
                _ => emu::run_into(
                    program,
                    entry_pc,
                    &mut env,
                    emu::DEFAULT_PAIR_BUDGET,
                    &mut regs,
                    &mut sink,
                ),
            }
        };
        let (exec_cycles, run_stats) = res.unwrap_or_else(|e| {
            let h = flash_protocol::DirHeader(self.proto.load64(msg.diraddr));
            let mut idx = h.head();
            let mut walk = Vec::new();
            for _ in 0..20 {
                if idx == 0 {
                    break;
                }
                let e = flash_protocol::PtrEntry(
                    self.proto.load64(flash_protocol::dir::entry_addr(idx)),
                );
                walk.push((idx, e.node().0, e.next()));
                idx = e.next();
            }
            panic!(
                "handler {handler} failed: {e}; msg {:?} hdr {:#x} walk {walk:?}",
                msg.mtype, h.0
            )
        });
        self.stats.pp.merge(&run_stats);

        if let Some(pre) = pre {
            let emu_out: Vec<Outgoing> = sink
                .effects()
                .iter()
                .filter_map(|te| effect_to_outgoing(&te.kind, self.node))
                .collect();
            let verdict = flash_check::diff_invocation(
                &msg,
                pre,
                &self.proto,
                &emu_out,
                handler,
                self.node.0,
            );
            let st = self.oracle.as_mut().expect("oracle enabled");
            st.checked += 1;
            if let Some(v) = verdict {
                st.violations.push(v);
            }
        }

        let mut drift = pre_drift;
        let mut used_mem_data = false;
        for te in sink.effects() {
            let t_e = pp_start + te.offset + drift;
            match te.kind {
                EffectKind::Mdc(m) => {
                    // The fill goes first (the PP is stalled on it); the
                    // dirty victim's writeback is posted behind it.
                    let r = self.mem.request(t_e);
                    if m.victim_writeback.is_some() {
                        self.mem.request(t_e);
                    }
                    let penalty = (r.first_dword - t_e) + self.timings.mdc_fill_extra;
                    drift += penalty;
                    self.stats.mdc_stall_cycles += penalty;
                }
                EffectKind::MemOp { .. } | EffectKind::Send(_) => {
                    let Some(out) = effect_to_outgoing(&te.kind, self.node) else {
                        continue;
                    };
                    match out {
                        Outgoing::MemRead(_) => {
                            let r = self.mem.request(t_e);
                            drift += r.accept - t_e; // PP stalls for queue space
                            data_mem = Some(r.first_dword);
                        }
                        Outgoing::MemWrite(_) => {
                            let r = self.mem.request(t_e);
                            drift += r.accept - t_e;
                        }
                        Outgoing::Net(m) => {
                            let data = self.data_ready(
                                m.with_data,
                                msg.with_data,
                                arrival,
                                data_mem,
                                &mut used_mem_data,
                            );
                            let header = t_e + self.timings.outbox + self.timings.ni_out;
                            let at = match data {
                                Some(d) => header.max(d + self.timings.buffer_stage),
                                None => header,
                            };
                            if self.observe {
                                self.obs_parts.push(ObsParts {
                                    inbox: self.timings.inbox_arb + self.timings.jump,
                                    wait,
                                    occ: te.offset,
                                    mem: drift + (at - header),
                                    out: self.timings.outbox + self.timings.ni_out,
                                });
                            }
                            emissions.push(Emission::Net { at, msg: m });
                        }
                        Outgoing::Proc(pm) => {
                            let data = self.data_ready(
                                pm.with_data,
                                msg.with_data,
                                arrival,
                                data_mem,
                                &mut used_mem_data,
                            );
                            let header = t_e + self.timings.outbox + self.timings.pi_out;
                            let base = match data {
                                Some(d) => header.max(d + self.timings.buffer_stage),
                                None => header,
                            };
                            let at = base + self.timings.pi_arb_word;
                            if self.observe {
                                self.obs_parts.push(ObsParts {
                                    inbox: self.timings.inbox_arb + self.timings.jump,
                                    wait,
                                    occ: te.offset,
                                    mem: drift + (base - header),
                                    out: self.timings.outbox
                                        + self.timings.pi_out
                                        + self.timings.pi_arb_word,
                                });
                            }
                            emissions.push(Emission::Proc { at, msg: pm });
                        }
                    }
                }
            }
        }

        let occupied = exec_cycles + drift;
        if self.observe {
            self.obs_invocation = Some(ObsInvocation {
                handler,
                start: pp_start,
                occupied,
            });
        }
        self.pp.record_busy(occupied);
        self.pp_free = pp_start + occupied;
        let e = self.stats.handlers.entry(handler).or_default();
        e.0 += 1;
        e.1 += occupied;
        if msg.spec && !used_mem_data {
            self.stats.spec_useless += 1;
        }
        self.pp_regs = regs;
        self.pp_sink = sink;
    }

    fn data_ready(
        &self,
        send_with_data: bool,
        incoming_had_data: bool,
        arrival: Cycle,
        data_mem: Option<Cycle>,
        used_mem_data: &mut bool,
    ) -> Option<Cycle> {
        if !send_with_data {
            return None;
        }
        if incoming_had_data {
            Some(arrival)
        } else {
            *used_mem_data = true;
            Some(data_mem.unwrap_or(arrival))
        }
    }

    /// Controller statistics.
    pub fn stats(&self) -> &MagicStats {
        &self.stats
    }

    /// Mutable statistics (for the machine layer's classification hooks).
    pub fn stats_mut(&mut self) -> &mut MagicStats {
        &mut self.stats
    }

    /// The node's memory controller.
    pub fn memory(&self) -> &MemController {
        &self.mem
    }

    /// Delays the protocol processor: no handler may begin before
    /// `until`. A fault-injection hook (PP slowdown burst). Timing-only —
    /// the Ideal controller has zero handler occupancy and ignores
    /// `pp_free`, so bursts do not perturb it; this mirrors the paper's
    /// framing where only the flexible controller pays occupancy costs.
    pub fn stall_pp(&mut self, until: Cycle) {
        if until > self.pp_free {
            self.pp_free = until;
        }
    }

    /// Blocks this node's memory controller until `until` (DRAM
    /// refresh-style stall; see [`MemController::block_until`]).
    pub fn block_memory(&mut self, until: Cycle) {
        self.mem.block_until(until);
    }

    /// The MAGIC data cache model, when enabled.
    pub fn mdc(&self) -> Option<&MagicCache> {
        self.mdc.as_ref()
    }

    /// PP occupancy fraction over a run ending at `end`.
    pub fn pp_occupancy(&self, end: Cycle) -> f64 {
        self.pp.occupancy(end)
    }

    /// Total PP busy cycles.
    pub fn pp_busy_cycles(&self) -> u64 {
        self.pp.busy_cycles()
    }

    /// Protocol memory, read-only (directory audits, checked mode).
    pub fn proto_mem(&self) -> &ProtoMem {
        &self.proto
    }

    /// Protocol memory (tests and custom setups).
    pub fn proto_mem_mut(&mut self) -> &mut ProtoMem {
        &mut self.proto
    }

    /// The controller kind.
    pub fn kind(&self) -> ControllerKind {
        self.kind
    }

    /// This chip's node id.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Replaces the jump table (protocol experimentation; the flexibility
    /// showcase).
    pub fn set_jump_table(&mut self, jump: JumpTable) {
        self.jump = jump;
    }

    /// Computes the home-relative directory address for `addr` (inbox
    /// header preprocessing).
    pub fn dir_addr(addr: Addr) -> u64 {
        flash_protocol::dir_addr(addr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flash_protocol::msg::MsgType;

    fn mk_chip(kind: ControllerKind) -> MagicChip {
        let program = match kind {
            ControllerKind::FlashEmulated => {
                Some(MagicChip::default_program(CodegenOptions::magic()))
            }
            _ => None,
        };
        MagicChip::new(
            kind,
            NodeId(0),
            program,
            JumpTable::dpa_protocol(),
            MemTiming::default(),
            true,
            true,
        )
    }

    fn local_get(addr: u64) -> InMsg {
        InMsg {
            mtype: MsgType::PiGet,
            src: NodeId(0),
            addr: Addr::new(addr),
            aux: 0,
            spec: false,
            self_node: NodeId(0),
            home: NodeId(0),
            diraddr: flash_protocol::dir_addr(Addr::new(addr)),
            with_data: false,
        }
    }

    #[test]
    fn ideal_local_read_clean_takes_24_cycles_total() {
        // Paper Table 3.3: ideal local clean read = 24 cycles, of which
        // 7 are the processor-side path (miss detect 5 + bus 1 + PI in 1).
        let mut chip = mk_chip(ControllerKind::Ideal);
        let ems = chip.process(local_get(0x1000), Cycle::new(7));
        assert_eq!(ems.len(), 1);
        match ems[0] {
            Emission::Proc { at, msg } => {
                assert_eq!(msg.mtype, MsgType::PPut);
                assert_eq!(at, Cycle::new(24), "paper Table 3.3");
            }
            ref other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn flash_local_read_clean_takes_27_cycles_total() {
        let mut chip = mk_chip(ControllerKind::FlashEmulated);
        let ems = chip.process(local_get(0x1000), Cycle::new(7));
        let at = match ems[..] {
            [Emission::Proc { at, msg }] => {
                assert_eq!(msg.mtype, MsgType::PPut);
                at
            }
            ref other => panic!("unexpected {other:?}"),
        };
        // Paper Table 3.3: 27 cycles. Table 3.3 assumes warm MAGIC caches
        // (the steady state: MDC miss rate < 1%), so warm the icache and
        // the MDC line holding this header first with a neighbouring line.
        let mut warm = mk_chip(ControllerKind::FlashEmulated);
        warm.process(local_get(0x1080), Cycle::new(7));
        let ems2 = warm.process(local_get(0x1000), Cycle::new(1007));
        let at2 = ems2[0].at().raw() - 1000;
        assert!(
            (25..=29).contains(&at2),
            "warm FLASH local clean read took {at2} (cold {at})"
        );
    }

    #[test]
    fn speculation_counts_useless_reads() {
        let mut chip = mk_chip(ControllerKind::FlashEmulated);
        // Make the line dirty-remote so the read forwards (spec useless).
        let da = flash_protocol::dir_addr(Addr::new(0x2000));
        {
            let mut d = Directory::new(chip.proto_mem_mut());
            d.set_header(
                da,
                flash_protocol::DirHeader::default()
                    .with_dirty(true)
                    .with_owner(NodeId(3)),
            );
        }
        let ems = chip.process(local_get(0x2000), Cycle::new(7));
        assert!(matches!(ems[0], Emission::Net { msg, .. } if msg.mtype == MsgType::NFwdGet));
        assert_eq!(chip.stats().spec_issued, 1);
        assert_eq!(chip.stats().spec_useless, 1);
        // A clean read is useful speculation.
        chip.process(local_get(0x3000), Cycle::new(100));
        assert_eq!(chip.stats().spec_issued, 2);
        assert_eq!(chip.stats().spec_useless, 1);
    }

    #[test]
    fn pp_occupancy_accumulates_and_serializes() {
        let mut chip = mk_chip(ControllerKind::FlashEmulated);
        chip.process(local_get(0x1000), Cycle::new(7));
        let busy1 = chip.pp_busy_cycles();
        assert!(busy1 > 0);
        // A second message arriving while the PP is busy is delayed.
        let ems = chip.process(local_get(0x5000), Cycle::new(7));
        assert!(ems[0].at() > Cycle::new(27));
        assert!(chip.pp_busy_cycles() > busy1);
    }

    #[test]
    fn cost_table_mode_charges_table_3_4() {
        let mut chip = mk_chip(ControllerKind::FlashCostTable);
        chip.process(local_get(0x1000), Cycle::new(7));
        assert_eq!(chip.pp_busy_cycles(), 11, "read from memory = 11 cycles");
        let (count, cycles) = chip.stats().handlers["pi_get_local"];
        assert_eq!((count, cycles), (1, 11));
    }

    #[test]
    fn classification_counts_reads() {
        let mut chip = mk_chip(ControllerKind::FlashEmulated);
        let m = local_get(0x1000);
        chip.classify_read(&m, NodeId(0));
        assert_eq!(chip.stats().read_class.local_clean, 1);
        // Dirty remote:
        let da = flash_protocol::dir_addr(Addr::new(0x2000));
        {
            let mut d = Directory::new(chip.proto_mem_mut());
            d.set_header(
                da,
                flash_protocol::DirHeader::default()
                    .with_dirty(true)
                    .with_owner(NodeId(3)),
            );
        }
        let m2 = local_get(0x2000);
        chip.classify_read(&m2, NodeId(5));
        assert_eq!(chip.stats().read_class.remote_dirty_remote, 1);
        chip.classify_read(&m2, NodeId(0));
        assert_eq!(chip.stats().read_class.local_dirty_remote, 1);
    }

    #[test]
    fn inbox_wait_accumulates_when_pp_is_busy() {
        let mut chip = mk_chip(ControllerKind::FlashEmulated);
        chip.process(local_get(0x1000), Cycle::new(7));
        assert_eq!(
            chip.stats().inbox_wait_cycles,
            0,
            "first message never waits"
        );
        // Arrives while the PP is still busy with the first.
        chip.process(local_get(0x5000), Cycle::new(7));
        assert!(chip.stats().inbox_wait_cycles > 0);
        assert!(chip.stats().inbox_wait_max >= chip.stats().inbox_wait_cycles / 2);
    }

    /// NaN-guard pin (Issue 5 satellite): a zero-length run must report
    /// 0.0 PP occupancy, not NaN, even after the PP accumulated busy
    /// cycles.
    #[test]
    fn pp_occupancy_zero_length_run_is_zero_not_nan() {
        let mut chip = mk_chip(ControllerKind::FlashEmulated);
        chip.process(local_get(0x1000), Cycle::new(7));
        assert!(chip.pp_busy_cycles() > 0);
        let occ = chip.pp_occupancy(Cycle::ZERO);
        assert_eq!(occ, 0.0);
        assert!(!occ.is_nan());
    }

    /// The observability invariant: for every emission of an observed
    /// `process` call, the recorded parts sum exactly to
    /// `emission.at() − arrival`, on all three controller kinds, including
    /// under PP queueing and MDC stalls.
    #[test]
    fn obs_parts_sum_exactly_to_emission_minus_arrival() {
        for kind in [
            ControllerKind::FlashEmulated,
            ControllerKind::FlashCostTable,
            ControllerKind::Ideal,
        ] {
            let mut chip = mk_chip(kind);
            chip.set_observe(true);
            // Cold then warm, plus a back-to-back pair to exercise waits.
            for (addr, t) in [(0x1000, 7), (0x1080, 7), (0x5000, 8), (0x1000, 500)] {
                let arrival = Cycle::new(t);
                let ems = chip.process(local_get(addr), arrival);
                let parts = chip.obs_parts();
                assert_eq!(ems.len(), parts.len(), "{kind:?}: parallel vectors");
                for (e, p) in ems.iter().zip(parts) {
                    assert_eq!(
                        p.total(),
                        e.at() - arrival,
                        "{kind:?} @{addr:#x}: {p:?} vs {:?}",
                        e.at()
                    );
                }
                let inv = chip.obs_invocation().expect("invocation recorded");
                if kind == ControllerKind::Ideal {
                    assert_eq!(inv.occupied, 0, "ideal PP takes zero time");
                }
            }
        }
    }

    /// Observation must be timing-invisible: the same message sequence
    /// produces identical emissions with and without `set_observe`.
    #[test]
    fn observe_does_not_perturb_chip_timing() {
        for kind in [
            ControllerKind::FlashEmulated,
            ControllerKind::FlashCostTable,
            ControllerKind::Ideal,
        ] {
            let mut plain = mk_chip(kind);
            let mut observed = mk_chip(kind);
            observed.set_observe(true);
            for (addr, t) in [(0x1000, 7), (0x2000, 9), (0x1000, 400)] {
                let a = plain.process(local_get(addr), Cycle::new(t));
                let b = observed.process(local_get(addr), Cycle::new(t));
                assert_eq!(a, b, "{kind:?}: emissions must match");
            }
            assert_eq!(plain.pp_busy_cycles(), observed.pp_busy_cycles());
        }
    }

    /// The backend is a host-performance knob: the same message sequence
    /// must produce identical emissions, busy cycles, and PP statistics
    /// under the emulator and the translated fast path, including remote
    /// traffic, MDC misses, and back-to-back PP queueing.
    #[test]
    fn backends_produce_identical_emissions() {
        let mut emu = mk_chip(ControllerKind::FlashEmulated);
        let mut fast = mk_chip(ControllerKind::FlashEmulated);
        emu.set_pp_backend(PpBackend::Emulated);
        fast.set_pp_backend(PpBackend::Translated);

        let remote = |addr: u64, mtype: MsgType, src: u16| InMsg {
            mtype,
            src: NodeId(src),
            addr: Addr::new(addr),
            aux: flash_protocol::fields::aux::pack(NodeId(src), mtype, NodeId(0)),
            spec: false,
            self_node: NodeId(0),
            home: NodeId(0),
            diraddr: flash_protocol::dir_addr(Addr::new(addr)),
            with_data: false,
        };
        let seq = [
            (local_get(0x1000), 7),
            (remote(0x1000, MsgType::NGet, 3), 40),
            (remote(0x1000, MsgType::NGetX, 5), 60),
            (local_get(0x5000), 61), // arrives while the PP is busy
            (remote(0x2000, MsgType::NGet, 2), 300),
            (local_get(0x1000), 900),
        ];
        for (msg, t) in seq {
            let a = emu.process(msg, Cycle::new(t));
            let b = fast.process(msg, Cycle::new(t));
            assert_eq!(a, b, "emissions diverged at cycle {t}");
        }
        assert_eq!(emu.pp_busy_cycles(), fast.pp_busy_cycles());
        assert_eq!(emu.stats().pp, fast.stats().pp, "RunStats diverged");
        assert_eq!(emu.stats().handlers, fast.stats().handlers);
        assert_eq!(emu.stats().mdc_stall_cycles, fast.stats().mdc_stall_cycles);
        assert_eq!(
            emu.proto_mem_mut().first_difference(fast.proto_mem_mut()),
            None,
            "protocol memories diverged"
        );
    }

    #[test]
    fn mdc_misses_stall_the_pp() {
        let mut chip = mk_chip(ControllerKind::FlashEmulated);
        // First access to a header line misses in the MDC.
        chip.process(local_get(0x1000), Cycle::new(7));
        assert!(chip.stats().mdc_stall_cycles > 0);
        assert!(chip.mdc().unwrap().read_misses() > 0);
        let stall1 = chip.stats().mdc_stall_cycles;
        // Same header line again: hit, no new stall.
        chip.process(local_get(0x1080), Cycle::new(200));
        assert_eq!(chip.stats().mdc_stall_cycles, stall1);
    }
}
