//! The MAGIC node controller.
//!
//! "Every FLASH node contains an off-the-shelf microprocessor, its
//! secondary cache, a portion of the machine's distributed memory, and a
//! flexible node controller called MAGIC" (paper §2). This crate models
//! the chip: the inbox (arbitration, jump-table lookup, speculative memory
//! initiation), the protocol processor (either emulated handler code, a
//! table-driven cost model, or the paper's zero-time *ideal* controller),
//! the MAGIC data and instruction caches, the outbox, and the PI/NI
//! outbound paths.

pub mod chip;
pub mod env;

pub use chip::{
    ControllerKind, Emission, MagicChip, MagicStats, MagicTimings, ObsInvocation, ObsParts,
    PpBackend, ReadClass, ReadClassCounts,
};
pub use env::MdcEnv;
