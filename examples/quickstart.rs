//! Quickstart: build a FLASH machine, run a workload, read the report.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use flash::{Machine, MachineConfig, MachineReport, RunResult};
use flash_workloads::{Fft, Workload};

fn main() {
    // An 8-node FLASH machine: each node has a 400-MIPS processor with a
    // 1 MB cache, a MAGIC controller running the dynamic-pointer-allocation
    // coherence protocol on its emulated protocol processor, memory, and a
    // mesh network port.
    let procs = 8;
    let cfg = MachineConfig::flash(procs);

    // A reduced-size FFT (the paper's 64K-point transform at scale 8).
    let fft = Fft::scaled(procs, 8);
    let mut machine = Machine::new(cfg, fft.streams());

    let RunResult::Completed { exec_cycles } = machine.run(1_000_000_000) else {
        panic!("budget exhausted");
    };
    let report = MachineReport::from_machine(&machine);

    println!("FFT on {procs}-node FLASH:");
    println!(
        "  execution time     {exec_cycles} cycles ({} us)",
        exec_cycles / 100
    );
    println!("  cache miss rate    {:.2}%", report.miss_rate * 100.0);
    let b = report.breakdown;
    println!(
        "  time breakdown     busy {:.0}%  cache-contention {:.0}%  read {:.0}%  write {:.0}%  sync {:.0}%",
        b[0] * 100.0,
        b[1] * 100.0,
        b[2] * 100.0,
        b[3] * 100.0,
        b[4] * 100.0
    );
    println!(
        "  PP occupancy       {:.1}% avg / {:.1}% max",
        report.pp_occupancy.0 * 100.0,
        report.pp_occupancy.1 * 100.0
    );
    println!(
        "  protocol handlers  {} invocations, dual-issue efficiency {:.2}",
        report.pp_stats.invocations,
        report.pp_stats.dual_issue_efficiency()
    );
    let cf = report.class_fractions();
    println!(
        "  read misses        {:.0}% local clean, {:.0}% remote clean, {:.0}% dirty at home",
        cf[0] * 100.0,
        cf[2] * 100.0,
        cf[3] * 100.0
    );
}
