//! Flexibility showcase: write a protocol handler in PP assembly and
//! reprogram the MAGIC jump table to run it.
//!
//! The whole point of a programmable node controller is that protocol
//! behaviour is software. This example replaces the replacement-hint
//! handler with a "lazy hints" variant that skips the sharer-list walk
//! entirely (trading stale sharer entries — and therefore spurious
//! invalidations later — for lower PP occupancy), then measures the
//! occupancy difference on the same message sequence.
//!
//! ```sh
//! cargo run --release --example custom_protocol
//! ```

use flash_engine::{Addr, Cycle, NodeId};
use flash_magic::{ControllerKind, MagicChip};
use flash_mem::MemTiming;
use flash_pp::CodegenOptions;
use flash_protocol::fields::{asm_prologue, aux};
use flash_protocol::{dir_addr, InMsg, JumpEntry, JumpTable, MsgType};
use std::sync::Arc;

/// The custom handler: acknowledge the hint without touching the list.
const LAZY_HINT: &str = "
lazy_hint:
    switch
";

fn chip_with(program: Arc<flash_pp::Program>, jump: JumpTable) -> MagicChip {
    MagicChip::new(
        ControllerKind::FlashEmulated,
        NodeId(0),
        Some(program),
        jump,
        MemTiming::default(),
        true,
        true,
    )
}

fn hint_msg(src: u16, addr: u64) -> InMsg {
    let a = Addr::new(addr);
    InMsg {
        mtype: MsgType::NRplHint,
        src: NodeId(src),
        addr: a,
        aux: aux::pack(NodeId(src), MsgType::NRplHint, NodeId(0)),
        spec: false,
        self_node: NodeId(0),
        home: NodeId(0),
        diraddr: dir_addr(a),
        with_data: false,
    }
}

fn get_msg(req: u16, addr: u64) -> InMsg {
    let a = Addr::new(addr);
    InMsg {
        mtype: MsgType::NGet,
        src: NodeId(req),
        addr: a,
        aux: aux::pack(NodeId(req), MsgType::NGet, NodeId(0)),
        spec: false,
        self_node: NodeId(0),
        home: NodeId(0),
        diraddr: dir_addr(a),
        with_data: false,
    }
}

fn main() {
    // Assemble the stock protocol plus our custom handler in one image.
    let src = format!(
        "{}\n{}\n{}",
        asm_prologue(),
        flash_protocol::handlers::SOURCE,
        LAZY_HINT
    );
    let program = Arc::new(flash_pp::build(&src, CodegenOptions::magic()).expect("assembles"));

    // Reprogram the jump table: replacement hints now dispatch to
    // `lazy_hint` instead of the list-walking `ni_hint`.
    let mut lazy_jump = JumpTable::dpa_protocol();
    lazy_jump.reprogram(
        MsgType::NRplHint,
        true,
        JumpEntry {
            handler: "lazy_hint",
            speculative: false,
        },
    );

    // Drive both chips through the same sequence: 8 nodes fetch a line
    // (building an 8-deep sharer list), then send replacement hints.
    for (label, jump) in [
        (
            "stock dynamic-pointer-allocation",
            JumpTable::dpa_protocol(),
        ),
        ("lazy-hints custom protocol", lazy_jump),
    ] {
        let mut chip = chip_with(program.clone(), jump);
        let mut t = Cycle::new(10);
        let addr = 0x4000;
        for req in 1..=8 {
            chip.process(get_msg(req, addr), t);
            t += 400;
        }
        let before = chip.pp_busy_cycles();
        for src_node in 1..=8 {
            chip.process(hint_msg(src_node, addr), t);
            t += 400;
        }
        let hint_cycles = chip.pp_busy_cycles() - before;
        let sharers_left = {
            let h = chip.peek_header(dir_addr(Addr::new(addr)));
            h.head() != 0
        };
        println!(
            "{label:38} hint processing {hint_cycles:4} PP cycles; sharer list {} after hints",
            if sharers_left { "non-empty" } else { "empty" }
        );
    }
    println!("\nThe custom handler trades directory precision for PP occupancy —");
    println!("exactly the kind of protocol experimentation MAGIC was built for (paper §1).");
}
