//! The paper's headline experiment: how much slower is FLASH's
//! programmable controller than an idealized hardwired one?
//!
//! Runs each application on the detailed FLASH machine (protocol handlers
//! emulated on the PP) and on the ideal machine (protocol operations in
//! zero time), and prints the slowdown — the paper's answer is 2%–12% for
//! optimized applications, with the MP3D communication stress test worse.
//!
//! ```sh
//! cargo run --release --example flexibility_gap          # reduced sizes
//! FLASH_FULL=1 cargo run --release --example flexibility_gap
//! ```

use flash::{compare, format_table, MachineConfig};
use flash_workloads::{by_name, run_workload, PARALLEL_APPS};

fn main() {
    let full = std::env::var("FLASH_FULL").is_ok_and(|v| v == "1");
    let scale = if full { 1 } else { 8 };
    let procs = 16;
    let mut rows = Vec::new();
    for name in PARALLEL_APPS.iter().chain(["OS"].iter()) {
        let p = if *name == "OS" { 8 } else { procs };
        let w = by_name(name, p, scale);
        let flash = run_workload(&MachineConfig::flash(p), w.as_ref());
        let ideal = run_workload(&MachineConfig::ideal(p), w.as_ref());
        let c = compare(&flash, &ideal);
        rows.push(vec![
            name.to_string(),
            c.flash_cycles.to_string(),
            c.ideal_cycles.to_string(),
            format!("+{:.1}%", c.slowdown_pct),
            format!("{:.1}%", flash.pp_occupancy.0 * 100.0),
        ]);
    }
    println!(
        "{}",
        format_table(
            &[
                "App",
                "FLASH cycles",
                "Ideal cycles",
                "Flexibility cost",
                "PP occupancy"
            ],
            &rows
        )
    );
    println!("paper: \"in most cases, FLASH is only 2%-12% slower than the idealized machine\"");
    println!("       (MP3D, the communication stress test, was 25% slower in the paper)");
    if !full {
        println!("note:  reduced problem sizes raise communication-to-computation ratios and");
        println!("       widen every gap; run with FLASH_FULL=1 for the paper-size comparison");
    }
}
