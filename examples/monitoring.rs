//! Flexibility showcase #2: performance monitoring in protocol software.
//!
//! "The flexibility of a programmable controller ... allows extensive and
//! accurate performance monitoring" (paper §1). This example runs FFT
//! with a protocol variant whose request handlers count accesses per
//! cache line in protocol memory, then reads the counters back to find
//! the hottest lines — and measures what the monitoring *costs*, since
//! the counters are maintained by real PP instructions through the MDC.
//!
//! ```sh
//! cargo run --release --example monitoring
//! ```

use flash::config::node_addr;
use flash::{dir_addr_of, Machine, MachineConfig, RunResult};
use flash_engine::NodeId;
use flash_workloads::{Fft, Workload};

fn run(cfg: MachineConfig) -> (u64, Machine) {
    let fft = Fft::scaled(8, 8);
    let mut m = Machine::new(cfg, fft.streams());
    let RunResult::Completed { exec_cycles } = m.run(1_000_000_000) else {
        panic!("stuck");
    };
    (exec_cycles, m)
}

fn main() {
    let (base_cycles, _) = run(MachineConfig::flash(8));
    let (mon_cycles, machine) = run(MachineConfig::flash(8).with_monitoring(true));

    println!("FFT on 8-node FLASH:");
    println!("  stock protocol      {base_cycles} cycles");
    println!(
        "  monitoring protocol {mon_cycles} cycles (+{:.2}% overhead)",
        (mon_cycles as f64 / base_cycles as f64 - 1.0) * 100.0
    );

    // Read the per-line request counters the handlers maintained.
    let mut hot: Vec<(u64, NodeId, u64)> = Vec::new();
    for node in 0..8u16 {
        let chip = &machine.chips()[node as usize];
        for line in 0..4096u64 {
            let a = node_addr(NodeId(node), line * 128);
            let count = chip.monitor_count(dir_addr_of(a));
            if count > 0 {
                hot.push((count, NodeId(node), line * 128));
            }
        }
    }
    hot.sort_unstable_by_key(|e| std::cmp::Reverse(e.0));
    println!("\n  hottest lines by home-request count (from protocol memory):");
    for (count, node, off) in hot.iter().take(8) {
        println!("    node {node} offset {off:#8x}: {count} requests");
    }
    let total: u64 = hot.iter().map(|h| h.0).sum();
    println!(
        "  {} monitored lines, {total} requests counted in-protocol",
        hot.len()
    );
}
