//! The paper's §4.3 insight: high PP occupancy hurts FLASH only when the
//! node's memory occupancy is simultaneously low.
//!
//! Two hot-spot experiments:
//! 1. FFT with every page allocated from node 0 — node 0's PP *and*
//!    memory are both saturated, so the FLASH/ideal gap stays small.
//! 2. The OS workload with the original (first-node) page placement —
//!    protocol traffic (writebacks, hints, kernel migration) loads node
//!    0's PP without loading its memory proportionally, so FLASH falls
//!    behind the ideal machine.
//!
//! ```sh
//! cargo run --release --example hotspot
//! ```

use flash::{compare, MachineConfig, MachineReport, RunResult};
use flash_workloads::{build_machine, Fft, OsWorkload, Workload};

fn run(cfg: &MachineConfig, w: &dyn Workload) -> (MachineReport, f64, f64) {
    let mut m = build_machine(cfg, w);
    let RunResult::Completed { .. } = m.run(flash_workloads::DEFAULT_BUDGET) else {
        panic!("stuck");
    };
    let end = flash_engine::Cycle::new(m.exec_cycles());
    let pp0 = m.chips()[0].pp_occupancy(end);
    let mem0 = m.chips()[0].memory().occupancy(end);
    (MachineReport::from_machine(&m), pp0, mem0)
}

fn main() {
    let procs = 16;

    let fft_hot = Fft::hotspot(procs, 2);
    let cfg_f = MachineConfig::flash(procs).with_cache_bytes(4 << 10);
    let cfg_i = MachineConfig::ideal(procs).with_cache_bytes(4 << 10);
    let (rf, pp0, mem0) = run(&cfg_f, &fft_hot);
    let (ri, _, _) = run(&cfg_i, &fft_hot);
    let c = compare(&rf, &ri);
    println!("FFT, all pages on node 0 (4 KB caches):");
    println!(
        "  node 0: PP occupancy {:.1}%, memory occupancy {:.1}%",
        pp0 * 100.0,
        mem0 * 100.0
    );
    println!(
        "  FLASH +{:.1}% over ideal — the PP latency hides behind the busy memory\n  (paper: only 2.6% despite 81.6% PP occupancy, memory at 67.7%)\n",
        c.slowdown_pct
    );

    let os = OsWorkload::scaled(8, 4).original_port();
    let (rf, pp0, mem0) = run(&MachineConfig::flash(8), &os);
    let (ri, _, _) = run(&MachineConfig::ideal(8), &os);
    let c = compare(&rf, &ri);
    println!("OS workload, original first-node page placement (8 processors):");
    println!(
        "  node 0: PP occupancy {:.1}%, memory occupancy {:.1}%",
        pp0 * 100.0,
        mem0 * 100.0
    );
    println!(
        "  FLASH +{:.1}% over ideal — occupancy with nothing to hide behind\n  (paper: 29% degradation; 81% max PP occupancy vs 33% max memory occupancy)",
        c.slowdown_pct
    );
}
