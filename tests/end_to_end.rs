//! Cross-crate integration tests: full machines running full workloads.

use flash::{compare, ControllerKind, MachineConfig, MachineReport};
use flash_workloads::{by_name, run_workload, PARALLEL_APPS};

fn run(app: &str, kind: ControllerKind, procs: u16, scale: u32) -> MachineReport {
    let w = by_name(app, procs, scale);
    let cfg = match kind {
        ControllerKind::FlashEmulated => MachineConfig::flash(procs),
        ControllerKind::FlashCostTable => MachineConfig::flash_cost_table(procs),
        ControllerKind::Ideal => MachineConfig::ideal(procs),
    };
    run_workload(&cfg, w.as_ref())
}

#[test]
fn flexibility_gap_is_bounded_for_optimized_apps() {
    // The headline result: FLASH is modestly slower than the ideal
    // machine for optimized applications (paper: 2%-12%; MP3D, the
    // communication stress test, 25%). At reduced scale the gaps widen
    // slightly, so the bounds here are generous but still meaningful.
    for (app, max_gap_pct) in [
        ("FFT", 30.0),
        ("LU", 15.0),
        ("Radix", 35.0),
        ("MP3D", 120.0),
    ] {
        let f = run(app, ControllerKind::FlashEmulated, 8, 16);
        let i = run(app, ControllerKind::Ideal, 8, 16);
        let c = compare(&f, &i);
        assert!(
            c.slowdown_pct >= -1.0 && c.slowdown_pct <= max_gap_pct,
            "{app}: FLASH +{:.1}% over ideal (expected 0..{max_gap_pct}%)",
            c.slowdown_pct
        );
    }
}

#[test]
fn cost_table_mode_tracks_emulated_mode() {
    // The table-driven controller is an approximation of the emulated
    // one: execution times should agree within a modest factor.
    for app in ["FFT", "Radix"] {
        let e = run(app, ControllerKind::FlashEmulated, 4, 16);
        let t = run(app, ControllerKind::FlashCostTable, 4, 16);
        let ratio = e.exec_cycles as f64 / t.exec_cycles.max(1) as f64;
        assert!(
            (0.6..=1.7).contains(&ratio),
            "{app}: emulated/table ratio {ratio:.2}"
        );
    }
}

#[test]
fn reports_are_internally_consistent() {
    for app in PARALLEL_APPS {
        let r = run(app, ControllerKind::FlashEmulated, 4, 32);
        let sum: f64 = r.breakdown.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6, "{app}: breakdown sums to {sum}");
        assert!(
            r.miss_rate > 0.0 && r.miss_rate < 0.5,
            "{app}: miss rate {}",
            r.miss_rate
        );
        assert!(r.read_class.total() > 0, "{app}: no classified reads");
        let cf: f64 = r.class_fractions().iter().sum();
        assert!(
            (cf - 1.0).abs() < 1e-6,
            "{app}: class fractions sum to {cf}"
        );
        assert!(r.pp_stats.invocations > 0, "{app}: no handler runs");
        assert!(
            r.pp_stats.dual_issue_efficiency() > 1.0 && r.pp_stats.dual_issue_efficiency() < 2.0,
            "{app}: dual-issue efficiency {:.2}",
            r.pp_stats.dual_issue_efficiency()
        );
        assert!(
            r.pp_stats.special_fraction() > 0.1,
            "{app}: special instruction use {:.2}",
            r.pp_stats.special_fraction()
        );
    }
}

#[test]
fn speculation_helps_or_is_neutral() {
    // Paper Table 5.1: "Speculation is always beneficial."
    for app in ["FFT", "Ocean"] {
        let w = by_name(app, 4, 16);
        let on = run_workload(&MachineConfig::flash(4), w.as_ref());
        let off = run_workload(&MachineConfig::flash(4).with_speculation(false), w.as_ref());
        assert!(
            off.exec_cycles as f64 >= on.exec_cycles as f64 * 0.99,
            "{app}: speculation hurt ({} on vs {} off)",
            on.exec_cycles,
            off.exec_cycles
        );
        assert!(on.spec.0 > 0, "{app}: no speculative reads issued");
        assert_eq!(off.spec.0, 0, "{app}: speculation leaked when disabled");
    }
}

#[test]
fn deoptimized_pp_is_slower() {
    // Paper §5.3: single-issue + no special instructions costs ~40% on
    // average (we assert direction and a sane magnitude).
    let w = by_name("FFT", 4, 16);
    let fast = run_workload(&MachineConfig::flash(4), w.as_ref());
    let slow = run_workload(
        &MachineConfig::flash(4).with_codegen(flash_pp::CodegenOptions::deoptimized()),
        w.as_ref(),
    );
    let d = slow.exec_cycles as f64 / fast.exec_cycles as f64 - 1.0;
    assert!(
        d > 0.0,
        "de-optimized PP must be slower (got {:.1}%)",
        d * 100.0
    );
    assert!(
        d < 2.0,
        "de-optimization cost implausibly large ({:.1}%)",
        d * 100.0
    );
    assert_eq!(
        slow.pp_stats.special, 0,
        "special instructions must be gone"
    );
}

#[test]
fn small_caches_raise_miss_rates_and_local_fraction() {
    // Paper §4.2: smaller caches add capacity misses, and the miss mix
    // shifts toward local for the applications with partitioned data.
    // Scale 4 keeps the per-processor partition (~70 KB across grids)
    // larger than the small cache, so capacity misses appear.
    let big = run("Ocean", ControllerKind::FlashEmulated, 4, 4);
    let w = by_name("Ocean", 4, 4);
    let small = run_workload(
        &MachineConfig::flash(4).with_cache_bytes(16 << 10),
        w.as_ref(),
    );
    assert!(
        small.miss_rate > big.miss_rate,
        "16 KB miss rate {:.3}% should exceed 1 MB {:.3}%",
        small.miss_rate * 100.0,
        big.miss_rate * 100.0
    );
}

#[test]
fn sixty_four_processor_run_completes() {
    let w = by_name("FFT", 64, 16);
    let r = run_workload(&MachineConfig::flash(64), w.as_ref());
    assert!(r.exec_cycles > 0);
    assert_eq!(r.nodes, 64);
}

#[test]
fn monitoring_protocol_counts_requests_with_overhead() {
    // Flexibility showcase: the counting protocol variant must (a) count
    // every home request, (b) cost measurable PP time, (c) not perturb
    // correctness.
    let w = by_name("FFT", 4, 16);
    let base = run_workload(&MachineConfig::flash(4), w.as_ref());
    let mon_cfg = MachineConfig::flash(4).with_monitoring(true);
    let mut m = flash_workloads::build_machine(&mon_cfg, w.as_ref());
    let flash::RunResult::Completed { exec_cycles } = m.run(flash_workloads::DEFAULT_BUDGET) else {
        panic!("stuck");
    };
    assert!(
        exec_cycles > base.exec_cycles,
        "monitoring must cost cycles ({exec_cycles} vs {})",
        base.exec_cycles
    );
    // Counters must roughly cover the classified read misses plus write
    // misses (every counted request passed a mon_* handler).
    let mon = flash::MachineReport::from_machine(&m);
    let mut counted = 0u64;
    for node in 0..4u16 {
        let chip = &m.chips()[node as usize];
        for line in 0..8192u64 {
            let a = flash::config::node_addr(flash_engine::NodeId(node), line * 128);
            counted += chip.monitor_count(flash::dir_addr_of(a));
        }
    }
    let misses = (mon.references as f64 * mon.miss_rate) as u64;
    assert!(
        counted as f64 > misses as f64 * 0.5,
        "counters ({counted}) must track request volume (~{misses} misses)"
    );
}
