//! Shard-invariance suite: the sharded conservative-time-window engine
//! must be an implementation detail. For any shard count — including the
//! degenerate serial case — the machine must produce byte-identical
//! reports, observation traces, checker verdicts, and fault statistics.
//!
//! These tests drive mixed read/write/lock/barrier workloads through
//! meshes of 16, 64, and 256 nodes and compare every observable artifact
//! against the single-shard baseline. A final test pins the big-mesh
//! health properties: a 1024-node run completes un-wedged inside the
//! node-scaled watchdog window with the timing wheel (not the overflow
//! heap) absorbing the event traffic.

use flash::config::default_watchdog_window;
use flash::{FaultPlan, Machine, MachineConfig, MachineReport, RunResult, DEFAULT_WATCHDOG_WINDOW};
use flash_cpu::{RefStream, SliceStream};

fn streams(nodes: u16, lines_per_node: u64, items: usize, seed: u64) -> Vec<Box<dyn RefStream>> {
    flash_check::stress_streams(nodes, lines_per_node, items, seed)
        .into_iter()
        .map(|v| Box::new(SliceStream::new(v)) as Box<dyn RefStream>)
        .collect()
}

/// Runs one configuration to completion and captures every externally
/// observable artifact as strings for byte comparison.
struct Artifacts {
    exec_cycles: u64,
    report: String,
    trace: Option<String>,
    violations: usize,
    faults: String,
}

fn run_one(cfg: MachineConfig, lines: u64, items: usize, seed: u64) -> Artifacts {
    let nodes = cfg.nodes;
    let shards = cfg.shards;
    let mut m = Machine::new(cfg, streams(nodes, lines, items, seed));
    let RunResult::Completed { exec_cycles } = m.run(2_000_000_000) else {
        panic!("{nodes}-node run with {shards} shard(s) did not complete");
    };
    Artifacts {
        exec_cycles,
        report: format!("{:?}", MachineReport::from_machine(&m)),
        trace: m.trace_json(),
        violations: m.check_violations().len(),
        faults: format!("{:?}", m.fault_stats()),
    }
}

/// The shard counts swept against the serial baseline: even, power-of-two,
/// and a prime that leaves unequal shard sizes.
const SWEEP: [usize; 3] = [2, 4, 7];

#[test]
fn reports_identical_across_shards() {
    // (nodes, lines/node, items/proc) — sized so the 256-node mesh stays
    // test-suite friendly while still crossing plenty of shard boundaries.
    for (nodes, lines, items) in [(16, 8, 48), (64, 4, 24), (256, 2, 10)] {
        let seed = 9;
        let base = run_one(
            MachineConfig::flash(nodes).with_shards(1),
            lines,
            items,
            seed,
        );
        for s in SWEEP {
            let got = run_one(
                MachineConfig::flash(nodes).with_shards(s),
                lines,
                items,
                seed,
            );
            assert_eq!(
                base.exec_cycles, got.exec_cycles,
                "{nodes} nodes: cycle count changed with {s} shards"
            );
            assert_eq!(
                base.report, got.report,
                "{nodes} nodes: report changed with {s} shards"
            );
        }
    }
}

#[test]
fn observe_trace_identical_across_shards() {
    // Checked + observed 16-node run: the attribution trace JSON and the
    // checker verdict must not depend on the shard count.
    let mk = |s| {
        run_one(
            MachineConfig::flash(16)
                .with_shards(s)
                .with_check(true)
                .with_observe(true),
            8,
            40,
            11,
        )
    };
    let base = mk(1);
    assert_eq!(base.violations, 0, "baseline must be coherent");
    let trace = base.trace.as_deref().expect("observer armed");
    for s in SWEEP {
        let got = mk(s);
        assert_eq!(got.violations, 0, "{s} shards: checker must stay quiet");
        assert_eq!(
            got.trace.as_deref(),
            Some(trace),
            "{s} shards: observe JSON diverged"
        );
        assert_eq!(base.report, got.report, "{s} shards: report diverged");
    }
}

#[test]
fn faulted_runs_identical_across_shards() {
    // Fault draws key off (class, entity), never the shard layout: the
    // injected schedule and its timing impact must be shard-invariant.
    let mk = |s| {
        run_one(
            MachineConfig::flash(16)
                .with_shards(s)
                .with_faults(FaultPlan::stress(23)),
            8,
            40,
            13,
        )
    };
    let base = mk(1);
    for s in SWEEP {
        let got = mk(s);
        assert_eq!(
            base.faults, got.faults,
            "{s} shards: fault schedule diverged"
        );
        assert_eq!(base.report, got.report, "{s} shards: report diverged");
        assert_eq!(base.exec_cycles, got.exec_cycles);
    }
}

#[test]
fn watchdog_default_scales_with_node_count() {
    assert_eq!(default_watchdog_window(4), DEFAULT_WATCHDOG_WINDOW);
    assert_eq!(default_watchdog_window(64), DEFAULT_WATCHDOG_WINDOW);
    assert_eq!(default_watchdog_window(256), DEFAULT_WATCHDOG_WINDOW * 4);
    assert_eq!(default_watchdog_window(1024), DEFAULT_WATCHDOG_WINDOW * 16);
    assert_eq!(
        MachineConfig::flash(1024).watchdog_window,
        DEFAULT_WATCHDOG_WINDOW * 16
    );
}

/// A *healthy* big-mesh workload: every node works mostly on its own
/// home lines with a read of its ring neighbor's line mixed in. Real
/// mesh traffic (remote gets, forwards, a bounded two-sharer inval
/// pattern) without the designed hot-spot of `stress_streams`, whose
/// "30% of all references target node 0" shape is a NACK-storm study,
/// not a steady state.
fn healthy_streams(nodes: u16, lines: u64) -> Vec<Box<dyn RefStream>> {
    use flash_cpu::WorkItem;
    use flash_engine::{Addr, LINE_BYTES};
    (0..nodes)
        .map(|p| {
            let mut items = Vec::new();
            for l in 0..lines {
                let own = Addr::new(((p as u64) << 32) | (l * LINE_BYTES));
                let neighbor = Addr::new((((p + 1) % nodes) as u64) << 32 | (l * LINE_BYTES));
                items.push(WorkItem::Read(own));
                items.push(WorkItem::Write(own));
                items.push(WorkItem::Read(neighbor));
                items.push(WorkItem::Busy(8));
            }
            Box::new(SliceStream::new(items)) as Box<dyn RefStream>
        })
        .collect()
}

#[test]
fn healthy_1024_node_run_completes_unwedged() {
    // Regression for the big-mesh wedge: a healthy 1024-node mesh must
    // finish inside the scaled watchdog window, and the transit-sized
    // timing wheel must absorb the traffic (the overflow heap is for the
    // rare genuinely far-future event, not the steady state).
    let mut m = Machine::new(
        MachineConfig::flash(1024)
            .with_shards(4)
            .with_cache_bytes(16 << 10),
        healthy_streams(1024, 4),
    );
    match m.run(2_000_000_000) {
        RunResult::Completed { .. } => {}
        other => panic!(
            "healthy 1024-node run must complete, got {other:?}\n{}",
            m.diagnose("1024-node regression")
        ),
    }
    let (wheel, heap) = m.queue_push_routing();
    assert!(
        wheel > heap * 10,
        "wheel must absorb the steady state at 1024 nodes (wheel {wheel}, heap {heap})"
    );
}
