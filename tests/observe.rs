//! Observed-mode integration tests: timing invisibility, the
//! sums-to-total attribution invariant, and the golden Chrome trace.

use flash::config::node_addr;
use flash::observe::ROW_NAMES;
use flash::{Machine, MachineConfig, MachineReport, RunResult};
use flash_cpu::{RefStream, SliceStream, WorkItem};
use flash_engine::NodeId;
use proptest::prelude::*;

fn run(cfg: MachineConfig, per_proc: Vec<Vec<WorkItem>>) -> Machine {
    let streams: Vec<Box<dyn RefStream>> = per_proc
        .into_iter()
        .map(|items| Box::new(SliceStream::new(items)) as Box<dyn RefStream>)
        .collect();
    let mut m = Machine::new(cfg, streams);
    match m.run(200_000_000) {
        RunResult::Completed { .. } => m,
        other => panic!("machine did not complete: {other:?}"),
    }
}

/// A 4-node workload that drives all five Table 3.3 read classes plus
/// writes and upgrades, with barriers sequencing the dirty-state setup.
fn all_class_workload() -> Vec<Vec<WorkItem>> {
    let a = |n: u16, line: u64| node_addr(NodeId(n), line * 128);
    vec![
        vec![
            // Dirty node 0's line 1 (for node 1's local_dirty_remote? no:
            // node 1 reading node 0's line is remote). Dirty node 1's
            // line 2 so node 1's later local read finds it dirty remote.
            WorkItem::Write(a(1, 2)),
            WorkItem::Barrier,
            // local_clean: own line, nobody has it.
            WorkItem::Read(a(0, 0)),
            // remote_clean: node 2's untouched line.
            WorkItem::Read(a(2, 0)),
            // remote_dirty_home: node 3 wrote its own line 3 before the
            // barrier; reading it finds it dirty in the home's cache.
            WorkItem::Read(a(3, 3)),
            // remote_dirty_remote: node 2's line 4 is dirty in node 3's
            // cache.
            WorkItem::Read(a(2, 4)),
            WorkItem::Barrier,
            // upgrade: write a line already held shared.
            WorkItem::Write(a(0, 0)),
            WorkItem::Busy(20),
        ],
        vec![
            WorkItem::Barrier,
            // local_dirty_remote: own line 2, dirtied by node 0.
            WorkItem::Read(a(1, 2)),
            WorkItem::Barrier,
            WorkItem::Busy(20),
        ],
        vec![WorkItem::Barrier, WorkItem::Barrier, WorkItem::Busy(20)],
        vec![
            // Set up remote_dirty_home and remote_dirty_remote lines.
            WorkItem::Write(a(3, 3)),
            WorkItem::Write(a(2, 4)),
            WorkItem::Barrier,
            WorkItem::Barrier,
            WorkItem::Busy(20),
        ],
    ]
}

/// Turning observation on must not move a single event: execution time
/// and the whole statistics report are identical, for every controller
/// kind.
#[test]
fn observation_is_timing_invisible() {
    for cfg in [
        MachineConfig::flash(4),
        MachineConfig::ideal(4),
        MachineConfig::flash_cost_table(4),
    ] {
        let base = run(cfg.clone(), all_class_workload());
        let observed = run(cfg.clone().with_observe(true), all_class_workload());
        assert_eq!(
            base.exec_cycles(),
            observed.exec_cycles(),
            "{:?}: observation changed execution time",
            cfg.controller
        );
        let r_base = MachineReport::from_machine(&base);
        let mut r_obs = MachineReport::from_machine(&observed);
        assert!(r_base.observe.is_none());
        assert!(r_obs.observe.is_some());
        r_obs.observe = None;
        assert_eq!(
            r_base, r_obs,
            "{:?}: observation perturbed the report",
            cfg.controller
        );
    }
}

/// On the all-class workload every class row is populated and the
/// attribution closes: no request left pending, no breakdown whose
/// segments fail to sum to its end-to-end latency.
#[test]
fn all_classes_are_attributed_and_sums_close() {
    for cfg in [MachineConfig::flash(4), MachineConfig::ideal(4)] {
        let m = run(cfg.clone().with_observe(true), all_class_workload());
        let r = m.observe_report().expect("observed mode");
        assert_eq!(
            r.sum_mismatches, 0,
            "{:?}: attribution drift",
            cfg.controller
        );
        assert_eq!(r.unresolved, 0, "{:?}: leaked requests", cfg.controller);
        assert_eq!(r.requests, r.completed + r.replaced);
        let count_of = |name: &str| {
            r.rows
                .iter()
                .find(|row| row.class == name)
                .unwrap_or_else(|| panic!("missing row {name}"))
                .count
        };
        for name in [
            "read_local_clean",
            "read_local_dirty_remote",
            "read_remote_clean",
            "read_remote_dirty_home",
            "read_remote_dirty_remote",
            "write",
            "upgrade",
        ] {
            assert!(
                count_of(name) > 0,
                "{:?}: class {name} never observed",
                cfg.controller
            );
        }
        // Row counts and the latency histogram both partition the
        // completed set.
        let row_total: u64 = r.rows.iter().map(|row| row.count).sum();
        assert_eq!(row_total, r.completed);
        let hist_total: u64 = r.latency_buckets.iter().map(|&(_, c)| c).sum();
        assert_eq!(hist_total, r.completed);
        // The ideal machine charges no handler occupancy.
        if cfg.controller == flash::ControllerKind::Ideal {
            for h in &r.handlers {
                assert_eq!(h.occupancy_cycles, 0);
            }
        }
        // The JSON export carries the schema tag and all rows.
        let json = r.to_json();
        assert!(json.contains("\"schema\": \"flash-observe-v1\""));
        for name in ROW_NAMES {
            assert!(json.contains(name));
        }
    }
}

/// The golden Chrome trace for a fixed 2-node micro-scenario. Pins both
/// determinism (any event reordering changes the file) and the
/// trace_event output format (viewable in Perfetto as-is). Regenerate
/// with `FLASH_BLESS=1 cargo test -p flash --test observe` after an
/// intentional timing change.
#[test]
fn golden_trace_snapshot_2node() {
    let items0 = vec![
        WorkItem::Read(node_addr(NodeId(0), 0x000)),
        WorkItem::Read(node_addr(NodeId(1), 0x080)),
        WorkItem::Write(node_addr(NodeId(1), 0x080)),
        WorkItem::Busy(10),
    ];
    let items1 = vec![WorkItem::Busy(10)];
    let m = run(
        MachineConfig::ideal(2).with_observe(true),
        vec![items0, items1],
    );
    let got = m.trace_json().expect("observed mode");
    let golden_path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../tests/golden/observe_trace_2node.json"
    );
    if std::env::var_os("FLASH_BLESS").is_some() {
        std::fs::write(golden_path, &got).unwrap();
    }
    let want = std::fs::read_to_string(golden_path)
        .unwrap_or_else(|e| panic!("missing golden file {golden_path}: {e}"));
    assert_eq!(
        got, want,
        "2-node trace deviates from the golden snapshot; if the timing \
         change is intentional, regenerate tests/golden/observe_trace_2node.json"
    );
}

/// `Machine::write_trace` refuses politely when not observing and writes
/// valid Chrome JSON when it is.
#[test]
fn write_trace_roundtrip() {
    let mk = || {
        vec![
            vec![WorkItem::Read(node_addr(NodeId(1), 0)), WorkItem::Busy(4)],
            vec![WorkItem::Busy(4)],
        ]
    };
    let off = run(MachineConfig::flash(2), mk());
    let dir = std::env::temp_dir().join("flash-observe-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("trace.json");
    let path = path.to_str().unwrap();
    assert!(off.write_trace(path).is_err(), "not observing must error");
    let on = run(MachineConfig::flash(2).with_observe(true), mk());
    on.write_trace(path).unwrap();
    let body = std::fs::read_to_string(path).unwrap();
    assert!(body.starts_with("{\"displayTimeUnit\""));
    assert!(body.contains("\"traceEvents\""));
    assert!(body.contains("\"ph\":\"X\""));
    std::fs::remove_file(path).ok();
}

#[derive(Debug, Clone)]
enum Op {
    Busy(u8),
    Read { node: u8, line: u8 },
    Write { node: u8, line: u8 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (1u8..60).prop_map(Op::Busy),
        4 => ((0u8..4), (0u8..12)).prop_map(|(node, line)| Op::Read { node, line }),
        3 => ((0u8..4), (0u8..12)).prop_map(|(node, line)| Op::Write { node, line }),
    ]
}

fn to_items(ops: &[Op]) -> Vec<WorkItem> {
    let addr = |node: u8, line: u8| node_addr(NodeId(node as u16), line as u64 * 128);
    let mut v: Vec<WorkItem> = ops
        .iter()
        .map(|o| match *o {
            Op::Busy(n) => WorkItem::Busy(n as u64),
            Op::Read { node, line } => WorkItem::Read(addr(node, line)),
            Op::Write { node, line } => WorkItem::Write(addr(node, line)),
        })
        .collect();
    v.push(WorkItem::Barrier);
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// On arbitrary contended workloads the attribution still closes for
    /// every read class: segments sum to end-to-end latency on every
    /// completed request (policed by `sum_mismatches`), nothing leaks,
    /// and observation never moves execution time.
    #[test]
    fn attribution_closes_on_random_workloads(
        per_proc in proptest::collection::vec(proptest::collection::vec(op_strategy(), 1..40), 4),
    ) {
        let items: Vec<Vec<WorkItem>> = per_proc.iter().map(|ops| to_items(ops)).collect();
        let base = run(MachineConfig::flash(4), items.clone());
        let m = run(MachineConfig::flash(4).with_observe(true), items);
        prop_assert_eq!(base.exec_cycles(), m.exec_cycles());
        let r = m.observe_report().expect("observed mode");
        prop_assert_eq!(r.sum_mismatches, 0, "attribution drift");
        prop_assert_eq!(r.unresolved, 0, "leaked requests");
        prop_assert_eq!(r.requests, r.completed + r.replaced);
        let row_total: u64 = r.rows.iter().map(|row| row.count).sum();
        prop_assert_eq!(row_total, r.completed);
    }
}
