//! Allocation budget: the steady-state event loop must not touch the
//! heap.
//!
//! PR 8's host-performance work made the hot path allocation-free —
//! processor outputs and chip emissions drain through reusable scratch
//! buffers, event-queue wheel slots and arenas are warmed once, and the
//! hit fast path never round-trips the queue at all. This test pins that
//! property with a counting global allocator and a differential
//! measurement: a small and a large run of the same workload shape pay
//! the same one-time setup cost (machine construction, wheel sizing,
//! scratch capacities), so the allocation *difference* between them
//! isolates the steady state. Tens of thousands of extra events must
//! cost at most a small constant number of extra allocations.
//!
//! (A warm-up-then-resume design inside one machine would be simpler,
//! but budget exhaustion intentionally *drops* the first over-budget
//! event — serial-loop semantics — so a resumed run is lossy and not a
//! valid steady-state sample.)
//!
//! The whole file is one `#[test]` because the `#[global_allocator]` is
//! binary-wide; a second test running concurrently would pollute the
//! count.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use flash::{Machine, MachineConfig, RunResult};
use flash_cpu::{RefStream, SliceStream};

/// System allocator with an allocation-event counter (`alloc`,
/// `alloc_zeroed`, and `realloc` count; frees do not).
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Runs the standard mixed-sharing stress workload (serial, unobserved,
/// unchecked, unfaulted — the pure hot loop) with `items` references per
/// processor; returns (allocations, chip messages) for the whole run
/// including machine construction.
fn run_and_count(items: usize) -> (u64, u64) {
    let streams: Vec<Box<dyn RefStream>> = flash_check::stress_streams(16, 8, items, 5)
        .into_iter()
        .map(|v| Box::new(SliceStream::new(v)) as Box<dyn RefStream>)
        .collect();
    let before = ALLOCS.load(Ordering::Relaxed);
    let mut m = Machine::new(MachineConfig::flash(16).with_shards(1), streams);
    let RunResult::Completed { .. } = m.run(2_000_000_000) else {
        panic!("{items}-item run did not complete");
    };
    let allocs = ALLOCS.load(Ordering::Relaxed) - before;
    let events: u64 = m.chips().iter().map(|c| c.stats().messages).sum();
    (allocs, events)
}

#[test]
fn steady_state_is_allocation_free() {
    let (small_allocs, small_events) = run_and_count(64);
    let (big_allocs, big_events) = run_and_count(512);
    let extra_events = big_events - small_events;
    assert!(
        extra_events > 30_000,
        "differential too small to be meaningful: {extra_events} extra chip messages"
    );
    // Both runs pay the same setup cost, so the difference is the steady
    // state. Not literally zero: the longer run can grow a wheel slot or
    // a stats bucket the short one never reached. What is NOT allowed is
    // per-event heap traffic — the bound stays constant while the extra
    // event count scales.
    let extra_allocs = big_allocs.saturating_sub(small_allocs);
    assert!(
        extra_allocs < 2_000,
        "steady state must be allocation-free: {extra_allocs} extra allocations over \
         {extra_events} extra events ({:.4} allocs/event; small run {small_allocs} allocs / \
         {small_events} events, big run {big_allocs} allocs / {big_events} events)",
        extra_allocs as f64 / extra_events as f64
    );
}
