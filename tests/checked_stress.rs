//! Checked-mode stress: the `flash-check` correctness net on live runs.
//!
//! Drives seeded random workloads (hot-set contention, lock triples,
//! barriers) through the detailed FLASH machine with checked mode on and
//! asserts the full correctness net stays quiet:
//!
//! * coherence invariants (SWMR, directory/cache agreement) per event,
//! * directory audits (list integrity, stuck PENDING/acks) per line,
//! * pointer-store conservation and MSHR drain at end of run,
//! * the native-vs-PP differential oracle on every handler invocation.
//!
//! Also pins the contract that checked mode never perturbs timing: the
//! same workload with `check` on and off finishes at the same cycle.

use flash::{Machine, MachineConfig, RunResult};
use flash_cpu::{RefStream, SliceStream};
use flash_minimize::{Predicate, Spec};

/// Seeds per configuration; `FLASH_CHECK_SEEDS` widens the sweep for
/// soak runs.
fn seeds(default: u64) -> u64 {
    std::env::var("FLASH_CHECK_SEEDS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

fn streams(nodes: u16, lines_per_node: u64, items: usize, seed: u64) -> Vec<Box<dyn RefStream>> {
    flash_check::stress_streams(nodes, lines_per_node, items, seed)
        .into_iter()
        .map(|v| Box::new(SliceStream::new(v)) as Box<dyn RefStream>)
        .collect()
}

/// The ready-to-paste `minimize` invocation that shrinks a failure of
/// this stress configuration to a minimal `flash-repro-v1` artifact.
fn shrink_hint(
    cfg: &MachineConfig,
    lines: u64,
    items: usize,
    seed: u64,
    predicate: Predicate,
) -> String {
    let mut spec = Spec::stress(cfg.nodes, lines, items, seed)
        .with_check(true)
        .with_predicate(predicate);
    spec.controller = cfg.controller;
    if cfg.cache_bytes != MachineConfig::flash(cfg.nodes).cache_bytes {
        spec.cache_bytes = Some(cfg.cache_bytes);
    }
    format!(
        "to shrink this failure to a minimal repro, run:\n  {}",
        spec.command_line()
    )
}

fn run_checked(cfg: MachineConfig, lines_per_node: u64, items: usize, seed: u64) -> Machine {
    let nodes = cfg.nodes;
    let kind = cfg.controller;
    let mut m = Machine::new(
        cfg.clone().with_check(true),
        streams(nodes, lines_per_node, items, seed),
    );
    assert!(m.checked_mode());
    match m.run(500_000_000) {
        RunResult::Completed { .. } => {}
        RunResult::Wedged { report } => panic!(
            "{kind:?}: checked stress wedged (seed {seed})\n{report}\n{}",
            shrink_hint(
                &cfg,
                lines_per_node,
                items,
                seed,
                Predicate::Wedge { fingerprint: None }
            )
        ),
        other => panic!("{kind:?}: checked stress stuck (seed {seed}): {other:?}"),
    }
    let violations = m.check_violations();
    assert!(
        violations.is_empty(),
        "seed {seed}: {} violation(s):\n{}\n{}",
        violations.len(),
        violations
            .iter()
            .map(|v| format!("  {v}"))
            .collect::<Vec<_>>()
            .join("\n"),
        shrink_hint(
            &cfg,
            lines_per_node,
            items,
            seed,
            Predicate::Violation { fingerprint: None }
        )
    );
    m
}

#[test]
fn checked_stress_flash_4() {
    for seed in 0..seeds(4) {
        let m = run_checked(MachineConfig::flash(4), 16, 300, seed);
        assert!(
            m.oracle_checked() > 0,
            "oracle must have compared handler invocations"
        );
    }
}

#[test]
fn checked_stress_flash_8() {
    for seed in 0..seeds(3) {
        let m = run_checked(MachineConfig::flash(8), 12, 250, 40 + seed);
        assert!(m.oracle_checked() > 0);
    }
}

#[test]
fn checked_stress_small_cache_evictions() {
    // Tiny caches force writebacks and replacement hints mid-transaction;
    // the richest source of transient directory states.
    for seed in 0..seeds(3) {
        run_checked(
            MachineConfig::flash(4).with_cache_bytes(4 << 10),
            96,
            300,
            80 + seed,
        );
    }
}

#[test]
fn checked_stress_cost_table() {
    // The table-driven controller shares the native handlers, so the
    // oracle is inert, but the machine-level invariants still apply.
    for seed in 0..seeds(3) {
        let m = run_checked(MachineConfig::flash_cost_table(4), 16, 300, 120 + seed);
        assert_eq!(m.oracle_checked(), 0, "oracle only arms FlashEmulated");
    }
}

#[test]
fn checked_stress_ideal() {
    for seed in 0..seeds(3) {
        run_checked(MachineConfig::ideal(4), 16, 300, 160 + seed);
    }
}

#[test]
fn checked_stress_translated_backend() {
    // Obligation (b) of the translation architecture: the native-vs-PP
    // differential oracle stays quiet with the translated backend
    // explicitly armed (regardless of the process-wide FLASH_PP_BACKEND,
    // so the CI reference job still covers the fast path here).
    use flash::PpBackend;
    for seed in 0..seeds(3) {
        let m = run_checked(
            MachineConfig::flash(4).with_pp_backend(PpBackend::Translated),
            16,
            300,
            200 + seed,
        );
        assert!(m.oracle_checked() > 0);
    }
}

#[test]
fn pp_backends_are_cycle_identical() {
    // The PP backend is a host-performance knob, never a model knob:
    // the same workload must finish at the same cycle with identical
    // per-processor stats under the emulator and the translated path.
    use flash::PpBackend;
    let base = MachineConfig::flash(4);
    let mut emu = Machine::new(
        base.clone().with_pp_backend(PpBackend::Emulated),
        streams(4, 16, 250, 11),
    );
    let mut fast = Machine::new(
        base.with_pp_backend(PpBackend::Translated),
        streams(4, 16, 250, 11),
    );
    let RunResult::Completed { exec_cycles: c0 } = emu.run(500_000_000) else {
        panic!("emulated run stuck");
    };
    let RunResult::Completed { exec_cycles: c1 } = fast.run(500_000_000) else {
        panic!("translated run stuck");
    };
    assert_eq!(c0, c1, "backend changed the finish cycle");
    for (a, b) in emu.procs().iter().zip(fast.procs()) {
        assert_eq!(a.finish_time(), b.finish_time());
        assert_eq!(a.stats().read_stall_q, b.stats().read_stall_q);
        assert_eq!(a.stats().write_stall_q, b.stats().write_stall_q);
    }
    let ra = flash::MachineReport::from_machine(&emu);
    let rb = flash::MachineReport::from_machine(&fast);
    assert_eq!(ra.pp_stats, rb.pp_stats, "PP statistics diverged");
}

#[test]
fn checked_mode_does_not_perturb_timing() {
    // The check flag must be timing-invisible: identical finish cycles
    // and execution stats with the net on and off.
    let base = MachineConfig::flash(4);
    let mut plain = Machine::new(base.clone(), streams(4, 16, 200, 7));
    let mut checked = Machine::new(base.with_check(true), streams(4, 16, 200, 7));
    let RunResult::Completed { exec_cycles: c0 } = plain.run(500_000_000) else {
        panic!("plain run stuck");
    };
    let RunResult::Completed { exec_cycles: c1 } = checked.run(500_000_000) else {
        panic!("checked run stuck");
    };
    assert_eq!(c0, c1, "checked mode changed the finish cycle");
    for (a, b) in plain.procs().iter().zip(checked.procs()) {
        assert_eq!(a.finish_time(), b.finish_time());
        assert_eq!(a.stats().read_stall_q, b.stats().read_stall_q);
        assert_eq!(a.stats().write_stall_q, b.stats().write_stall_q);
    }
}

#[test]
fn monitoring_disarms_oracle_but_keeps_invariants() {
    // The monitoring variant's handlers write counters the native oracle
    // does not model, so the differential is disabled; the machine-level
    // net still runs and must stay quiet.
    let cfg = MachineConfig::flash(4)
        .with_monitoring(true)
        .with_check(true);
    let mut m = Machine::new(cfg, streams(4, 16, 200, 9));
    let RunResult::Completed { .. } = m.run(500_000_000) else {
        panic!("monitoring run stuck");
    };
    assert_eq!(m.oracle_checked(), 0);
    let violations = m.check_violations();
    assert!(violations.is_empty(), "{violations:?}");
}
