//! Property-based machine tests: random workloads, machine-level
//! invariants.

use flash::config::node_addr;
use flash::{Machine, MachineConfig, MachineReport, RunResult};
use flash_cpu::{RefStream, SliceStream, WorkItem};
use flash_engine::{Addr, NodeId};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Busy(u8),
    Read { node: u8, line: u8 },
    Write { node: u8, line: u8 },
    Barrier,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (1u8..100).prop_map(Op::Busy),
        4 => ((0u8..4), (0u8..16)).prop_map(|(node, line)| Op::Read { node, line }),
        3 => ((0u8..4), (0u8..16)).prop_map(|(node, line)| Op::Write { node, line }),
        1 => Just(Op::Barrier),
    ]
}

fn to_items(ops: &[Op]) -> Vec<WorkItem> {
    let addr = |node: u8, line: u8| node_addr(NodeId(node as u16), line as u64 * 128);
    let mut v: Vec<WorkItem> = ops
        .iter()
        .filter(|o| !matches!(o, Op::Barrier))
        .map(|o| match *o {
            Op::Busy(n) => WorkItem::Busy(n as u64),
            Op::Read { node, line } => WorkItem::Read(addr(node, line)),
            Op::Write { node, line } => WorkItem::Write(addr(node, line)),
            Op::Barrier => unreachable!(),
        })
        .collect();
    // Barriers must balance across processors, so they are appended
    // uniformly rather than taken from the per-processor ops.
    v.push(WorkItem::Barrier);
    v
}

fn run_machine(cfg: MachineConfig, per_proc: &[Vec<Op>]) -> (Machine, u64) {
    let streams: Vec<Box<dyn RefStream>> = per_proc
        .iter()
        .map(|ops| Box::new(SliceStream::new(to_items(ops))) as Box<dyn RefStream>)
        .collect();
    let mut m = Machine::new(cfg, streams);
    match m.run(200_000_000) {
        RunResult::Completed { exec_cycles } => (m, exec_cycles),
        other => panic!("machine stuck on random workload: {other:?}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every random workload completes on every controller kind, the
    /// ideal machine is never slower than FLASH, and runs are
    /// deterministic.
    #[test]
    fn machines_complete_and_ideal_is_fastest(
        per_proc in proptest::collection::vec(proptest::collection::vec(op_strategy(), 1..60), 4),
    ) {
        let (_, flash_t) = run_machine(MachineConfig::flash(4), &per_proc);
        let (_, flash_t2) = run_machine(MachineConfig::flash(4), &per_proc);
        prop_assert_eq!(flash_t, flash_t2, "nondeterministic FLASH run");
        let (_, ideal_t) = run_machine(MachineConfig::ideal(4), &per_proc);
        // Allow a whisker of slack: sub-cycle rounding can differ.
        prop_assert!(
            ideal_t <= flash_t + 2,
            "ideal ({ideal_t}) slower than FLASH ({flash_t})"
        );
    }

    /// The report's invariants hold on arbitrary workloads.
    #[test]
    fn report_invariants(
        per_proc in proptest::collection::vec(proptest::collection::vec(op_strategy(), 1..40), 4),
    ) {
        let (m, exec) = run_machine(MachineConfig::flash(4), &per_proc);
        let r = MachineReport::from_machine(&m);
        prop_assert_eq!(r.exec_cycles, exec);
        let sum: f64 = r.breakdown.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-6);
        prop_assert!(r.pp_occupancy.1 <= 1.0 + 1e-9);
        prop_assert!(r.spec.1 <= r.spec.0, "useless spec reads exceed issued");
        // No transaction left a line pending.
        for node in 0..4u16 {
            for line in 0..16u64 {
                let a = node_addr(NodeId(node), line * 128);
                let h = m.chips()[node as usize].peek_header(flash_protocol::dir_addr(a));
                prop_assert!(!h.pending(), "line {a} left pending");
            }
        }
    }

    /// Pointer-store bookkeeping conserves entries: after completion the
    /// free count plus recorded sharers equals the initial capacity.
    #[test]
    fn pointer_store_is_conserved(
        per_proc in proptest::collection::vec(proptest::collection::vec(op_strategy(), 1..40), 4),
    ) {
        let (m, _) = run_machine(MachineConfig::flash(4), &per_proc);
        for node in 0..4u16 {
            let mut recorded = 0usize;
            for line in 0..16u64 {
                let a = node_addr(NodeId(node), line * 128);
                recorded += m.chips()[node as usize].sharer_nodes(flash_protocol::dir_addr(a)).len();
            }
            // The free list plus recorded entries must not exceed capacity
            // (leaks shrink the free list; double frees corrupt the walk,
            // which sharer_nodes would catch as a cycle).
            prop_assert!(recorded <= flash_protocol::dir::DEFAULT_PS_CAPACITY as usize);
        }
    }
}

/// A fixed, non-trivial observed workload for the host-instrumentation
/// invariance tests below: 16 nodes, mixed sharing, a few thousand
/// events per run.
fn invariance_run(cfg: MachineConfig) -> (u64, String, Option<String>, Option<f64>) {
    let streams: Vec<Box<dyn RefStream>> = flash_check::stress_streams(16, 8, 60, 7)
        .into_iter()
        .map(|v| Box::new(SliceStream::new(v)) as Box<dyn RefStream>)
        .collect();
    let mut m = Machine::new(cfg, streams);
    let RunResult::Completed { exec_cycles } = m.run(2_000_000_000) else {
        panic!("invariance workload did not complete");
    };
    let report = format!("{:?}", MachineReport::from_machine(&m));
    let coverage = m.host_profile().map(|p| p.coverage());
    (exec_cycles, report, m.trace_json(), coverage)
}

/// The host-time profiler is a pure observer: arming it must not change
/// any simulated observable, and at one shard its segments must explain
/// (nearly) all of the wall time they bracket.
#[test]
fn host_profile_is_timing_invisible() {
    let cfg = || MachineConfig::flash(16).with_observe(true);
    let (base_t, base_r, base_trace, none) = invariance_run(cfg());
    assert!(none.is_none(), "profiler must stay off by default");
    let (prof_t, prof_r, prof_trace, coverage) = invariance_run(cfg().with_host_profile(true));
    assert_eq!(base_t, prof_t, "profiling changed exec_cycles");
    assert_eq!(base_r, prof_r, "profiling changed the report");
    assert_eq!(base_trace, prof_trace, "profiling changed the trace");
    let coverage = coverage.expect("profiler armed via config");
    assert!(
        coverage >= 0.95,
        "single-shard segment sum must explain >=95% of wall, got {coverage:.3}"
    );
}

/// The inline run fast path (eliding the event-queue round-trip for
/// next-to-execute processor wakeups) is a host-side optimization only:
/// disabling it must reproduce the exact same schedule, at any shard
/// count.
#[test]
fn inline_fast_path_is_schedule_invisible() {
    for shards in [1usize, 4] {
        let cfg = || {
            MachineConfig::flash(16)
                .with_observe(true)
                .with_shards(shards)
        };
        let (fast_t, fast_r, fast_trace, _) = invariance_run(cfg());
        let (slow_t, slow_r, slow_trace, _) = invariance_run(cfg().with_inline_runs(false));
        assert_eq!(
            fast_t, slow_t,
            "{shards} shards: inline elision changed exec_cycles"
        );
        assert_eq!(
            fast_r, slow_r,
            "{shards} shards: inline elision changed the report"
        );
        assert_eq!(
            fast_trace, slow_trace,
            "{shards} shards: inline elision changed the trace"
        );
    }
}

#[test]
fn dma_and_sync_mix_completes() {
    let mk = |n: u16| {
        let a = node_addr(NodeId(0), 0x100);
        vec![
            WorkItem::Read(a),
            WorkItem::Barrier,
            WorkItem::Lock(1),
            WorkItem::Write(node_addr(NodeId(n), 0x200)),
            WorkItem::Unlock(1),
            WorkItem::Barrier,
            WorkItem::Read(a),
            WorkItem::Busy(4),
        ]
    };
    let streams: Vec<Box<dyn RefStream>> = (0..4)
        .map(|n| Box::new(SliceStream::new(mk(n))) as _)
        .collect();
    let mut m = Machine::new(MachineConfig::flash(4), streams);
    m.add_dma_write(flash_engine::Cycle::new(50), NodeId(0), Addr::new(0x100));
    let RunResult::Completed { .. } = m.run(10_000_000) else {
        panic!("stuck");
    };
}
