//! Open-loop traffic soak: the arrival machinery composed with the whole
//! correctness net.
//!
//! Runs seeded open-loop traffic through the detailed machine with the
//! deterministic fault injector armed and checked mode on, then asserts
//! the stack still converges with the net quiet: timing faults may grow
//! the admission backlog, but they must never change what the protocol
//! computes, lose an arrival, or wedge the machine. Failures print a
//! ready-to-paste `minimize --traffic` invocation (the open-loop
//! [`flash_minimize::Spec`] source, which materializes arrival gaps into
//! `Busy` pacing so the ordinary stream shrinker applies).
//!
//! `FLASH_TRAFFIC_SEEDS=n` widens the per-configuration seed sweep (CI
//! sets it; the default keeps `cargo test` fast).

use flash::{FaultPlan, Machine, MachineConfig, RunResult};
use flash_minimize::{FaultsSpec, Predicate, Spec};
use flash_traffic::TrafficSpec;

/// Seeds per configuration; `FLASH_TRAFFIC_SEEDS` widens the sweep.
fn seeds(default: u64) -> u64 {
    std::env::var("FLASH_TRAFFIC_SEEDS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

fn spec(nodes: u16, objects: u64, items: u64, gap: u64, seed: u64) -> TrafficSpec {
    TrafficSpec::poisson(nodes, objects, items, gap, seed)
}

/// The ready-to-paste `minimize` invocation for this soak configuration.
fn shrink_hint(t: &TrafficSpec, faults: FaultsSpec, predicate: Predicate) -> String {
    let spec = Spec::traffic(t.nodes, t.objects, t.items_per_node, t.mean_gap, t.seed)
        .with_faults(faults)
        .with_check(true)
        .with_predicate(predicate);
    format!(
        "to shrink this failure to a minimal repro, run:\n  {}",
        spec.command_line()
    )
}

/// Runs one faulted, checked open-loop configuration to completion and
/// returns the machine for further assertions.
fn soak(cfg: MachineConfig, t: &TrafficSpec, faults: FaultsSpec) -> Machine {
    let plan = match faults {
        FaultsSpec::None => FaultPlan::none(),
        FaultsSpec::Zeroed(s) => FaultPlan::zeroed(s),
        FaultsSpec::Light(s) => FaultPlan::light(s),
        FaultsSpec::Stress(s) => FaultPlan::stress(s),
    };
    let mut m = Machine::new_open_loop(cfg.with_check(true).with_faults(plan), t.sources());
    match m.run(2_000_000_000) {
        RunResult::Completed { .. } => {}
        RunResult::Wedged { report } => panic!(
            "traffic seed {} wedged under faults\n{report}\n{}",
            t.seed,
            shrink_hint(t, faults, Predicate::Wedge { fingerprint: None })
        ),
        other => panic!(
            "traffic seed {} did not converge under faults: {other:?}\n{}",
            t.seed,
            m.diagnose("traffic soak did not converge")
        ),
    }
    let violations = m.check_violations();
    assert!(
        violations.is_empty(),
        "traffic seed {}: faults must be timing-only; {} violation(s):\n{}\n{}",
        t.seed,
        violations.len(),
        violations
            .iter()
            .map(|v| format!("  {v}"))
            .collect::<Vec<_>>()
            .join("\n"),
        shrink_hint(t, faults, Predicate::Violation { fingerprint: None })
    );
    let stats = m.traffic_stats().expect("open-loop machine");
    let arrivals: u64 = stats.iter().map(|(_, s)| s.arrivals).sum();
    let admitted: u64 = stats.iter().map(|(_, s)| s.admitted).sum();
    assert_eq!(
        arrivals,
        t.nodes as u64 * t.items_per_node,
        "seed {}: every scheduled arrival must be delivered",
        t.seed
    );
    assert_eq!(
        admitted, arrivals,
        "seed {}: a completed run admits everything",
        t.seed
    );
    m
}

#[test]
fn traffic_soak_flash_4() {
    for seed in 0..seeds(2) {
        let t = spec(4, 256, 200, 30, seed);
        let m = soak(MachineConfig::flash(4), &t, FaultsSpec::Stress(0xF0 + seed));
        let stats = m.fault_stats().expect("injector armed");
        assert!(
            stats.hop_spikes + stats.link_stalls + stats.ni_freezes + stats.pp_bursts > 0,
            "seed {seed}: the stress plan must actually inject"
        );
        assert!(m.oracle_checked() > 0, "oracle must run under faults");
    }
}

#[test]
fn traffic_soak_overload() {
    // Offered load well past capacity: the backlog grows deep and every
    // admission drains a multi-item burst, under faults, with the
    // oracle watching. The run still completes (sources are finite) and
    // still conserves arrivals.
    for seed in 0..seeds(2) {
        let t = spec(4, 4096, 400, 5, 0x30 + seed);
        let m = soak(MachineConfig::flash(4), &t, FaultsSpec::Light(0x31 + seed));
        let stats = m.traffic_stats().unwrap();
        assert!(
            stats.iter().any(|(_, s)| s.peak_backlog > 1),
            "seed {seed}: overload must actually queue"
        );
    }
}

#[test]
fn traffic_soak_multi_tenant_zipf() {
    // Skewed popularity concentrates load on low-numbered homes while
    // three tenants interleave per node — the richest arrival shape,
    // composed with stress faults and checked mode.
    for seed in 0..seeds(2) {
        let mut t = spec(4, 512, 150, 40, 0x60 + seed);
        t.tenants = 3;
        t.popularity = flash_traffic::Popularity::Zipf {
            theta_permille: 800,
        };
        soak(MachineConfig::flash(4), &t, FaultsSpec::Stress(0x61 + seed));
    }
}

#[test]
fn traffic_soak_sharded_is_identical() {
    // Faults + checked mode + open-loop arrivals, run under 1 and 2
    // shards: cycle-identical, stat-identical. The composition stress
    // that matters for the conservative-window engine.
    let t = spec(4, 256, 150, 25, 9);
    let run = |shards: usize| {
        let m = soak(
            MachineConfig::flash(4).with_shards(shards),
            &t,
            FaultsSpec::Light(0x90),
        );
        (m.exec_cycles(), m.traffic_stats(), m.fault_stats())
    };
    assert_eq!(run(1), run(2), "shard count must be timing-invisible");
}
