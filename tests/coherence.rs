//! Coherence invariants checked over final machine state.
//!
//! After a workload completes and all messages drain, the directory and
//! the processor caches must agree:
//!
//! * no line is left `PENDING` and no acknowledgement counts are stuck;
//! * a line the directory records as dirty is held `Exclusive` by exactly
//!   the recorded owner;
//! * a cache holding a line `Exclusive` is recorded as the dirty owner at
//!   the line's home;
//! * a cache holding a line `Shared` is recorded at the home (sharer list
//!   or `LOCAL` bit).

use flash::config::{node_addr, Placement};
use flash::{Machine, MachineConfig, RunResult};
use flash_cpu::{LineState, RefStream, SliceStream, WorkItem};
use flash_engine::{Addr, DetRng, NodeId};
use flash_protocol::dir_addr;

/// Checks every coherence invariant for `addrs` on a finished machine.
fn check_coherence(m: &Machine, addrs: &[Addr]) {
    let nodes = m.chips().len() as u16;
    for &a in addrs {
        let line = a.line();
        let home = m.config().placement.home_of(line, nodes);
        let h = m.chips()[home.index()].peek_header(dir_addr(line));
        assert!(!h.pending(), "line {line} stuck PENDING at {home}");
        assert_eq!(h.acks(), 0, "line {line} has stuck ack count");

        let holders: Vec<(u16, LineState)> = (0..nodes)
            .filter_map(|n| m.procs()[n as usize].cache().state_of(line).map(|s| (n, s)))
            .collect();
        let exclusive: Vec<u16> = holders
            .iter()
            .filter(|(_, s)| *s == LineState::Exclusive)
            .map(|(n, _)| *n)
            .collect();
        assert!(
            exclusive.len() <= 1,
            "line {line}: multiple exclusive holders {exclusive:?}"
        );
        if h.dirty() {
            assert_eq!(
                exclusive,
                vec![h.owner().0],
                "line {line}: directory says dirty at {}, caches say {holders:?}",
                h.owner()
            );
        } else {
            assert!(
                exclusive.is_empty(),
                "line {line}: clean at home but exclusive in {exclusive:?}"
            );
            // Every Shared holder must be recorded at the home.
            let mut mem = flash_protocol::ProtoMem::new();
            let _ = &mut mem; // (sharer walk uses the chip's own memory)
            let recorded = m.chips()[home.index()].sharer_nodes(dir_addr(line));
            for (n, _) in holders {
                let ok = recorded.contains(&NodeId(n)) || (n == home.0 && h.local());
                assert!(
                    ok,
                    "line {line}: node {n} holds Shared but home records {recorded:?} local={}",
                    h.local()
                );
            }
        }
    }
}

fn random_streams(
    procs: u16,
    refs: usize,
    region_lines: u64,
    seed: u64,
) -> (Vec<Box<dyn RefStream>>, Vec<Addr>) {
    let mut addrs = Vec::new();
    let streams = (0..procs)
        .map(|p| {
            let mut rng = DetRng::for_stream(seed, p as u64);
            let mut items = Vec::new();
            for _ in 0..refs {
                let node = rng.below(procs as u64) as u16;
                let line = rng.below(region_lines);
                let a = node_addr(NodeId(node), line * 128);
                if addrs.len() < 256 {
                    addrs.push(a);
                }
                items.push(WorkItem::Busy(rng.below(32) + 1));
                if rng.chance(0.4) {
                    items.push(WorkItem::Write(a));
                } else {
                    items.push(WorkItem::Read(a));
                }
            }
            items.push(WorkItem::Barrier);
            Box::new(SliceStream::new(items)) as Box<dyn RefStream>
        })
        .collect();
    (streams, addrs)
}

fn run_and_check(cfg: MachineConfig, refs: usize, region_lines: u64, seed: u64) {
    let procs = cfg.nodes;
    let kind = cfg.controller;
    let (streams, addrs) = random_streams(procs, refs, region_lines, seed);
    let mut m = Machine::new(cfg, streams);
    let RunResult::Completed { .. } = m.run(500_000_000) else {
        panic!("{kind:?}: random workload stuck (seed {seed})");
    };
    check_coherence(&m, &addrs);
}

#[test]
fn random_sharing_preserves_coherence_flash() {
    for seed in 0..6 {
        run_and_check(MachineConfig::flash(4), 400, 24, seed);
    }
}

#[test]
fn random_sharing_preserves_coherence_ideal() {
    for seed in 0..6 {
        run_and_check(MachineConfig::ideal(4), 400, 24, seed);
    }
}

#[test]
fn random_sharing_preserves_coherence_cost_table() {
    for seed in 0..6 {
        run_and_check(MachineConfig::flash_cost_table(4), 400, 24, seed);
    }
}

#[test]
fn hot_line_contention_preserves_coherence() {
    // Every processor hammers the same handful of lines: maximal races.
    for seed in 0..4 {
        run_and_check(MachineConfig::flash(8), 300, 3, 100 + seed);
    }
}

#[test]
fn small_cache_evictions_preserve_coherence() {
    // Tiny caches force writebacks and replacement hints mid-transaction.
    for seed in 0..4 {
        run_and_check(
            MachineConfig::flash(4).with_cache_bytes(4 << 10),
            400,
            128,
            200 + seed,
        );
    }
}

#[test]
fn round_robin_placement_preserves_coherence() {
    let cfg =
        MachineConfig::flash(4).with_placement(Placement::RoundRobinPages { page_bytes: 4096 });
    let procs = cfg.nodes;
    let mut addrs = Vec::new();
    let streams: Vec<Box<dyn RefStream>> = (0..procs)
        .map(|p| {
            let mut rng = DetRng::for_stream(7, p as u64);
            let mut items = Vec::new();
            for _ in 0..300 {
                let a = Addr::new(rng.below(64) * 128);
                addrs.push(a);
                items.push(WorkItem::Busy(8));
                if rng.chance(0.5) {
                    items.push(WorkItem::Write(a));
                } else {
                    items.push(WorkItem::Read(a));
                }
            }
            Box::new(SliceStream::new(items)) as Box<dyn RefStream>
        })
        .collect();
    let mut m = Machine::new(cfg, streams);
    let RunResult::Completed { .. } = m.run(500_000_000) else {
        panic!("stuck");
    };
    addrs.truncate(128);
    check_coherence(&m, &addrs);
}
