//! Fault-injection soak: the correctness net under adversarial timing.
//!
//! Runs seeded random workloads through the detailed machine with the
//! deterministic fault injector armed (transient link stalls, hop delay
//! spikes, NI queue freezes, PP slowdown bursts, DRAM refresh stalls) and
//! checked mode on, then asserts the whole stack still converges with the
//! correctness net quiet: timing-only faults may slow a run down but must
//! never change what the protocol computes.
//!
//! `FLASH_FAULT_SEEDS=n` widens the per-configuration seed sweep for soak
//! runs (CI uses a small bounded sweep; the default keeps `cargo test`
//! fast).

use flash::{FaultPlan, Machine, MachineConfig, RunResult};
use flash_cpu::{RefStream, SliceStream};
use flash_minimize::{FaultsSpec, Predicate, Spec};

/// Seeds per configuration; `FLASH_FAULT_SEEDS` widens the sweep.
fn seeds(default: u64) -> u64 {
    std::env::var("FLASH_FAULT_SEEDS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

fn streams(nodes: u16, lines_per_node: u64, items: usize, seed: u64) -> Vec<Box<dyn RefStream>> {
    flash_check::stress_streams(nodes, lines_per_node, items, seed)
        .into_iter()
        .map(|v| Box::new(SliceStream::new(v)) as Box<dyn RefStream>)
        .collect()
}

/// The ready-to-paste `minimize` invocation that shrinks a failure of
/// this soak configuration to a minimal `flash-repro-v1` artifact.
fn shrink_hint(
    cfg: &MachineConfig,
    faults: FaultsSpec,
    lines: u64,
    items: usize,
    seed: u64,
    predicate: Predicate,
) -> String {
    let mut spec = Spec::stress(cfg.nodes, lines, items, seed)
        .with_faults(faults)
        .with_check(true)
        .with_predicate(predicate);
    spec.controller = cfg.controller;
    if cfg.cache_bytes != MachineConfig::flash(cfg.nodes).cache_bytes {
        spec.cache_bytes = Some(cfg.cache_bytes);
    }
    format!(
        "to shrink this failure to a minimal repro, run:\n  {}",
        spec.command_line()
    )
}

/// Runs one faulted, checked configuration to completion and returns the
/// machine for further assertions.
fn soak(cfg: MachineConfig, faults: FaultsSpec, lines: u64, items: usize, seed: u64) -> Machine {
    let nodes = cfg.nodes;
    let kind = cfg.controller;
    let plan = match faults {
        FaultsSpec::None => FaultPlan::none(),
        FaultsSpec::Zeroed(s) => FaultPlan::zeroed(s),
        FaultsSpec::Light(s) => FaultPlan::light(s),
        FaultsSpec::Stress(s) => FaultPlan::stress(s),
    };
    let mut m = Machine::new(
        cfg.clone().with_check(true).with_faults(plan),
        streams(nodes, lines, items, seed),
    );
    match m.run(2_000_000_000) {
        RunResult::Completed { .. } => {}
        RunResult::Wedged { report } => {
            panic!(
                "{kind:?} seed {seed} wedged under faults\n{report}\n{}",
                shrink_hint(
                    &cfg,
                    faults,
                    lines,
                    items,
                    seed,
                    Predicate::Wedge { fingerprint: None }
                )
            )
        }
        other => panic!(
            "{kind:?} seed {seed} did not converge under faults: {other:?}\n{}",
            m.diagnose("fault soak did not converge")
        ),
    }
    let violations = m.check_violations();
    assert!(
        violations.is_empty(),
        "{kind:?} seed {seed}: faults must be timing-only; {} violation(s):\n{}\n{}",
        violations.len(),
        violations
            .iter()
            .map(|v| format!("  {v}"))
            .collect::<Vec<_>>()
            .join("\n"),
        shrink_hint(
            &cfg,
            faults,
            lines,
            items,
            seed,
            Predicate::Violation { fingerprint: None }
        )
    );
    m
}

#[test]
fn fault_soak_flash_4() {
    for seed in 0..seeds(3) {
        let m = soak(
            MachineConfig::flash(4),
            FaultsSpec::Stress(0xA0 + seed),
            16,
            250,
            seed,
        );
        let stats = m.fault_stats().expect("injector armed");
        assert!(
            stats.hop_spikes + stats.link_stalls + stats.ni_freezes + stats.pp_bursts > 0,
            "seed {seed}: the stress plan must actually inject"
        );
        assert!(m.oracle_checked() > 0, "oracle must run under faults");
    }
}

#[test]
fn fault_soak_flash_8() {
    for seed in 0..seeds(2) {
        let m = soak(
            MachineConfig::flash(8),
            FaultsSpec::Light(0xB0 + seed),
            12,
            200,
            40 + seed,
        );
        assert!(m.oracle_checked() > 0);
    }
}

#[test]
fn fault_soak_cost_table() {
    for seed in 0..seeds(2) {
        soak(
            MachineConfig::flash_cost_table(4),
            FaultsSpec::Stress(0xC0 + seed),
            16,
            250,
            80 + seed,
        );
    }
}

#[test]
fn fault_soak_ideal() {
    // The ideal machine has no MAGIC occupancy, but the mesh-facing fault
    // classes (hop spikes, link stalls, NI freezes) still apply.
    for seed in 0..seeds(2) {
        soak(
            MachineConfig::ideal(4),
            FaultsSpec::Light(0xD0 + seed),
            16,
            250,
            120 + seed,
        );
    }
}

#[test]
fn fault_soak_small_cache_evictions() {
    // Tiny caches force writebacks mid-transaction; faults on top of the
    // richest transient-state source is the hardest soak configuration.
    for seed in 0..seeds(2) {
        soak(
            MachineConfig::flash(4).with_cache_bytes(4 << 10),
            FaultsSpec::Stress(0xE0 + seed),
            96,
            250,
            160 + seed,
        );
    }
}

#[test]
fn faults_slow_but_do_not_change_work() {
    // The same workload with and without faults must execute the same
    // references (timing-only contract) and the faulted run cannot be
    // faster than the clean one.
    let mk = |plan: FaultPlan| {
        let mut m = Machine::new(
            MachineConfig::flash(4).with_faults(plan),
            streams(4, 16, 200, 7),
        );
        let RunResult::Completed { exec_cycles } = m.run(2_000_000_000) else {
            panic!("run stuck");
        };
        let refs: u64 = m
            .procs()
            .iter()
            .map(|p| p.stats().reads + p.stats().writes)
            .sum();
        (exec_cycles, refs)
    };
    let (clean_cycles, clean_refs) = mk(FaultPlan::none());
    let (fault_cycles, fault_refs) = mk(FaultPlan::stress(5));
    assert_eq!(clean_refs, fault_refs, "faults must not change the work");
    assert!(
        fault_cycles >= clean_cycles,
        "injected delays cannot speed the machine up ({fault_cycles} < {clean_cycles})"
    );
}

#[test]
fn fault_soak_replays_byte_identically() {
    // Same plan + same seed = the same machine, cycle for cycle: the
    // whole point of deterministic injection.
    let run = || {
        let mut m = Machine::new(
            MachineConfig::flash(4).with_faults(FaultPlan::stress(21)),
            streams(4, 16, 200, 3),
        );
        let RunResult::Completed { exec_cycles } = m.run(2_000_000_000) else {
            panic!("replay run stuck");
        };
        (exec_cycles, m.fault_stats().unwrap())
    };
    let (c0, s0) = run();
    let (c1, s1) = run();
    assert_eq!(c0, c1, "replay must be cycle-identical");
    assert_eq!(s0, s1, "replay must inject the identical fault schedule");
}
